"""Model-artifact persistence: save/load fitted pipelines, JSON coercion.

See :mod:`repro.persist.artifact` for the on-disk format and
:mod:`repro.persist.serialize` for the numpy-to-native JSON helper used
by every JSON boundary of the project.
"""

from repro.persist.artifact import (
    ARTIFACT_FORMAT_VERSION,
    PipelineState,
    config_from_dict,
    config_to_dict,
    load_pipeline,
    save_pipeline,
)
from repro.persist.serialize import dump_json, to_native

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "PipelineState",
    "config_from_dict",
    "config_to_dict",
    "dump_json",
    "load_pipeline",
    "save_pipeline",
    "to_native",
]
