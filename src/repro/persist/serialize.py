"""JSON coercion: numpy scalars/arrays to native Python, recursively.

Every JSON boundary of the project — ``GroupDetectionResult.to_json_dict``,
the stream CLI's ``--json`` / ``BENCH_stream.json`` writer, and the
artifact manifests — funnels through :func:`to_native`, so a stray
``np.float32`` score or ``np.int64`` node id can never crash ``json.dump``
(or, worse, serialize as a lossy repr) no matter which code path produced
it.
"""

from __future__ import annotations

from typing import Any

import numpy as np


def to_native(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serialisable native Python.

    * numpy scalars (``np.float32``, ``np.int64``, ``np.bool_``, …) become
      the matching Python ``float`` / ``int`` / ``bool``,
    * numpy arrays become (nested) lists of native scalars,
    * dict keys that are numpy scalars are unwrapped too (``json.dump``
      rejects them even where it would accept the Python equivalent),
    * tuples and sets become lists (sets are sorted for determinism),
    * everything else is returned unchanged.
    """
    if isinstance(obj, np.ndarray):
        # tolist() is fully native for every ndim — including 0-d arrays,
        # where it returns a bare scalar rather than a list.
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, dict):
        return {_native_key(key): to_native(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_native(value) for value in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(to_native(value) for value in obj)
    return obj


def _native_key(key: Any) -> Any:
    return key.item() if isinstance(key, np.generic) else key


def dump_json(path, payload: Any, **kwargs) -> None:
    """``json.dump`` with :func:`to_native` coercion and a trailing newline."""
    import json

    kwargs.setdefault("indent", 2)
    kwargs.setdefault("sort_keys", True)
    with open(path, "w") as handle:
        json.dump(to_native(payload), handle, **kwargs)
        handle.write("\n")
