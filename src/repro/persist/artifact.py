"""Model-artifact persistence for fitted TP-GrGAD pipelines.

An artifact is a directory with two files:

* ``arrays.npz`` — every trained parameter in its training dtype
  (float64 on the reference path, float32 in fast mode), keyed
  ``mhgae.<param>`` / ``tpgcl.encoder.<param>`` /
  ``tpgcl.statistics_network.<param>`` (the qualified names of
  :meth:`repro.nn.Module.state_dict`), saved uncompressed so the bytes
  round-trip exactly and a loaded pipeline reproduces in-memory scores
  bit for bit.
* ``manifest.json`` — the full pipeline config, the fingerprint of the
  graph the pipeline was fitted on, the feature dimensionality the
  encoder weights require, library versions, and the artifact format
  version.  All values pass through
  :func:`repro.persist.serialize.to_native`, so numpy scalars in configs
  can never corrupt the manifest.

:class:`PipelineState` is the in-memory form; ``TPGrGAD.save`` /
``TPGrGAD.load`` are thin wrappers over :func:`save_pipeline` /
:func:`load_pipeline`.  MLOps rationale in DESIGN.md: the artifact is the
reproducible unit of deployment — a worker (or a restarted stream
process) loads it and serves ``detect_only`` without retraining.

Module-level imports stay numpy-only: ``repro.core.result`` imports this
package for :func:`to_native`, so pulling ``repro.core`` in eagerly here
would create an import cycle.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.persist.serialize import to_native

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import TPGrGADConfig
    from repro.gae import MultiHopGAE
    from repro.gcl import TPGCL
    from repro.graph import Graph

ARTIFACT_FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

_MHGAE_PREFIX = "mhgae."
_TPGCL_PREFIX = "tpgcl."


# ----------------------------------------------------------------------
# Config (de)serialisation
# ----------------------------------------------------------------------
def config_to_dict(config: "TPGrGADConfig") -> Dict:
    """The full pipeline config as a nested JSON-ready dict.

    Besides the dataclass fields this records ``derived_stage_seeds`` —
    which stage seeds were derived rather than pinned — so a round-tripped
    config keeps its ``reseed()`` semantics (a reconstructed config whose
    stage seeds all *look* explicit would silently stop re-deriving).
    """
    import dataclasses

    payload = to_native(dataclasses.asdict(config))
    payload["derived_stage_seeds"] = list(getattr(config, "derived_stage_seeds", ()))
    return payload


def config_from_dict(payload: Dict) -> "TPGrGADConfig":
    """Rebuild a :class:`TPGrGADConfig` written by :func:`config_to_dict`."""
    from repro.core.config import TPGrGADConfig
    from repro.gae import MHGAEConfig
    from repro.gcl import TPGCLConfig
    from repro.sampling import SamplerConfig

    payload = dict(payload)
    derived = tuple(payload.pop("derived_stage_seeds", ()))
    payload["mhgae"] = MHGAEConfig(**payload["mhgae"])
    payload["sampler"] = SamplerConfig(**payload["sampler"])
    payload["tpgcl"] = TPGCLConfig(**payload["tpgcl"])
    config = TPGrGADConfig(**payload)
    config.derived_stage_seeds = derived
    return config


# ----------------------------------------------------------------------
# The in-memory artifact
# ----------------------------------------------------------------------
@dataclass
class PipelineState:
    """Everything needed to serve a fitted pipeline without retraining."""

    config: "TPGrGADConfig"
    n_features: int
    mhgae_state: Optional[Dict[str, np.ndarray]] = None
    tpgcl_state: Optional[Dict[str, np.ndarray]] = None
    graph_fingerprint: Optional[str] = None
    derived_stage_seeds: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    @classmethod
    def from_fitted(cls, detector) -> "PipelineState":
        """Capture a fitted ``TPGrGAD`` (after ``fit_detect``).

        The recorded fingerprint is that of the graph the models were
        *trained* on (tracked by the pipeline at fit time) — serving
        ``detect_only`` on other graphs rebinds ``detector._graph`` but
        must never change what the manifest claims the weights came from.
        """
        if detector.mhgae is None:
            raise RuntimeError("cannot export an unfitted pipeline: call fit_detect first")
        graph = detector._graph
        fingerprint = getattr(detector, "_fitted_fingerprint", None)
        n_features = getattr(detector, "_fitted_n_features", None)
        if fingerprint is None and graph is not None:
            fingerprint = graph.fingerprint()
        if n_features is None:
            n_features = int(graph.n_features) if graph is not None else -1
        # Export the TPGCL that training actually produced, not whatever
        # the last detect_only serve left on detector.tpgcl (a serve that
        # skipped the head must not erase trained weights).
        tpgcl = getattr(detector, "_fitted_tpgcl", None) or detector.tpgcl
        return cls(
            config=detector.config,
            n_features=int(n_features),
            mhgae_state=detector.mhgae.state_dict(),
            tpgcl_state=tpgcl.state_dict() if tpgcl is not None else None,
            graph_fingerprint=fingerprint,
            derived_stage_seeds=tuple(getattr(detector.config, "derived_stage_seeds", ())),
        )

    # ------------------------------------------------------------------
    # Warm model binding
    # ------------------------------------------------------------------
    def bind_mhgae(self, graph: "Graph") -> "MultiHopGAE":
        """A scoring-ready MH-GAE: loaded weights, bound to ``graph``."""
        from repro.gae import MultiHopGAE

        if self.mhgae_state is None:
            raise RuntimeError("artifact carries no MH-GAE state")
        if self.n_features >= 0 and graph.n_features != self.n_features:
            raise ValueError(
                f"graph has {graph.n_features} features but the artifact was "
                f"fitted on {self.n_features}"
            )
        model = MultiHopGAE(self.config.mhgae)
        model.attach(graph, state=self.mhgae_state)
        return model

    def bind_tpgcl(self) -> Optional["TPGCL"]:
        """An embedding-ready TPGCL (None when the stage was never trained).

        The bound model is graph-independent, so it is built once and
        memoized — a serving loop does not reconstruct the encoder and
        re-copy every parameter array per request.  (The memo is dropped
        on pickling: live models hold unpicklable closures.)
        """
        from repro.gcl import TPGCL

        if self.tpgcl_state is None:
            return None
        bound = getattr(self, "_bound_tpgcl", None)
        if bound is None:
            bound = TPGCL(self.config.tpgcl).warm_start(self.n_features, self.tpgcl_state)
            self._bound_tpgcl = bound
        return bound

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_bound_tpgcl", None)
        return state

    # ------------------------------------------------------------------
    # Disk format
    # ------------------------------------------------------------------
    def config_hash(self) -> str:
        """The config's :meth:`~repro.core.TPGrGADConfig.content_hash`.

        One identity string shared by the pipeline stage cache, the
        manifest and the serve registry: equal hashes imply equal manifest
        config dicts (the hash is taken over exactly that dict).
        """
        return self.config.content_hash()

    def stage_dtypes(self) -> Dict[str, str]:
        """Canonical training dtype of each learned stage (from the config)."""
        return {
            "mhgae": str(np.dtype(self.config.mhgae.dtype)),
            "tpgcl": str(np.dtype(self.config.tpgcl.dtype)),
        }

    def manifest(self) -> Dict:
        """The JSON manifest describing this artifact."""
        import scipy

        return to_native(
            {
                "format_version": ARTIFACT_FORMAT_VERSION,
                "method": "TP-GrGAD",
                # config_to_dict embeds derived_stage_seeds — the single
                # source the loader restores reseed() semantics from.
                "config": config_to_dict(self.config),
                "config_hash": self.config_hash(),
                "dtype": self.stage_dtypes(),
                "n_features": self.n_features,
                "graph_fingerprint": self.graph_fingerprint,
                "has_mhgae": self.mhgae_state is not None,
                "has_tpgcl": self.tpgcl_state is not None,
                "versions": {
                    "python": platform.python_version(),
                    "numpy": np.__version__,
                    "scipy": scipy.__version__,
                },
                "created_at_unix": int(time.time()),
            }
        )

    def save(self, path) -> Path:
        """Write ``manifest.json`` + ``arrays.npz`` under directory ``path``."""
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        arrays: Dict[str, np.ndarray] = {}
        if self.mhgae_state is not None:
            arrays.update({f"{_MHGAE_PREFIX}{k}": v for k, v in self.mhgae_state.items()})
        if self.tpgcl_state is not None:
            arrays.update({f"{_TPGCL_PREFIX}{k}": v for k, v in self.tpgcl_state.items()})
        # Uncompressed: exact float64 bytes, and np.load stays mmap-able.
        np.savez(root / ARRAYS_NAME, **arrays)
        from repro.persist.serialize import dump_json

        dump_json(root / MANIFEST_NAME, self.manifest())
        return root

    @classmethod
    def load(cls, path) -> "PipelineState":
        """Read an artifact directory written by :meth:`save`."""
        root = Path(path)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.exists():
            raise FileNotFoundError(f"no pipeline artifact at '{root}' (missing {MANIFEST_NAME})")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        version = manifest.get("format_version")
        if version != ARTIFACT_FORMAT_VERSION:
            raise ValueError(
                f"unsupported artifact format_version {version!r} "
                f"(this build reads {ARTIFACT_FORMAT_VERSION})"
            )
        config = config_from_dict(manifest["config"])  # restores derived_stage_seeds
        recorded_hash = manifest.get("config_hash")
        if recorded_hash is not None and recorded_hash != config.content_hash():
            # A hand-edited manifest config no longer matches the identity
            # the artifact was published under; serving it would lie about
            # which model version produced the scores.
            raise ValueError(
                f"artifact at '{root}' has config_hash {recorded_hash!r} but its "
                f"config dict hashes to {config.content_hash()!r} (manifest edited?)"
            )

        expected_dtypes = {
            "mhgae": np.dtype(config.mhgae.dtype),
            "tpgcl": np.dtype(config.tpgcl.dtype),
        }
        recorded_dtypes = manifest.get("dtype")
        if recorded_dtypes is not None:
            # The dtype record is derived from the config at save time, so a
            # contradiction means the manifest was edited after publishing —
            # loading would silently reinterpret the stored weights.
            for stage, recorded in recorded_dtypes.items():
                expected = expected_dtypes.get(stage)
                if expected is not None and np.dtype(recorded) != expected:
                    raise ValueError(
                        f"artifact at '{root}' records {stage} dtype {recorded!r} but its "
                        f"config trains in {expected.name!r} (manifest edited?)"
                    )

        mhgae_state: Optional[Dict[str, np.ndarray]] = None
        tpgcl_state: Optional[Dict[str, np.ndarray]] = None
        with np.load(root / ARRAYS_NAME) as arrays:
            for key in arrays.files:
                # Stored arrays from older (pre-dtype) artifacts are always
                # float64; cast to the stage's training dtype so the bound
                # models run in the precision their config declares.
                if key.startswith(_MHGAE_PREFIX):
                    mhgae_state = mhgae_state or {}
                    mhgae_state[key[len(_MHGAE_PREFIX):]] = np.asarray(
                        arrays[key], dtype=expected_dtypes["mhgae"]
                    )
                elif key.startswith(_TPGCL_PREFIX):
                    tpgcl_state = tpgcl_state or {}
                    tpgcl_state[key[len(_TPGCL_PREFIX):]] = np.asarray(
                        arrays[key], dtype=expected_dtypes["tpgcl"]
                    )
        if manifest.get("has_mhgae") and mhgae_state is None:
            raise ValueError(f"artifact at '{root}' declares MH-GAE state but {ARRAYS_NAME} has none")
        if manifest.get("has_tpgcl") and tpgcl_state is None:
            raise ValueError(f"artifact at '{root}' declares TPGCL state but {ARRAYS_NAME} has none")
        return cls(
            config=config,
            n_features=int(manifest["n_features"]),
            mhgae_state=mhgae_state,
            tpgcl_state=tpgcl_state,
            graph_fingerprint=manifest.get("graph_fingerprint"),
            derived_stage_seeds=tuple(getattr(config, "derived_stage_seeds", ())),
        )


# ----------------------------------------------------------------------
# Convenience wrappers (what ``TPGrGAD.save`` / ``.load`` call)
# ----------------------------------------------------------------------
def save_pipeline(detector, path) -> Path:
    """Persist a fitted ``TPGrGAD`` to an artifact directory.

    A detector that came from :func:`load_pipeline` and was never
    re-trained re-saves its loaded state verbatim — same weights, same
    fitted-graph fingerprint — even after serving ``detect_only`` on
    other graphs (which rebinds the live models but does not train).
    Training (``fit_detect`` / a stream refit) clears the loaded state,
    so a re-fitted detector exports its fresh models instead.
    """
    state = getattr(detector, "_warm_state", None)
    if state is None:
        state = PipelineState.from_fitted(detector)
    return state.save(path)


def load_pipeline(path):
    """Load an artifact into a warm ``TPGrGAD`` (serves ``detect_only``)."""
    from repro.core.pipeline import TPGrGAD

    return TPGrGAD.from_state(PipelineState.load(path))
