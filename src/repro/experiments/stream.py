"""Streaming replay experiment: throughput, latency and detection lag.

Not a table from the paper — an operational experiment the streaming
subsystem adds on top of it: each dataset is replayed as a burst-injection
transaction stream (``repro.datasets.stream.make_burst_stream``) through
the incremental detector, and the summary compares incremental ticks
against the refit-per-tick oracle.

Run with ``python -m repro.experiments stream``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

import numpy as np

from repro.experiments.settings import ExperimentSettings
from repro.stream.incremental import StreamConfig
from repro.stream.replay import replay_event_stream


def run_stream(settings: ExperimentSettings) -> List[Dict]:
    """Replay every configured dataset as a burst stream; one record each."""
    from repro.datasets.stream import make_burst_stream

    seed = int(settings.seeds[0]) if settings.seeds else 0
    records: List[Dict] = []
    for name in settings.datasets:
        stream = make_burst_stream(dataset=name, scale=settings.scale, seed=seed, n_ticks=8)
        config = settings.pipeline_config(seed)
        stream_config = StreamConfig(refit_policy="budget", drift_budget=0.25)
        summary = replay_event_stream(stream, config, stream_config)
        oracle = replay_event_stream(
            stream, settings.pipeline_config(seed), replace(stream_config, refit_policy="always")
        )
        speedup = float(
            np.mean(oracle.tick_seconds) / max(np.mean(summary.tick_seconds), 1e-12)
        )
        records.append(
            {
                "dataset": settings.display_name(name),
                "events_per_second": round(summary.events_per_second, 2),
                "p50_ms": round(summary.p50_latency * 1e3, 1),
                "p95_ms": round(summary.p95_latency * 1e3, 1),
                "incremental_ticks": summary.n_incremental,
                "refits": summary.n_refits,
                "speedup_vs_refit": round(speedup, 2),
                "detection_lag": summary.detection_lag,
            }
        )
    return records


def render_stream(records: List[Dict]) -> str:
    """Render the replay records as an aligned text table."""
    headers = [
        "Dataset",
        "events/s",
        "p50 ms",
        "p95 ms",
        "inc ticks",
        "refits",
        "speedup",
        "burst lag",
    ]
    rows = [
        [
            str(r["dataset"]),
            f"{r['events_per_second']:.1f}",
            f"{r['p50_ms']:.1f}",
            f"{r['p95_ms']:.1f}",
            str(r["incremental_ticks"]),
            str(r["refits"]),
            f"{r['speedup_vs_refit']:.1f}x",
            "-" if r["detection_lag"] is None else str(r["detection_lag"]),
        ]
        for r in records
    ]
    widths = [max(len(h), *(len(row[i]) for row in rows)) for i, h in enumerate(headers)] if rows else [
        len(h) for h in headers
    ]
    lines = [
        "Streaming replay (burst injection, budget policy vs refit-per-tick)",
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
    ]
    lines.extend("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rows)
    return "\n".join(lines)
