"""Shared experiment settings: datasets, scale, seeds and model budgets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.baselines import BaselineConfig
from repro.core import TPGrGADConfig
from repro.datasets import load_dataset
from repro.gae import MHGAEConfig
from repro.gcl import TPGCLConfig
from repro.graph import Graph
from repro.sampling import SamplerConfig

# The five evaluation datasets in the order the paper reports them.
PAPER_DATASETS: List[str] = ["ethereum-tsgn", "amlpublic", "simml", "cora-group", "citeseer-group"]

# Short display names matching the paper's tables.
DISPLAY_NAMES: Dict[str, str] = {
    "ethereum-tsgn": "Ethereum-TSGN",
    "amlpublic": "AMLPublic",
    "simml": "simML",
    "cora-group": "Cora-group",
    "citeseer-group": "CiteSeer-group",
}

BASELINE_NAMES: List[str] = ["dominant", "deepae", "comga", "deepfd", "as-gae"]


@dataclass
class ExperimentSettings:
    """Knobs shared by every experiment runner.

    ``scale`` shrinks the generated datasets relative to the published
    sizes so the full grid of experiments completes in minutes on CPU; the
    comparison *shapes* (method ordering, rough factors) are what the
    harness reproduces, not absolute wall-clock-hungry numbers.
    """

    datasets: Sequence[str] = field(default_factory=lambda: list(PAPER_DATASETS))
    scale: float = 0.12
    seeds: Sequence[int] = (0, 1, 2)
    mhgae_epochs: int = 50
    tpgcl_epochs: int = 10
    baseline_epochs: int = 40
    max_candidates: int = 150

    # ------------------------------------------------------------------
    def load(self, name: str, seed: int) -> Graph:
        """Load one dataset at the configured scale."""
        return load_dataset(name, scale=self.scale, seed=seed)

    def display_name(self, name: str) -> str:
        return DISPLAY_NAMES.get(name, name)

    # ------------------------------------------------------------------
    def pipeline_config(self, seed: int, **overrides) -> TPGrGADConfig:
        """TP-GrGAD configuration sized for this experiment run."""
        config = TPGrGADConfig(
            mhgae=MHGAEConfig(epochs=self.mhgae_epochs, hidden_dim=32, embedding_dim=16),
            sampler=SamplerConfig(max_candidates=self.max_candidates, max_anchor_pairs=200),
            tpgcl=TPGCLConfig(epochs=self.tpgcl_epochs, hidden_dim=32, embedding_dim=32, batch_size=24),
            max_anchors=30,
            seed=seed,
        )
        for key, value in overrides.items():
            setattr(config, key, value)
        return config

    def baseline_config(self, seed: int) -> BaselineConfig:
        """Baseline configuration sized for this experiment run."""
        return BaselineConfig(epochs=self.baseline_epochs, seed=seed)

    @classmethod
    def quick(cls) -> "ExperimentSettings":
        """Minimal settings used by the pytest-benchmark harness."""
        return cls(
            datasets=["ethereum-tsgn", "simml"],
            scale=0.1,
            seeds=(0,),
            mhgae_epochs=30,
            tpgcl_epochs=6,
            baseline_epochs=25,
            max_candidates=100,
        )
