"""Figures 3 & 8 — GAE variants on the illustrative example graph.

DOMINANT, DeepAE and ComGA are run on the example graph with three planted
anomaly groups, alongside MH-GAE.  For every method the experiment records
which group members appear among the top-scoring nodes, separating boundary
members (detectable from one-hop inconsistency) from deep members (only
detectable through long-range inconsistency).  The expected shape: the
N-GAD baselines recover mostly boundary members while MH-GAE recovers whole
groups including the deep members.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.baselines import BaselineConfig, ComGA, DeepAE, Dominant
from repro.datasets import make_example_graph
from repro.experiments.settings import ExperimentSettings
from repro.gae import MHGAEConfig, MultiHopGAE
from repro.graph import Graph
from repro.viz import format_table


def deep_member_mask(graph: Graph) -> np.ndarray:
    """Group members whose every neighbour is also a group member."""
    truth = graph.anomaly_node_mask()
    deep = np.zeros(graph.n_nodes, dtype=bool)
    for node in range(graph.n_nodes):
        if truth[node] and all(truth[neighbor] for neighbor in graph.neighbors(node)):
            deep[node] = True
    return deep


def run_figure8(settings: Optional[ExperimentSettings] = None) -> List[Dict[str, object]]:
    """Node-level recall (overall / boundary / deep) of each GAE variant."""
    settings = settings or ExperimentSettings()
    seed = settings.seeds[0]
    graph = make_example_graph(seed=7)
    truth = graph.anomaly_node_mask()
    deep = deep_member_mask(graph)
    boundary = truth & ~deep
    k = int(truth.sum())

    methods: List[Dict[str, object]] = []
    baseline_config = BaselineConfig(epochs=settings.baseline_epochs, seed=seed)
    scorers = {
        "DOMINANT": lambda: Dominant(baseline_config).node_scores(graph),
        "DeepAE": lambda: DeepAE(baseline_config).node_scores(graph),
        "ComGA": lambda: ComGA(baseline_config).node_scores(graph),
        "MH-GAE": lambda: MultiHopGAE(
            MHGAEConfig(epochs=settings.mhgae_epochs, hidden_dim=32, embedding_dim=16, seed=seed)
        ).fit(graph).score_nodes(),
    }
    for name, scorer in scorers.items():
        scores = np.asarray(scorer(), dtype=np.float64)
        top = np.zeros(graph.n_nodes, dtype=bool)
        top[np.argsort(-scores)[:k]] = True
        methods.append(
            {
                "method": name,
                "detected": int((top & truth).sum()),
                "total_members": k,
                "recall": float((top & truth).sum() / k),
                "boundary_recall": float((top & boundary).sum() / max(boundary.sum(), 1)),
                "deep_recall": float((top & deep).sum() / max(deep.sum(), 1)),
                "detected_nodes": sorted(int(i) for i in np.flatnonzero(top & truth)),
            }
        )
    return methods


def render_figure8(records: List[Dict[str, object]]) -> str:
    """Render the Fig. 8 comparison as ASCII."""
    rows = [
        [r["method"], r["detected"], r["total_members"], r["recall"], r["boundary_recall"], r["deep_recall"]]
        for r in records
    ]
    return format_table(
        ["method", "detected", "members", "recall", "boundary recall", "deep recall"],
        rows,
        title="Figure 8 — group-member recovery on the example graph",
    )
