"""Table V — ablation of the TPGCL component.

Comparing the full framework against a variant where candidate groups skip
contrastive learning and are represented by their mean node features before
outlier scoring ("TP-GrGAD w/o TPGCL").  The paper reports a large F1 drop
without TPGCL on every dataset.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core import TPGrGAD
from repro.experiments.settings import ExperimentSettings
from repro.viz import format_table


def run_table5(settings: Optional[ExperimentSettings] = None) -> List[Dict[str, object]]:
    """F1 of the pipeline with and without the TPGCL stage."""
    settings = settings or ExperimentSettings()
    records: List[Dict[str, object]] = []
    for dataset in settings.datasets:
        with_values: List[float] = []
        without_values: List[float] = []
        for seed in settings.seeds:
            graph = settings.load(dataset, seed=seed)

            full_config = settings.pipeline_config(seed=seed)
            report_full = TPGrGAD(full_config).fit_detect(graph).evaluate(graph)
            with_values.append(report_full.f1)

            ablated_config = settings.pipeline_config(seed=seed, use_tpgcl=False)
            report_ablated = TPGrGAD(ablated_config).fit_detect(graph).evaluate(graph)
            without_values.append(report_ablated.f1)
        records.append(
            {
                "dataset": settings.display_name(dataset),
                "without_tpgcl": float(np.mean(without_values)),
                "with_tpgcl": float(np.mean(with_values)),
            }
        )
    return records


def render_table5(records: List[Dict[str, object]]) -> str:
    """Format the Table V ablation as ASCII."""
    rows = [[r["dataset"], r["without_tpgcl"], r["with_tpgcl"]] for r in records]
    return format_table(
        ["dataset", "TP-GrGAD w/o TPGCL (F1)", "TP-GrGAD (F1)"],
        rows,
        title="Table V — ablation of the TPGCL component",
    )
