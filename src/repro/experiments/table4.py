"""Table IV — MH-GAE reconstruction-target ablation.

The paper compares the CR of the full framework when MH-GAE reconstructs
``A``, ``A³``, ``A⁵``, ``A⁷`` or the GraphSNN weighted adjacency ``Ã``.
The expected shape: plain ``A`` (and low powers) lag behind the
higher-order targets and ``Ã``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import TPGrGAD
from repro.experiments.settings import ExperimentSettings
from repro.gae import MHGAEConfig
from repro.viz import format_table

# (label, target, k) triples matching the paper's Table IV columns.
MATRIX_VARIANTS: List[Tuple[str, str, int]] = [
    ("A", "adjacency", 1),
    ("A^3", "k_hop", 3),
    ("A^5", "k_hop", 5),
    ("A^7", "k_hop", 7),
    ("A_tilde", "graphsnn", 1),
]


def run_table4(settings: Optional[ExperimentSettings] = None) -> List[Dict[str, object]]:
    """CR of the full pipeline under each MH-GAE reconstruction target."""
    settings = settings or ExperimentSettings()
    records: List[Dict[str, object]] = []
    for dataset in settings.datasets:
        row: Dict[str, object] = {"dataset": settings.display_name(dataset)}
        for label, target, k in MATRIX_VARIANTS:
            values = []
            for seed in settings.seeds:
                graph = settings.load(dataset, seed=seed)
                config = settings.pipeline_config(seed=seed)
                config.mhgae = MHGAEConfig(
                    epochs=settings.mhgae_epochs,
                    hidden_dim=32,
                    embedding_dim=16,
                    target=target,
                    k_hops=k,
                    seed=seed,
                )
                report = TPGrGAD(config).fit_detect(graph).evaluate(graph)
                values.append(report.cr)
            row[label] = float(np.mean(values))
        records.append(row)
    return records


def render_table4(records: List[Dict[str, object]]) -> str:
    """Format the Table IV ablation as ASCII."""
    columns = ["dataset"] + [label for label, _, _ in MATRIX_VARIANTS]
    rows = [[record[column] for column in columns] for record in records]
    return format_table(columns, rows, title="Table IV — CR under different MH-GAE reconstruction targets")
