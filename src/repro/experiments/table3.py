"""Table III — CR / F1 / AUC of every method on every dataset.

The main comparison of the paper: the five baselines plus TP-GrGAD,
evaluated with the three group-level metrics, mean ± standard error over
the configured seeds.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.baselines import get_baseline
from repro.core import TPGrGAD
from repro.experiments.settings import BASELINE_NAMES, ExperimentSettings
from repro.viz import format_table

# Published Table III numbers for the proposed method, used in EXPERIMENTS.md
# to compare shapes (baseline rows omitted here for brevity; the full table
# lives in the paper and in EXPERIMENTS.md).
PAPER_TPGRGAD: Dict[str, Dict[str, float]] = {
    "Ethereum-TSGN": {"CR": 0.81, "F1": 0.73, "AUC": 0.86},
    "AMLPublic": {"CR": 0.89, "F1": 0.90, "AUC": 0.85},
    "simML": {"CR": 0.84, "F1": 0.76, "AUC": 0.84},
    "Cora-group": {"CR": 0.93, "F1": 0.75, "AUC": 0.73},
    "CiteSeer-group": {"CR": 0.72, "F1": 0.85, "AUC": 0.87},
}


def _aggregate(values: List[float]) -> Dict[str, float]:
    array = np.asarray(values, dtype=np.float64)
    standard_error = float(array.std(ddof=1) / np.sqrt(len(array))) if len(array) > 1 else 0.0
    return {"mean": float(array.mean()), "stderr": standard_error}


def run_table3(
    settings: Optional[ExperimentSettings] = None,
    methods: Optional[List[str]] = None,
) -> List[Dict[str, object]]:
    """Run every method on every dataset over all seeds.

    The TP-GrGAD configuration depends only on the seed, so for each seed
    one detector scores all datasets' graphs through the batched
    :meth:`TPGrGAD.fit_detect_many` API (each graph is still evaluated
    independently — per-(dataset, seed) numbers are identical to the
    per-graph loop the baselines keep).

    Returns one record per (dataset, method) with mean and standard error
    of CR, F1 and AUC.
    """
    settings = settings or ExperimentSettings()
    methods = methods if methods is not None else BASELINE_NAMES + ["tp-grgad"]
    datasets = list(settings.datasets)

    metric_values: Dict[tuple, Dict[str, List[float]]] = {
        (dataset, method): {"CR": [], "F1": [], "AUC": []} for dataset in datasets for method in methods
    }

    def _record_report(dataset: str, method: str, report) -> None:
        metric_values[(dataset, method)]["CR"].append(report.cr)
        metric_values[(dataset, method)]["F1"].append(report.f1)
        metric_values[(dataset, method)]["AUC"].append(report.auc)

    for seed in settings.seeds:
        graphs = {dataset: settings.load(dataset, seed=seed) for dataset in datasets}
        if "tp-grgad" in methods:
            detector = TPGrGAD(settings.pipeline_config(seed=seed))
            results = detector.fit_detect_many([graphs[dataset] for dataset in datasets])
            for dataset, result in zip(datasets, results):
                _record_report(dataset, "tp-grgad", result.evaluate(graphs[dataset]))
        for method in methods:
            if method == "tp-grgad":
                continue
            for dataset in datasets:
                baseline = get_baseline(method, settings.baseline_config(seed=seed))
                _record_report(dataset, method, baseline.fit_detect(graphs[dataset]).evaluate(graphs[dataset]))

    records: List[Dict[str, object]] = []
    for dataset in datasets:
        for method in methods:
            record: Dict[str, object] = {
                "dataset": settings.display_name(dataset),
                "method": "TP-GrGAD" if method == "tp-grgad" else method.upper() if method != "as-gae" else "AS-GAE",
            }
            for metric, values in metric_values[(dataset, method)].items():
                aggregated = _aggregate(values)
                record[metric] = aggregated["mean"]
                record[f"{metric}_stderr"] = aggregated["stderr"]
            records.append(record)
    return records


def render_table3(records: List[Dict[str, object]]) -> str:
    """Format Table III as ASCII (mean ± standard error)."""
    rows = []
    for record in records:
        rows.append(
            [
                record["dataset"],
                record["method"],
                f"{record['CR']:.2f}±{record['CR_stderr']:.2f}",
                f"{record['F1']:.2f}±{record['F1_stderr']:.2f}",
                f"{record['AUC']:.2f}±{record['AUC_stderr']:.2f}",
            ]
        )
    return format_table(
        ["dataset", "method", "CR", "F1", "AUC"],
        rows,
        title="Table III — group-level detection results (mean ± stderr over seeds)",
    )


def best_method_per_dataset(records: List[Dict[str, object]], metric: str = "CR") -> Dict[str, str]:
    """Winner per dataset for a metric (used by benchmark assertions)."""
    winners: Dict[str, str] = {}
    best: Dict[str, float] = {}
    for record in records:
        dataset = str(record["dataset"])
        value = float(record[metric])
        if dataset not in best or value > best[dataset]:
            best[dataset] = value
            winners[dataset] = str(record["method"])
    return winners
