"""Command-line entry point: ``python -m repro.experiments <experiment> [options]``."""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, ExperimentSettings


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the tables and figures of the TP-GrGAD paper.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"], help="which artefact to regenerate")
    parser.add_argument("--scale", type=float, default=0.12, help="dataset scale relative to the published sizes")
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2], help="random seeds to average over")
    parser.add_argument("--datasets", type=str, nargs="+", default=None, help="subset of datasets to run")
    parser.add_argument("--mhgae-epochs", type=int, default=50)
    parser.add_argument("--tpgcl-epochs", type=int, default=10)
    parser.add_argument("--baseline-epochs", type=int, default=40)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    settings = ExperimentSettings(
        scale=args.scale,
        seeds=tuple(args.seeds),
        mhgae_epochs=args.mhgae_epochs,
        tpgcl_epochs=args.tpgcl_epochs,
        baseline_epochs=args.baseline_epochs,
    )
    if args.datasets:
        settings.datasets = list(args.datasets)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner, renderer = EXPERIMENTS[name]
        start = time.time()
        records = runner(settings)
        print(renderer(records))
        print(f"[{name} finished in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
