"""Figure 6 — comparison of augmentation combinations.

A 5×5 grid per dataset: rows are the augmentation used for the *negative*
view, columns the augmentation used for the *positive* view, cells the F1
of the full pipeline.  The paper's finding: the (PBA, PPA) pairing sits at
or near the top of every grid, because random perturbations (ND/ER/FM) may
accidentally preserve patterns in the negative view or destroy them in the
positive one.

To keep the grid affordable, the anchor-localization and group-sampling
stages are run once per (dataset, seed) and reused across all 25 cells —
only the TPGCL training and outlier scoring differ between cells.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import TPGrGAD
from repro.experiments.settings import ExperimentSettings
from repro.gcl import TPGCL
from repro.metrics import evaluate_detection
from repro.outlier import get_detector
from repro.viz import format_heatmap

AUGMENTATIONS: Sequence[str] = ("PBA", "PPA", "ND", "ER", "FM")


def run_figure6(
    settings: Optional[ExperimentSettings] = None,
    datasets: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """F1 grid over (negative, positive) augmentation pairs per dataset."""
    settings = settings or ExperimentSettings()
    datasets = list(datasets if datasets is not None else settings.datasets)

    records: List[Dict[str, object]] = []
    for dataset in datasets:
        grid = np.zeros((len(AUGMENTATIONS), len(AUGMENTATIONS)))
        for seed in settings.seeds:
            graph = settings.load(dataset, seed=seed)
            pipeline = TPGrGAD(settings.pipeline_config(seed=seed))
            anchors = pipeline.locate_anchors(graph)
            candidates = pipeline.sample_candidates(graph, anchors)
            if len(candidates) < 2:
                continue
            for row, negative in enumerate(AUGMENTATIONS):
                for column, positive in enumerate(AUGMENTATIONS):
                    tpgcl_config = settings.pipeline_config(seed=seed).tpgcl
                    tpgcl_config.positive_augmentation = positive
                    tpgcl_config.negative_augmentation = negative
                    model = TPGCL(tpgcl_config)
                    model.fit(graph, candidates)
                    embeddings = model.embed_groups(graph, candidates)
                    scores = get_detector(pipeline.config.detector).fit_scores(embeddings)
                    report = evaluate_detection(
                        predicted_groups=candidates,
                        scores=scores,
                        truth_groups=graph.groups,
                        contamination=pipeline.config.contamination,
                    )
                    grid[row, column] += report.f1
        grid /= max(len(settings.seeds), 1)
        records.append(
            {
                "dataset": settings.display_name(dataset),
                "augmentations": list(AUGMENTATIONS),
                "grid": grid.tolist(),
            }
        )
    return records


def render_figure6(records: List[Dict[str, object]]) -> str:
    """Render each dataset's augmentation grid as an ASCII heatmap."""
    blocks = []
    for record in records:
        grid = np.asarray(record["grid"], dtype=np.float64)
        blocks.append(
            format_heatmap(
                grid,
                row_labels=[f"neg:{a}" for a in record["augmentations"]],
                column_labels=[f"pos:{a}" for a in record["augmentations"]],
                title=f"Figure 6 — augmentation grid (F1), {record['dataset']}",
            )
        )
    return "\n\n".join(blocks)


def pba_ppa_rank(record: Dict[str, object]) -> int:
    """Rank (0 = best) of the (PBA, PPA) cell within one dataset's grid."""
    grid = np.asarray(record["grid"], dtype=np.float64)
    augmentations = list(record["augmentations"])
    target = grid[augmentations.index("PBA"), augmentations.index("PPA")]
    return int((grid > target).sum())
