"""Figure 5 — average size of the anomalous groups identified by each method.

The paper's bar chart shows that N-GAD / Sub-GAD baselines detect small
fragments (typically <= 3 nodes) while TP-GrGAD's detected groups track the
ground-truth average size.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.baselines import get_baseline
from repro.core import TPGrGAD
from repro.experiments.settings import BASELINE_NAMES, ExperimentSettings
from repro.viz import format_bar_chart, format_table


def run_figure5(settings: Optional[ExperimentSettings] = None) -> List[Dict[str, object]]:
    """Average detected group size per method and dataset (plus ground truth)."""
    settings = settings or ExperimentSettings()
    records: List[Dict[str, object]] = []
    for dataset in settings.datasets:
        row: Dict[str, object] = {"dataset": settings.display_name(dataset)}
        truth_sizes: List[float] = []
        method_sizes: Dict[str, List[float]] = {name: [] for name in BASELINE_NAMES + ["tp-grgad"]}
        for seed in settings.seeds:
            graph = settings.load(dataset, seed=seed)
            truth_sizes.append(graph.average_group_size())
            for method in BASELINE_NAMES:
                result = get_baseline(method, settings.baseline_config(seed=seed)).fit_detect(graph)
                method_sizes[method].append(result.average_anomalous_size())
            result = TPGrGAD(settings.pipeline_config(seed=seed)).fit_detect(graph)
            method_sizes["tp-grgad"].append(result.average_anomalous_size())
        for method, sizes in method_sizes.items():
            label = "TP-GrGAD" if method == "tp-grgad" else method.upper() if method != "as-gae" else "AS-GAE"
            row[label] = float(np.mean(sizes))
        row["Ground Truth"] = float(np.mean(truth_sizes))
        records.append(row)
    return records


def render_figure5(records: List[Dict[str, object]]) -> str:
    """Render the Fig. 5 comparison as a table plus per-dataset bar charts."""
    columns = ["dataset"] + [c for c in records[0] if c != "dataset"] if records else ["dataset"]
    table = format_table(columns, [[r[c] for c in columns] for r in records], title="Figure 5 — average detected group size")
    charts = []
    for record in records:
        values = {key: float(value) for key, value in record.items() if key != "dataset"}
        charts.append(format_bar_chart(values, title=f"\n{record['dataset']}"))
    return table + "\n" + "\n".join(charts)
