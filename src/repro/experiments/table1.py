"""Table I — statistical details of the datasets."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.settings import ExperimentSettings
from repro.viz import format_table

# The statistics published in Table I of the paper, for side-by-side
# comparison with what the generators produce at scale 1.0.
PAPER_TABLE1: Dict[str, Dict[str, float]] = {
    "simML": {"nodes": 2768, "edges": 4226, "attributes": 3123, "anomaly_groups": 74, "avg_group_size": 3.52},
    "Cora-group": {"nodes": 2847, "edges": 10792, "attributes": 1433, "anomaly_groups": 22, "avg_group_size": 6.32},
    "CiteSeer-group": {"nodes": 3463, "edges": 9334, "attributes": 3703, "anomaly_groups": 22, "avg_group_size": 6.18},
    "AMLPublic": {"nodes": 16720, "edges": 17238, "attributes": 16, "anomaly_groups": 19, "avg_group_size": 19.05},
    "Ethereum-TSGN": {"nodes": 1823, "edges": 3254, "attributes": 13, "anomaly_groups": 17, "avg_group_size": 7.23},
}


def run_table1(settings: Optional[ExperimentSettings] = None) -> List[Dict[str, object]]:
    """Generate every dataset and collect its statistics.

    Returns one record per dataset with both the measured statistics (at
    ``settings.scale``) and the paper's published full-scale numbers.
    """
    settings = settings or ExperimentSettings()
    records: List[Dict[str, object]] = []
    for name in settings.datasets:
        graph = settings.load(name, seed=settings.seeds[0])
        stats = graph.statistics()
        display = settings.display_name(name)
        paper = PAPER_TABLE1.get(display, {})
        records.append(
            {
                "dataset": display,
                "nodes": stats["nodes"],
                "edges": stats["edges"],
                "attributes": stats["attributes"],
                "anomaly_groups": stats["anomaly_groups"],
                "avg_group_size": stats["avg_group_size"],
                "paper_nodes": paper.get("nodes", ""),
                "paper_edges": paper.get("edges", ""),
                "paper_groups": paper.get("anomaly_groups", ""),
                "paper_avg_size": paper.get("avg_group_size", ""),
            }
        )
    return records


def render_table1(records: List[Dict[str, object]]) -> str:
    """Format the Table I comparison as ASCII."""
    columns = [
        "dataset",
        "nodes",
        "edges",
        "attributes",
        "anomaly_groups",
        "avg_group_size",
        "paper_nodes",
        "paper_edges",
        "paper_groups",
        "paper_avg_size",
    ]
    rows = [[record[column] for column in columns] for record in records]
    return format_table(columns, rows, title="Table I — dataset statistics (measured at the configured scale vs paper)")
