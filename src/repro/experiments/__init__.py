"""Experiment harness reproducing every table and figure of the paper.

Each module exposes a ``run_*`` function returning plain-Python data
(rows / series) plus a ``render_*`` helper that formats the result the way
the paper presents it.  The CLI entry point is::

    python -m repro.experiments <table1|table2|table3|table4|table5|figure5|figure6|figure7|figure8|stream>

All experiments accept an :class:`ExperimentSettings` controlling dataset
scale, the number of random seeds, and per-stage epoch budgets, so the same
code path powers quick benchmark runs and fuller reproductions.
"""

from repro.experiments.settings import ExperimentSettings
from repro.experiments.table1 import run_table1, render_table1
from repro.experiments.table2 import run_table2, render_table2
from repro.experiments.table3 import run_table3, render_table3
from repro.experiments.table4 import run_table4, render_table4
from repro.experiments.table5 import run_table5, render_table5
from repro.experiments.figure5 import run_figure5, render_figure5
from repro.experiments.figure6 import run_figure6, render_figure6
from repro.experiments.figure7 import run_figure7, render_figure7
from repro.experiments.figure8 import run_figure8, render_figure8
from repro.experiments.stream import run_stream, render_stream

EXPERIMENTS = {
    "stream": (run_stream, render_stream),
    "table1": (run_table1, render_table1),
    "table2": (run_table2, render_table2),
    "table3": (run_table3, render_table3),
    "table4": (run_table4, render_table4),
    "table5": (run_table5, render_table5),
    "figure5": (run_figure5, render_figure5),
    "figure6": (run_figure6, render_figure6),
    "figure7": (run_figure7, render_figure7),
    "figure8": (run_figure8, render_figure8),
}

__all__ = [
    "ExperimentSettings",
    "EXPERIMENTS",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_stream",
    "render_stream",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_figure5",
    "render_figure6",
    "render_figure7",
    "render_figure8",
]
