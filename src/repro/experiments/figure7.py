"""Figure 7 — t-SNE visualisation of the group embeddings learned by TPGCL.

For each dataset the candidate groups are embedded with the trained TPGCL
encoder, projected to 2-D with t-SNE and labelled by whether they match a
ground-truth anomaly group.  The paper's qualitative claim: anomalous
groups cluster away from normal groups.  The runner additionally reports a
quantitative separation statistic (silhouette-style ratio of between-class
to within-class distances) so benchmarks can assert the claim.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy.spatial.distance import cdist

from repro.core import TPGrGAD
from repro.experiments.settings import ExperimentSettings
from repro.metrics import match_groups
from repro.viz import tsne


def embedding_separation(coordinates: np.ndarray, labels: np.ndarray) -> float:
    """Between-class vs within-class mean distance ratio (>1 = separated)."""
    labels = np.asarray(labels, dtype=bool)
    if labels.all() or (~labels).any() is False or labels.sum() == 0:
        return 1.0
    anomalous = coordinates[labels]
    normal = coordinates[~labels]
    between = cdist(anomalous, normal).mean()
    within_parts = []
    if len(anomalous) > 1:
        within_parts.append(cdist(anomalous, anomalous).sum() / (len(anomalous) * (len(anomalous) - 1)))
    if len(normal) > 1:
        within_parts.append(cdist(normal, normal).sum() / (len(normal) * (len(normal) - 1)))
    within = float(np.mean(within_parts)) if within_parts else 1.0
    return float(between / max(within, 1e-12))


def run_figure7(
    settings: Optional[ExperimentSettings] = None,
    datasets: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """t-SNE coordinates + labels of TPGCL group embeddings per dataset."""
    settings = settings or ExperimentSettings()
    datasets = list(datasets if datasets is not None else settings.datasets)

    records: List[Dict[str, object]] = []
    for dataset in datasets:
        seed = settings.seeds[0]
        graph = settings.load(dataset, seed=seed)
        pipeline = TPGrGAD(settings.pipeline_config(seed=seed))
        result = pipeline.fit_detect(graph)
        if result.embeddings is None or result.n_candidates < 3:
            continue
        labels = match_groups(result.candidate_groups, list(graph.groups))
        coordinates = tsne(result.embeddings, perplexity=10.0, n_iterations=250, seed=seed)
        records.append(
            {
                "dataset": settings.display_name(dataset),
                "coordinates": coordinates.tolist(),
                "labels": labels.astype(int).tolist(),
                "separation": embedding_separation(coordinates, labels),
            }
        )
    return records


def render_figure7(records: List[Dict[str, object]]) -> str:
    """Summarise each dataset's t-SNE projection (counts + separation ratio)."""
    lines = ["Figure 7 — t-SNE of TPGCL group embeddings"]
    for record in records:
        labels = np.asarray(record["labels"], dtype=bool)
        lines.append(
            f"  {record['dataset']}: {labels.sum()} anomalous / {len(labels)} groups, "
            f"between/within separation = {record['separation']:.2f}"
        )
    return "\n".join(lines)
