"""Table II — topology-pattern statistics of the anomaly groups."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.augment.patterns import pattern_statistics
from repro.experiments.settings import ExperimentSettings
from repro.viz import format_table

# Published pattern mix (Table II).
PAPER_TABLE2: Dict[str, Dict[str, int]] = {
    "AMLPublic": {"path": 18, "tree": 1, "cycle": 0, "total": 19},
    "Ethereum-TSGN": {"path": 1, "tree": 9, "cycle": 7, "total": 17},
}


def run_table2(settings: Optional[ExperimentSettings] = None) -> List[Dict[str, object]]:
    """Classify every ground-truth group of the two real-world datasets."""
    settings = settings or ExperimentSettings()
    records: List[Dict[str, object]] = []
    for name in ("amlpublic", "ethereum-tsgn"):
        graph = settings.load(name, seed=settings.seeds[0])
        counts = pattern_statistics(graph)
        display = settings.display_name(name)
        paper = PAPER_TABLE2.get(display, {})
        records.append(
            {
                "dataset": display,
                "path": counts["path"],
                "tree": counts["tree"],
                "cycle": counts["cycle"],
                "total": counts["total"],
                "paper_path": paper.get("path", ""),
                "paper_tree": paper.get("tree", ""),
                "paper_cycle": paper.get("cycle", ""),
                "paper_total": paper.get("total", ""),
            }
        )
    return records


def render_table2(records: List[Dict[str, object]]) -> str:
    """Format the Table II comparison as ASCII."""
    columns = ["dataset", "path", "tree", "cycle", "total", "paper_path", "paper_tree", "paper_cycle", "paper_total"]
    rows = [[record[column] for column in columns] for record in records]
    return format_table(columns, rows, title="Table II — topology pattern statistics of anomaly groups")
