"""Core :class:`Tensor` type and reverse-mode backpropagation.

The implementation follows the classic define-by-run tape design: every
operation returns a new tensor holding references to its parents and a
closure that, given the gradient of the output, accumulates gradients into
the parents.  Calling :meth:`Tensor.backward` performs a topological sort of
the recorded graph and applies the closures in reverse order.

Only the operations required by the models in this repository are
implemented (dense matmul, elementwise arithmetic, reductions, activations,
indexing and concatenation), which keeps the engine small and auditable.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_state = threading.local()


def is_grad_enabled() -> bool:
    """Return whether gradient recording is currently enabled."""
    return getattr(_state, "grad_enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling gradient recording.

    Used by inference paths (anomaly scoring, embedding extraction) to avoid
    building a backward graph that would never be consumed.
    """
    previous = is_grad_enabled()
    _state.grad_enabled = False
    try:
        yield
    finally:
        _state.grad_enabled = previous


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload; always stored as ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "_op")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward_fn: Optional[Callable[[np.ndarray], None]] = None,
        _op: str = "leaf",
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple[Tensor, ...] = tuple(_parents) if is_grad_enabled() else ()
        self._backward_fn = _backward_fn if is_grad_enabled() else None
        self._op = _op

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, op={self._op}, requires_grad={self.requires_grad})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        requires_grad = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires_grad, _parents=parents, _backward_fn=backward_fn, _op=op)
        if not requires_grad:
            out._parents = ()
            out._backward_fn = None
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(grad)

        return Tensor._make(data, (self, other_t), backward, "add")

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(data, (self,), backward, "neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(-grad)

        return Tensor._make(data, (self, other_t), backward, "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other_t.data)
            other_t._accumulate(grad * self.data)

        return Tensor._make(data, (self, other_t), backward, "mul")

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other_t.data)
            other_t._accumulate(-grad * self.data / (other_t.data ** 2))

        return Tensor._make(data, (self, other_t), backward, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward, "pow")

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).matmul(self)

    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product of two 1-D or 2-D tensors."""
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad, dtype=np.float64)
            a, b = self.data, other_t.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other_t._accumulate(grad * a)
            elif a.ndim == 2 and b.ndim == 2:
                self._accumulate(grad @ b.T)
                other_t._accumulate(a.T @ grad)
            elif a.ndim == 1 and b.ndim == 2:
                self._accumulate(grad @ b.T)
                other_t._accumulate(np.outer(a, grad))
            elif a.ndim == 2 and b.ndim == 1:
                self._accumulate(np.outer(grad, b))
                other_t._accumulate(a.T @ grad)
            else:  # pragma: no cover - unsupported rank combination
                raise ValueError("matmul backward supports 1-D/2-D operands only")

        return Tensor._make(data, (self, other_t), backward, "matmul")

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def transpose(self) -> "Tensor":
        data = self.data.T

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).T)

        return Tensor._make(data, (self,), backward, "transpose")

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).reshape(original))

        return Tensor._make(data, (self,), backward, "reshape")

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(data, (self,), backward, "getitem")

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate tensors along ``axis`` with gradient support."""
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            offset = 0
            for t, size in zip(tensors, sizes):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(offset, offset + size)
                t._accumulate(grad[tuple(slicer)])
                offset += size

        return Tensor._make(data, tensors, backward, "concat")

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Stack tensors along a new axis with gradient support."""
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            for i, t in enumerate(tensors):
                t._accumulate(np.take(grad, i, axis=axis))

        return Tensor._make(data, tensors, backward, "stack")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad, dtype=np.float64)
            if axis is None:
                self._accumulate(np.ones_like(self.data) * grad)
            else:
                if not keepdims:
                    grad = np.expand_dims(grad, axis=axis)
                self._accumulate(np.broadcast_to(grad, self.data.shape))

        return Tensor._make(data, (self,), backward, "sum")

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            denom = self.data.size
        else:
            denom = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / denom)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad, dtype=np.float64)
            if axis is None:
                mask = (self.data == self.data.max()).astype(np.float64)
                mask /= mask.sum()
                self._accumulate(mask * grad)
            else:
                expanded = data if keepdims else np.expand_dims(data, axis=axis)
                mask = (self.data == expanded).astype(np.float64)
                mask /= mask.sum(axis=axis, keepdims=True)
                g = grad if keepdims else np.expand_dims(grad, axis=axis)
                self._accumulate(mask * g)

        return Tensor._make(data, (self,), backward, "max")

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward, "exp")

    def log(self, eps: float = 1e-12) -> "Tensor":
        data = np.log(self.data + eps)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / (self.data + eps))

        return Tensor._make(data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        return self.__pow__(0.5)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(data, (self,), backward, "abs")

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0.0))

        return Tensor._make(data, (self,), backward, "relu")

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        data = np.where(self.data > 0.0, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(self.data > 0.0, 1.0, negative_slope))

        return Tensor._make(data, (self,), backward, "leaky_relu")

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward, "sigmoid")

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward, "tanh")

    def softplus(self) -> "Tensor":
        clipped = np.clip(self.data, -60.0, 60.0)
        data = np.log1p(np.exp(-np.abs(clipped))) + np.maximum(clipped, 0.0)

        def backward(grad: np.ndarray) -> None:
            sig = 1.0 / (1.0 + np.exp(-clipped))
            self._accumulate(grad * sig)

        return Tensor._make(data, (self,), backward, "softplus")

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            mask = (self.data >= low) & (self.data <= high)
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward, "clip")

    def dropout(self, rate: float, rng: np.random.Generator, training: bool = True) -> "Tensor":
        """Apply inverted dropout with the given random generator."""
        if not training or rate <= 0.0:
            return self
        keep = 1.0 - rate
        mask = (rng.random(self.data.shape) < keep).astype(np.float64) / keep
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward, "dropout")

    # ------------------------------------------------------------------
    # Backpropagation
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate gradients from this tensor to all ancestors.

        Parameters
        ----------
        grad:
            Gradient of some downstream scalar with respect to this tensor.
            Defaults to 1 for scalar tensors.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")

        # Topological sort (iterative to avoid recursion limits on deep graphs).
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        # Every operation's closure accumulates into its parents' ``.grad``;
        # iterating in reverse topological order guarantees a node's own
        # gradient is complete before it is propagated further.
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)
