"""Core :class:`Tensor` type and reverse-mode backpropagation.

The implementation follows the classic define-by-run tape design: every
operation returns a new tensor holding references to its parents and a
closure that, given the gradient of the output, accumulates gradients into
the parents.  Calling :meth:`Tensor.backward` performs a topological sort of
the recorded graph and applies the closures in reverse order.

Only the operations required by the models in this repository are
implemented (dense matmul, elementwise arithmetic, reductions, activations,
indexing and concatenation), which keeps the engine small and auditable.

Two engine-level properties matter for training throughput (see DESIGN.md,
"Fast training engine"):

* **dtype awareness** — tensors carry the dtype of their payload instead of
  force-casting everything to ``float64``.  Floating arrays keep their
  dtype, scalars and non-float inputs resolve to the thread-local default
  (:func:`get_default_dtype`, ``float64`` unless a :func:`default_dtype`
  context is active), and every binary op coerces wrapped scalar operands
  to the tensor's own dtype so a ``float32`` graph never silently promotes
  back to ``float64``.  The ``float64`` path is bit-identical to the
  original engine.
* **buffer reuse** — backward closures that compute a *fresh* gradient
  array hand it to :meth:`Tensor._accumulate` with ``owned=True`` so the
  tape takes ownership instead of copying; subsequent accumulations into
  the same parent are in-place ``+=``.  This removes one full-size
  allocation per op per step without changing any value.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_state = threading.local()

_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def is_grad_enabled() -> bool:
    """Return whether gradient recording is currently enabled."""
    return getattr(_state, "grad_enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling gradient recording.

    Used by inference paths (anomaly scoring, embedding extraction) to avoid
    building a backward graph that would never be consumed.
    """
    previous = is_grad_enabled()
    _state.grad_enabled = False
    try:
        yield
    finally:
        _state.grad_enabled = previous


# ----------------------------------------------------------------------
# Default dtype (thread-local, like grad mode)
# ----------------------------------------------------------------------
def get_default_dtype() -> np.dtype:
    """The dtype given to tensors built from scalars / non-float inputs."""
    return getattr(_state, "default_dtype", np.dtype(np.float64))


def set_default_dtype(dtype) -> None:
    """Set the thread-local default floating dtype (``float32``/``float64``)."""
    resolved = np.dtype(dtype)
    if resolved not in _FLOAT_DTYPES:
        raise ValueError(f"default dtype must be float32 or float64, got {resolved}")
    _state.default_dtype = resolved


@contextlib.contextmanager
def default_dtype(dtype):
    """Context manager scoping the default floating dtype.

    Model constructors resolve initialiser dtypes through
    :func:`get_default_dtype`, so wrapping construction (and training) in
    ``default_dtype("float32")`` is how the float32 fast mode flows from a
    config down to every parameter and kernel.
    """
    previous = get_default_dtype()
    set_default_dtype(dtype)
    try:
        yield
    finally:
        _state.default_dtype = previous


# ----------------------------------------------------------------------
# Tape instrumentation
# ----------------------------------------------------------------------
def tape_node_count() -> int:
    """Number of gradient-recording tape nodes created on this thread.

    A cheap sentinel for "does this code path build a backward graph?":
    inference paths wrapped in :func:`no_grad` must leave the counter
    untouched (see ``tests/test_train_engine.py``).
    """
    return getattr(_state, "tape_nodes", 0)


def reset_tape_node_count() -> None:
    """Reset the thread-local tape node counter to zero."""
    _state.tape_nodes = 0


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        data = value.data
        return data if dtype is None else np.asarray(data, dtype=dtype)
    if dtype is not None:
        return np.asarray(value, dtype=dtype)
    if isinstance(value, (np.ndarray, np.generic)) and value.dtype in _FLOAT_DTYPES:
        return np.asarray(value)
    return np.asarray(value, dtype=get_default_dtype())


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload.  Floating arrays keep their dtype; scalars,
        lists and integer arrays are cast to the thread-local default
        dtype (``float64`` unless a :func:`default_dtype` context says
        otherwise).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    dtype:
        Optional explicit dtype overriding the resolution above.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "_op")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward_fn: Optional[Callable[[np.ndarray], None]] = None,
        _op: str = "leaf",
        dtype=None,
    ) -> None:
        self.data = _as_array(data, dtype=dtype)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple[Tensor, ...] = tuple(_parents) if is_grad_enabled() else ()
        self._backward_fn = _backward_fn if is_grad_enabled() else None
        self._op = _op

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, op={self._op}, requires_grad={self.requires_grad})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    def _wrap(self, other: ArrayLike) -> "Tensor":
        """Wrap a non-tensor operand, coercing it to this tensor's dtype.

        Keeps mixed expressions dtype-stable: ``float32_tensor * 0.5`` (or
        ``- numpy_float64_scalar``) stays ``float32`` instead of numpy
        promoting through a ``float64`` 0-d wrapper.  For ``float64``
        tensors this is exactly the old always-float64 behaviour.
        """
        return other if isinstance(other, Tensor) else Tensor(other, dtype=self.data.dtype)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        requires_grad = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires_grad, _parents=parents, _backward_fn=backward_fn, _op=op)
        if not out.requires_grad:
            out._parents = ()
            out._backward_fn = None
        else:
            _state.tape_nodes = getattr(_state, "tape_nodes", 0) + 1
        return out

    def _accumulate(self, grad: np.ndarray, owned: bool = False) -> None:
        """Add ``grad`` into this tensor's gradient buffer.

        ``owned=True`` promises the caller just allocated ``grad`` and will
        never read it again, so the first accumulation can take the array
        by reference instead of copying it.  Arrays that alias a child's
        gradient buffer (or any live view) must be passed unowned.
        """
        if not self.requires_grad:
            return
        arr = np.asarray(grad)
        if arr.dtype != self.data.dtype:
            arr = arr.astype(self.data.dtype)
            owned = True
        if arr.shape != self.data.shape:
            arr = _unbroadcast(arr, self.data.shape)
            owned = True
        if self.grad is None:
            self.grad = arr if owned else arr.copy()
        else:
            self.grad += arr

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = self._wrap(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(grad)

        return Tensor._make(data, (self, other_t), backward, "add")

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad, owned=True)

        return Tensor._make(data, (self,), backward, "neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = self._wrap(other)
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(-grad, owned=True)

        return Tensor._make(data, (self, other_t), backward, "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = self._wrap(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other_t.data, owned=True)
            other_t._accumulate(grad * self.data, owned=True)

        return Tensor._make(data, (self, other_t), backward, "mul")

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = self._wrap(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other_t.data, owned=True)
            other_t._accumulate(-grad * self.data / (other_t.data ** 2), owned=True)

        return Tensor._make(data, (self, other_t), backward, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            # exponent == 2 is the reconstruction-loss hot case; x ** 1 is
            # bitwise x, so skip the full-size allocation it would make.
            base = self.data if exponent == 2 else self.data ** (exponent - 1)
            self._accumulate(grad * exponent * base, owned=True)

        return Tensor._make(data, (self,), backward, "pow")

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other).matmul(self)

    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product of two 1-D or 2-D tensors."""
        other_t = self._wrap(other)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            a, b = self.data, other_t.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b, owned=True)
                other_t._accumulate(grad * a, owned=True)
            elif a.ndim == 2 and b.ndim == 2:
                self._accumulate(grad @ b.T, owned=True)
                other_t._accumulate(a.T @ grad, owned=True)
            elif a.ndim == 1 and b.ndim == 2:
                self._accumulate(grad @ b.T, owned=True)
                other_t._accumulate(np.outer(a, grad), owned=True)
            elif a.ndim == 2 and b.ndim == 1:
                self._accumulate(np.outer(grad, b), owned=True)
                other_t._accumulate(a.T @ grad, owned=True)
            else:  # pragma: no cover - unsupported rank combination
                raise ValueError("matmul backward supports 1-D/2-D operands only")

        return Tensor._make(data, (self, other_t), backward, "matmul")

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def transpose(self) -> "Tensor":
        data = self.data.T

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).T)

        return Tensor._make(data, (self,), backward, "transpose")

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).reshape(original))

        return Tensor._make(data, (self,), backward, "reshape")

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full, owned=True)

        return Tensor._make(data, (self,), backward, "getitem")

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate tensors along ``axis`` with gradient support."""
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            offset = 0
            for t, size in zip(tensors, sizes):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(offset, offset + size)
                t._accumulate(grad[tuple(slicer)])
                offset += size

        return Tensor._make(data, tensors, backward, "concat")

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Stack tensors along a new axis with gradient support."""
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            for i, t in enumerate(tensors):
                t._accumulate(np.take(grad, i, axis=axis), owned=True)

        return Tensor._make(data, tensors, backward, "stack")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if axis is None:
                self._accumulate(np.ones_like(self.data) * grad, owned=True)
            else:
                if not keepdims:
                    grad = np.expand_dims(grad, axis=axis)
                self._accumulate(np.broadcast_to(grad, self.data.shape))

        return Tensor._make(data, (self,), backward, "sum")

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            denom = self.data.size
        else:
            denom = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / denom)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if axis is None:
                mask = (self.data == self.data.max()).astype(self.data.dtype)
                mask /= mask.sum()
                self._accumulate(mask * grad, owned=True)
            else:
                expanded = data if keepdims else np.expand_dims(data, axis=axis)
                mask = (self.data == expanded).astype(self.data.dtype)
                mask /= mask.sum(axis=axis, keepdims=True)
                g = grad if keepdims else np.expand_dims(grad, axis=axis)
                self._accumulate(mask * g, owned=True)

        return Tensor._make(data, (self,), backward, "max")

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data, owned=True)

        return Tensor._make(data, (self,), backward, "exp")

    def log(self, eps: float = 1e-12) -> "Tensor":
        data = np.log(self.data + eps)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / (self.data + eps), owned=True)

        return Tensor._make(data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        return self.__pow__(0.5)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data), owned=True)

        return Tensor._make(data, (self,), backward, "abs")

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0.0), owned=True)

        return Tensor._make(data, (self,), backward, "relu")

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        data = np.where(self.data > 0.0, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(self.data > 0.0, 1.0, negative_slope), owned=True)

        return Tensor._make(data, (self,), backward, "leaky_relu")

    def sigmoid(self) -> "Tensor":
        # In-place chain equivalent to 1 / (1 + exp(-clip(x))): one buffer
        # instead of five n×n temporaries — this is the inner-product
        # decoder's hot path.  Each rewritten step applies the identical
        # scalar operation (1.0 + t commutes), so values are bitwise equal
        # to the allocating form.
        data = np.clip(self.data, -60.0, 60.0)
        np.negative(data, out=data)
        np.exp(data, out=data)
        data += 1.0
        np.divide(1.0, data, out=data)

        def backward(grad: np.ndarray) -> None:
            # Same pairing as grad * data * (1.0 - data), third product in place.
            out = grad * data
            out *= np.subtract(1.0, data)
            self._accumulate(out, owned=True)

        return Tensor._make(data, (self,), backward, "sigmoid")

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data ** 2), owned=True)

        return Tensor._make(data, (self,), backward, "tanh")

    def softplus(self) -> "Tensor":
        clipped = np.clip(self.data, -60.0, 60.0)
        data = np.log1p(np.exp(-np.abs(clipped))) + np.maximum(clipped, 0.0)

        def backward(grad: np.ndarray) -> None:
            sig = 1.0 / (1.0 + np.exp(-clipped))
            self._accumulate(grad * sig, owned=True)

        return Tensor._make(data, (self,), backward, "softplus")

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            mask = (self.data >= low) & (self.data <= high)
            self._accumulate(grad * mask, owned=True)

        return Tensor._make(data, (self,), backward, "clip")

    def dropout(self, rate: float, rng: np.random.Generator, training: bool = True) -> "Tensor":
        """Apply inverted dropout with the given random generator."""
        if not training or rate <= 0.0:
            return self
        keep = 1.0 - rate
        mask = (rng.random(self.data.shape) < keep).astype(self.data.dtype) / keep
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask, owned=True)

        return Tensor._make(data, (self,), backward, "dropout")

    # ------------------------------------------------------------------
    # Backpropagation
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate gradients from this tensor to all ancestors.

        Parameters
        ----------
        grad:
            Gradient of some downstream scalar with respect to this tensor.
            Defaults to 1 for scalar tensors.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")

        # Topological sort (iterative to avoid recursion limits on deep graphs).
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        # Every operation's closure accumulates into its parents' ``.grad``;
        # iterating in reverse topological order guarantees a node's own
        # gradient is complete before it is propagated further.
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)
