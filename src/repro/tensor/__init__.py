"""Reverse-mode automatic differentiation on top of numpy.

This subpackage is the neural-network substrate of the reproduction: the
paper trains small GCN encoders and MLP heads with Adam, which in the
original implementation relies on PyTorch.  Here we provide a compact but
complete autodiff engine with exactly the operator set those models need.

The public entry point is :class:`Tensor`.  A tensor wraps a numpy array,
remembers the operation that produced it, and :meth:`Tensor.backward`
propagates gradients through the recorded graph.

Example
-------
>>> from repro.tensor import Tensor
>>> w = Tensor([[1.0, 2.0]], requires_grad=True)
>>> x = Tensor([[3.0], [4.0]])
>>> loss = (w @ x).sum()
>>> loss.backward()
>>> w.grad.tolist()
[[3.0, 4.0]]
"""

from repro.tensor.tensor import (
    Tensor,
    no_grad,
    is_grad_enabled,
    default_dtype,
    get_default_dtype,
    set_default_dtype,
    tape_node_count,
    reset_tape_node_count,
)
from repro.tensor import functional
from repro.tensor.functional import spmm

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "default_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "tape_node_count",
    "reset_tape_node_count",
    "functional",
    "spmm",
]
