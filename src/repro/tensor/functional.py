"""Functional helpers built on top of :class:`repro.tensor.Tensor`.

These free functions mirror the small subset of ``torch.nn.functional``
the models in this repository use: row-wise softmax / log-softmax,
numerically stable binary cross entropy, mean squared error, L2
normalisation, and a sparse-dense matrix product (``spmm``) for GCN
propagation with scipy CSR matrices.

The module also hosts the *fused* training kernels of the fast training
engine (DESIGN.md, "Fast training engine"):

* :func:`gae_reconstruction_loss` — the GAE objective
  ``λ·mean((A−A')²) + (1−λ)·mean((X−X')²)`` as a single tape node.  The
  unfused expression records ten tape nodes and allocates ~7 full ``n×n``
  temporaries per epoch (forward intermediates, the ``ones_like`` seed
  gradient, per-op backward products); the fused kernel keeps two forward
  residuals and writes one backward product per term, while reproducing
  the unfused float64 forward value and gradients *bit for bit* (it
  applies the identical scalar operations in the identical order).
* :func:`segment_mean` — sparse-matrix mean readout over row segments,
  the batched replacement for per-subgraph ``mean(axis=0)`` + concat.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.tensor.tensor import Tensor


def spmm(matrix: Union[sp.spmatrix, np.ndarray], x: Tensor) -> Tensor:
    """Product ``matrix @ x`` where ``matrix`` is a constant sparse matrix.

    The matrix (typically a normalised adjacency) is a constant of the
    optimisation problem, so gradients flow only into ``x``:
    ``d(loss)/dx = matrixᵀ @ d(loss)/d(out)``.  Dense inputs fall back to
    the ordinary autodiff matmul.  The matrix is cast to ``x``'s dtype, so
    a float32 graph runs float32 sparse products end to end.
    """
    x_t = x if isinstance(x, Tensor) else Tensor(x)
    if not sp.issparse(matrix):
        return Tensor(np.asarray(matrix, dtype=x_t.data.dtype)) @ x_t
    csr = matrix.tocsr()
    if csr.dtype != x_t.data.dtype:
        csr = csr.astype(x_t.data.dtype)
    data = np.asarray(csr @ x_t.data)

    def backward(grad: np.ndarray) -> None:
        x_t._accumulate(np.asarray(csr.T @ np.asarray(grad)), owned=True)

    return Tensor._make(data, (x_t,), backward, "spmm")


def segment_mean(x: Tensor, segment_sizes: Sequence[int]) -> Tensor:
    """Mean over consecutive row segments of ``x``; returns ``(m, d)``.

    Segment ``i`` covers rows ``[offset_i, offset_i + segment_sizes[i])``.
    Implemented as one sparse averaging product ``M @ x`` (rows of ``M``
    hold ``1/n_i`` at the segment's positions), so a block-diagonal batch
    of group subgraphs reads out every group embedding in a single
    SpMM-backed tape node instead of a per-group mean + concatenate loop.
    """
    sizes = np.asarray(segment_sizes, dtype=np.int64)
    if sizes.ndim != 1 or sizes.size == 0 or (sizes <= 0).any():
        raise ValueError("segment_sizes must be a non-empty sequence of positive ints")
    x_t = x if isinstance(x, Tensor) else Tensor(x)
    total = int(sizes.sum())
    if x_t.data.shape[0] != total:
        raise ValueError(f"x has {x_t.data.shape[0]} rows but segments cover {total}")
    rows = np.repeat(np.arange(sizes.size), sizes)
    values = np.repeat(1.0 / sizes, sizes).astype(x_t.data.dtype, copy=False)
    averaging = sp.csr_matrix(
        (values, (rows, np.arange(total))), shape=(sizes.size, total)
    )
    return spmm(averaging, x_t)


def _workspace_buffer(workspace, key: str, shape, dtype) -> np.ndarray:
    """Fetch (or lazily allocate) a reusable array from a workspace dict."""
    buffer = workspace.get(key)
    if buffer is None or buffer.shape != shape or buffer.dtype != dtype:
        buffer = np.empty(shape, dtype=dtype)
        workspace[key] = buffer
    return buffer


def gae_reconstruction_loss(
    structure_hat: Tensor,
    structure_target: np.ndarray,
    attribute_hat: Tensor,
    attribute_target: np.ndarray,
    structure_weight: float,
    workspace: Optional[dict] = None,
) -> Tensor:
    """Fused GAE objective ``λ·mean((A−A')²) + (1−λ)·mean((X−X')²)``.

    Bit-identical in value and gradients to the unfused autodiff graph

    .. code-block:: python

        ((structure_hat - A) ** 2).mean() * lam \
            + ((attribute_hat - X) ** 2).mean() * (1.0 - lam)

    but recorded as one tape node: the only retained intermediates are the
    two residual matrices, and each backward pass performs exactly one
    full-size multiply per term.  Targets are constants of the problem
    (no gradient flows into them).

    ``workspace`` (an ordinary dict owned by the training loop) makes the
    kernel allocation-free across epochs: residuals and squared residuals
    are written into persistent buffers, and the backward product is formed
    in place over the residual.  The gradient handed to ``structure_hat``
    then *is* the workspace buffer — valid for the current backward pass,
    overwritten by the next forward — which is exactly the lifetime a
    training step needs.  Pass ``None`` (default) for fully independent
    gradient arrays.
    """
    s_hat = structure_hat if isinstance(structure_hat, Tensor) else Tensor(structure_hat)
    a_hat = attribute_hat if isinstance(attribute_hat, Tensor) else Tensor(attribute_hat)
    s_target = np.asarray(structure_target)
    a_target = np.asarray(attribute_target)
    lam = float(structure_weight)

    # Forward: the exact op sequence of the unfused graph (sub, pow 2,
    # sum, * 1/size, * weight, add) so float64 values match bitwise
    # (x ** 2 is computed as x·x by numpy, which the buffered path mirrors).
    if workspace is None:
        s_diff = s_hat.data - s_target
        a_diff = a_hat.data - a_target
        s_sq, a_sq = s_diff ** 2, a_diff ** 2
    else:
        s_diff = np.subtract(
            s_hat.data, s_target,
            out=_workspace_buffer(workspace, "s_diff", s_hat.data.shape, s_hat.data.dtype),
        )
        a_diff = np.subtract(
            a_hat.data, a_target,
            out=_workspace_buffer(workspace, "a_diff", a_hat.data.shape, a_hat.data.dtype),
        )
        s_sq = np.multiply(
            s_diff, s_diff,
            out=_workspace_buffer(workspace, "s_sq", s_diff.shape, s_diff.dtype),
        )
        a_sq = np.multiply(
            a_diff, a_diff,
            out=_workspace_buffer(workspace, "a_sq", a_diff.shape, a_diff.dtype),
        )
    s_mean = s_sq.sum() * (1.0 / s_diff.size)
    a_mean = a_sq.sum() * (1.0 / a_diff.size)
    loss = s_mean * lam + a_mean * (1.0 - lam)

    def backward(grad: np.ndarray) -> None:
        # Mirrors the unfused chain: each residual's upstream coefficient
        # is ((g * weight) * (1/size)) * 2, applied in that order.
        g = np.asarray(grad)
        s_coeff = ((g * lam) * (1.0 / s_diff.size)) * 2
        a_coeff = ((g * (1.0 - lam)) * (1.0 / a_diff.size)) * 2
        if workspace is None:
            s_grad = s_coeff * s_diff
            a_grad = a_coeff * a_diff
        else:
            s_grad = np.multiply(s_diff, s_coeff, out=s_diff)
            a_grad = np.multiply(a_diff, a_coeff, out=a_diff)
        s_hat._accumulate(s_grad, owned=True)
        a_hat._accumulate(a_grad, owned=True)

    return Tensor._make(np.asarray(loss), (s_hat, a_hat), backward, "gae_loss")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log of the softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error between ``prediction`` and ``target``."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target.detach()
    return (diff * diff).mean()


def binary_cross_entropy(prediction: Tensor, target: Tensor, eps: float = 1e-7) -> Tensor:
    """Binary cross entropy for probabilities in ``[0, 1]``."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    clipped = prediction.clip(eps, 1.0 - eps)
    loss = -(target_t.detach() * clipped.log() + (1.0 - target_t.detach()) * (1.0 - clipped).log())
    return loss.mean()


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalise rows (or the given axis) of ``x`` to unit L2 norm."""
    norm = ((x * x).sum(axis=axis, keepdims=True) + eps) ** 0.5
    return x / norm


def frobenius_error(a: Tensor, b: Tensor) -> Tensor:
    """Mean of squared entrywise differences between two matrices."""
    diff = a - (b if isinstance(b, Tensor) else Tensor(b))
    return (diff * diff).mean()


def row_errors(prediction: np.ndarray, target: np.ndarray, ord: int = 2) -> np.ndarray:
    """Per-row reconstruction error (plain numpy helper, no gradients).

    Used by the GAE family to turn reconstructed matrices into per-node
    anomaly scores, cf. Eqn. (1) of the paper.
    """
    diff = np.asarray(prediction, dtype=np.float64) - np.asarray(target, dtype=np.float64)
    if ord == 2:
        return np.sqrt((diff ** 2).sum(axis=1))
    return np.abs(diff).sum(axis=1)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (thin wrapper for discoverability)."""
    return Tensor.concatenate(tensors, axis=axis)
