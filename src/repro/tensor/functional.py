"""Functional helpers built on top of :class:`repro.tensor.Tensor`.

These free functions mirror the small subset of ``torch.nn.functional``
the models in this repository use: row-wise softmax / log-softmax,
numerically stable binary cross entropy, mean squared error, L2
normalisation, and a sparse-dense matrix product (``spmm``) for GCN
propagation with scipy CSR matrices.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.tensor.tensor import Tensor


def spmm(matrix: Union[sp.spmatrix, np.ndarray], x: Tensor) -> Tensor:
    """Product ``matrix @ x`` where ``matrix`` is a constant sparse matrix.

    The matrix (typically a normalised adjacency) is a constant of the
    optimisation problem, so gradients flow only into ``x``:
    ``d(loss)/dx = matrixᵀ @ d(loss)/d(out)``.  Dense inputs fall back to
    the ordinary autodiff matmul.
    """
    x_t = x if isinstance(x, Tensor) else Tensor(x)
    if not sp.issparse(matrix):
        return Tensor(np.asarray(matrix, dtype=np.float64)) @ x_t
    csr = matrix.tocsr()
    if csr.dtype != np.float64:
        csr = csr.astype(np.float64)
    data = np.asarray(csr @ x_t.data)

    def backward(grad: np.ndarray) -> None:
        x_t._accumulate(np.asarray(csr.T @ np.asarray(grad, dtype=np.float64)))

    return Tensor._make(data, (x_t,), backward, "spmm")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log of the softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error between ``prediction`` and ``target``."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target.detach()
    return (diff * diff).mean()


def binary_cross_entropy(prediction: Tensor, target: Tensor, eps: float = 1e-7) -> Tensor:
    """Binary cross entropy for probabilities in ``[0, 1]``."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    clipped = prediction.clip(eps, 1.0 - eps)
    loss = -(target_t.detach() * clipped.log() + (1.0 - target_t.detach()) * (1.0 - clipped).log())
    return loss.mean()


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalise rows (or the given axis) of ``x`` to unit L2 norm."""
    norm = ((x * x).sum(axis=axis, keepdims=True) + eps) ** 0.5
    return x / norm


def frobenius_error(a: Tensor, b: Tensor) -> Tensor:
    """Mean of squared entrywise differences between two matrices."""
    diff = a - (b if isinstance(b, Tensor) else Tensor(b))
    return (diff * diff).mean()


def row_errors(prediction: np.ndarray, target: np.ndarray, ord: int = 2) -> np.ndarray:
    """Per-row reconstruction error (plain numpy helper, no gradients).

    Used by the GAE family to turn reconstructed matrices into per-node
    anomaly scores, cf. Eqn. (1) of the paper.
    """
    diff = np.asarray(prediction, dtype=np.float64) - np.asarray(target, dtype=np.float64)
    if ord == 2:
        return np.sqrt((diff ** 2).sum(axis=1))
    return np.abs(diff).sum(axis=1)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (thin wrapper for discoverability)."""
    return Tensor.concatenate(tensors, axis=axis)
