"""Online scoring service: micro-batching server + versioned model registry.

The serving layer of the project (DESIGN.md, "Online scoring service"):
:class:`ModelRegistry` loads :mod:`repro.persist` artifacts as versioned,
hot-swappable models; :class:`MicroBatcher` coalesces concurrent
``/score`` requests into deduplicated pipeline batches; and
:class:`ScoringServer` is the stdlib-asyncio HTTP front end with
admission control and JSON metrics.  ``python -m repro.serve --artifact
PATH`` boots it from the command line; :class:`ScoringClient` is the
matching blocking client.
"""

from repro.serve.batcher import (
    DeadlineExceededError,
    MicroBatcher,
    RequestError,
    ServeConfig,
    ShedError,
)
from repro.serve.client import (
    DeadlineError,
    JobFailedError,
    LoadShedError,
    ScoringClient,
    ServeError,
)
from repro.serve.metrics import ServerMetrics
from repro.serve.registry import ModelEntry, ModelRegistry
from repro.serve.server import ScoringServer, ServerHandle, start_server_thread

__all__ = [
    "DeadlineError",
    "DeadlineExceededError",
    "JobFailedError",
    "LoadShedError",
    "MicroBatcher",
    "ModelEntry",
    "ModelRegistry",
    "RequestError",
    "ScoringClient",
    "ScoringServer",
    "ServeConfig",
    "ServeError",
    "ServerHandle",
    "ServerMetrics",
    "ShedError",
    "start_server_thread",
]
