"""Versioned model registry backed by :mod:`repro.persist` artifacts.

The registry is the serving boundary's source of truth for *which model
produced a response*: every entry records the artifact path it was loaded
from, a monotonically increasing per-name version, and the two identity
hashes the rest of the project already uses — the config's
:meth:`~repro.core.TPGrGADConfig.content_hash` and the fitted graph's
fingerprint (both also stored in the artifact manifest).  ``/score``
responses echo ``(name, version, config_hash)`` so any result can be
traced back to the exact artifact directory that served it.

Hot swap is a load-then-replace: :meth:`ModelRegistry.load` reads the new
artifact fully *outside* the lock, then swaps the dict entry under it.
In-flight micro-batches captured the previous :class:`ModelEntry` before
the swap and finish scoring against it — requests are never dropped, and
a response is always attributed to the version that actually scored it.
A failed load (missing path, corrupt manifest) raises before the swap, so
the previous version keeps serving.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.core.pipeline import TPGrGAD
from repro.persist import PipelineState


class ModelEntry:
    """One loaded artifact: a warm serving detector plus identity metadata.

    ``detector`` serves ``detect_only`` (warm inference; thread-safe —
    pinned by ``tests/test_serve.py``).  ``fit_detector`` is a separate,
    lazily created pipeline for ``mode="fit_detect"`` requests: cold fits
    must never overwrite the warm artifact state the entry's identity
    advertises, and keeping the fit path on its own ``TPGrGAD`` also
    gives it its own per-graph LRU stage cache (repeated graphs across
    micro-batches skip retraining entirely).
    """

    def __init__(self, name: str, version: int, path: str, state: PipelineState) -> None:
        self.name = name
        self.version = version
        self.path = path
        self.state = state
        self.detector = TPGrGAD.from_state(state)
        self.loaded_at_unix = int(time.time())
        self._fit_detector: Optional[TPGrGAD] = None
        self._fit_lock = threading.Lock()
        # Serving counters (batch scoring runs in executor threads, so
        # they take their own lock, not the registry's).
        self._serve_lock = threading.Lock()
        self.requests_served = 0
        self.tape_nodes_total = 0

    def record_served(self, n_requests: int, tape_nodes: int = 0) -> None:
        """Account scored requests (and autodiff tape growth) to this entry."""
        with self._serve_lock:
            self.requests_served += int(n_requests)
            self.tape_nodes_total += max(0, int(tape_nodes))

    @property
    def config_hash(self) -> str:
        return self.state.config_hash()

    def identity(self) -> Dict:
        """The attribution triple every scoring surface echoes.

        Shared by ``/score`` responses, job dedup keys and job records,
        so the three can never disagree about which artifact answered.
        """
        return {"model": self.name, "version": self.version, "config_hash": self.config_hash}

    @property
    def fit_detector(self) -> TPGrGAD:
        with self._fit_lock:
            if self._fit_detector is None:
                self._fit_detector = TPGrGAD(self.state.config)
            return self._fit_detector

    def describe(self) -> Dict:
        """The ``/models`` JSON row for this entry."""
        info = {
            "name": self.name,
            "version": self.version,
            "path": self.path,
            "config_hash": self.config_hash,
            "graph_fingerprint": self.state.graph_fingerprint,
            "n_features": self.state.n_features,
            "has_tpgcl": self.state.tpgcl_state is not None,
            "loaded_at_unix": self.loaded_at_unix,
        }
        with self._serve_lock:
            info["requests_served"] = self.requests_served
            info["tape_nodes_total"] = self.tape_nodes_total
        # Re-loading a name bumps its version, so swaps = version - 1.
        info["swap_count"] = self.version - 1
        fit = self._fit_detector
        info["fit_cache"] = fit.cache_info() if fit is not None else None
        return info


class ModelRegistry:
    """Name → :class:`ModelEntry` map with atomic hot swap."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._models: Dict[str, ModelEntry] = {}
        self._default: Optional[str] = None

    # ------------------------------------------------------------------
    def load(self, name: str, path: str, default: bool = False) -> ModelEntry:
        """Register ``name`` from an artifact directory, or hot-swap it.

        The artifact is read completely before the registry mutates, so a
        bad path or corrupt manifest leaves the currently served version
        untouched.  Re-loading an existing name bumps its version — even
        when the path is unchanged, since the directory contents may have
        been re-written in place by a training job.
        """
        name = str(name)
        if not name:
            raise ValueError("model name must be non-empty")
        state = PipelineState.load(path)  # may raise: nothing swapped yet
        with self._lock:
            previous = self._models.get(name)
            version = 1 if previous is None else previous.version + 1
            entry = ModelEntry(name, version, str(path), state)
            self._models[name] = entry
            if default or self._default is None:
                self._default = name
        return entry

    def get(self, name: Optional[str] = None) -> ModelEntry:
        """The entry for ``name``, or the default model when ``name`` is None."""
        with self._lock:
            if name is None:
                if self._default is None:
                    raise KeyError("registry is empty: no models loaded")
                return self._models[self._default]
            entry = self._models.get(str(name))
            if entry is None:
                raise KeyError(
                    f"unknown model {name!r}; loaded models: {sorted(self._models)}"
                )
            return entry

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._models)

    @property
    def default_name(self) -> Optional[str]:
        with self._lock:
            return self._default

    def describe(self) -> Dict:
        """The ``/models`` JSON body: every entry plus the default name."""
        with self._lock:
            entries = list(self._models.values())
            default = self._default
        return {
            "default": default,
            "models": [entry.describe() for entry in sorted(entries, key=lambda e: e.name)],
        }
