"""The micro-batching scheduler of the scoring service.

Concurrent ``/score`` requests are coalesced into micro-batches: the
scheduler takes the first queued request, then waits at most
``max_wait_ms`` for up to ``max_batch - 1`` more before scoring the whole
batch in one executor-thread pass.  Within a batch, requests are grouped
by ``(model, mode, threshold)`` and **deduplicated by graph
fingerprint** — ten dashboards asking for the same snapshot cost one
``detect_only``, the in-flight analogue of the pipeline's per-graph stage
cache (``mode="fit_detect"`` batches additionally go through
``fit_detect_many`` and therefore *do* hit that LRU cache across
batches).  Batches with many distinct graphs can optionally be sharded
across worker processes by broadcasting the model's artifact path through
:class:`repro.parallel.ParallelExecutor`.

Scoring a request through a batch returns **exactly** the result of
calling ``detect_only`` / ``fit_detect`` directly on the same graph and
artifact: grouping keys pin every input of the (deterministic) pipeline,
so coalescing can change latency, never scores.  Pinned by
``tests/test_serve.py`` and ``benchmarks/test_serve_throughput.py``.

Admission control lives at the mouth of the queue: a bounded
``asyncio.Queue`` sheds excess load with :class:`ShedError` (the HTTP
layer turns it into ``429`` + ``Retry-After``), and each request carries
an optional deadline — requests whose deadline expired while queued are
answered with :class:`DeadlineExceededError` (``504``) instead of wasting
scorer time on an answer nobody is waiting for.
"""

from __future__ import annotations

import asyncio
import contextvars
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graph import Graph
from repro.obs.provenance import ProvenanceLog, build_record, score_digest
from repro.obs.tracer import get_tracer
from repro.serve.metrics import ServerMetrics
from repro.serve.registry import ModelEntry, ModelRegistry
from repro.tensor import tape_node_count

#: Request modes: warm inference on the loaded artifact weights (default)
#: vs a cold, from-scratch fit with the artifact's config.
MODES = ("detect_only", "fit_detect")


class ShedError(Exception):
    """Queue full — the request was load-shed at admission."""

    def __init__(self, retry_after_s: float) -> None:
        super().__init__(f"scoring queue full; retry after {retry_after_s:.1f}s")
        self.retry_after_s = retry_after_s


class DeadlineExceededError(Exception):
    """The request's deadline budget expired while it waited in the queue."""


class RequestError(Exception):
    """A per-request failure with an HTTP status (unknown model, bad graph)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class ServeConfig:
    """All knobs of the scoring service in one place.

    ``max_batch`` / ``max_wait_ms`` tune the micro-batcher: a batch is
    dispatched as soon as it is full or the oldest member has waited
    ``max_wait_ms``.  ``max_batch=1`` disables coalescing (the sequential
    baseline of the throughput benchmark).  ``queue_size`` bounds
    admission; ``default_timeout_ms`` is the per-request deadline budget
    used when a request does not set its own (``None`` = no deadline).
    ``n_workers > 1`` shards batches with at least
    ``parallel_min_graphs`` *distinct* graphs across a process pool via
    :class:`repro.parallel.ParallelExecutor` (worth it only when single
    scores are expensive — each dispatch pays pool startup).

    ``provenance_path`` turns on the per-response provenance log (see
    :mod:`repro.obs.provenance`): every successful ``/score`` response
    appends one JSONL record tying it to the model version, config hash,
    graph fingerprint and a bit-exact score digest.
    ``provenance_include_graph`` embeds the scored graph in each record,
    making the log self-contained for offline replay verification (at
    the cost of log size).

    ``job_store_path`` turns on the durable async batch API (see
    :mod:`repro.jobs`): ``POST /jobs`` submissions are persisted to a
    WAL-mode sqlite store and drained through this same micro-batcher by
    ``job_workers`` lease-holding worker tasks.  ``job_max_queued`` /
    ``job_max_running`` are the *per-tenant* quotas (tenants are
    identified by the ``X-API-Key`` request header), and
    ``job_lease_ttl_s`` bounds how long a crashed worker can hold a job
    before it is requeued.
    """

    max_batch: int = 16
    max_wait_ms: float = 5.0
    queue_size: int = 128
    default_timeout_ms: Optional[float] = None
    retry_after_s: float = 1.0
    n_workers: int = 1
    parallel_min_graphs: int = 4
    max_body_bytes: int = 64 * 1024 * 1024
    provenance_path: Optional[str] = None
    provenance_include_graph: bool = False
    job_store_path: Optional[str] = None
    job_workers: int = 1
    job_claim_batch: int = 8
    job_lease_ttl_s: float = 30.0
    job_poll_interval_s: float = 0.05
    job_max_attempts: int = 3
    job_max_queued: int = 64
    job_max_running: int = 8

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if self.job_workers < 1:
            raise ValueError("job_workers must be >= 1")
        if self.job_lease_ttl_s <= 0:
            raise ValueError("job_lease_ttl_s must be > 0")


#: Queue sentinel: a drain-stop was requested; the scheduler finishes
#: everything admitted before it, then exits cleanly.
_STOP = object()


@dataclass
class _Pending:
    """One admitted ``/score`` request waiting for its batch."""

    graph: Graph
    model: Optional[str]
    threshold: Optional[float]
    mode: str
    deadline: Optional[float]  # monotonic seconds; None = no budget
    enqueued_at: float
    future: "asyncio.Future"


class MicroBatcher:
    """Single-consumer scheduler: admit → coalesce → score → fan out."""

    def __init__(
        self,
        registry: ModelRegistry,
        config: Optional[ServeConfig] = None,
        metrics: Optional[ServerMetrics] = None,
    ) -> None:
        self.registry = registry
        self.config = config or ServeConfig()
        self.metrics = metrics or ServerMetrics()
        self.provenance: Optional[ProvenanceLog] = (
            ProvenanceLog(self.config.provenance_path) if self.config.provenance_path else None
        )
        self._queue: Optional["asyncio.Queue[_Pending]"] = None
        self._task: Optional["asyncio.Task"] = None
        self._stopping = False
        self._drain_seen = False

    # ------------------------------------------------------------------
    # Lifecycle (call from the event loop)
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._queue = asyncio.Queue(maxsize=self.config.queue_size)
        self._stopping = False
        self._drain_seen = False
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self, drain: bool = False, drain_timeout_s: float = 60.0) -> None:
        """Stop the scheduler.

        ``drain=False`` (the default) cancels immediately — in-flight
        futures are abandoned, matching pre-drain behaviour.
        ``drain=True`` is the graceful path: admission is closed (new
        submits shed), every already-admitted request is scored and
        answered, and only then does the scheduler exit.  A wedged batch
        falls back to cancellation after ``drain_timeout_s``.
        """
        if self._task is not None:
            if drain and self._queue is not None:
                self._stopping = True  # sheds new submissions immediately
                await self._queue.put(_STOP)
                try:
                    await asyncio.wait_for(asyncio.shield(self._task), drain_timeout_s)
                except asyncio.TimeoutError:  # pragma: no cover - wedged batch
                    self._task.cancel()
                    try:
                        await self._task
                    except asyncio.CancelledError:
                        pass
            else:
                self._task.cancel()
                try:
                    await self._task
                except asyncio.CancelledError:
                    pass
            self._task = None
        if self.provenance is not None:
            self.provenance.close()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(
        self,
        graph: Graph,
        model: Optional[str] = None,
        threshold: Optional[float] = None,
        mode: str = "detect_only",
        timeout_ms: Optional[float] = None,
    ) -> "asyncio.Future":
        """Admit one request; the returned future resolves to the response dict.

        Raises :class:`ShedError` immediately when the queue is full, and
        :class:`RequestError` for an invalid mode — both before the
        request consumes any scheduler capacity.
        """
        if self._queue is None:
            raise RuntimeError("MicroBatcher.start() has not run")
        if self._stopping:
            raise ShedError(self.config.retry_after_s)
        if mode not in MODES:
            raise RequestError(400, f"unknown mode {mode!r}; expected one of {MODES}")
        if timeout_ms is None:
            timeout_ms = self.config.default_timeout_ms
        now = time.monotonic()
        pending = _Pending(
            graph=graph,
            model=model,
            threshold=None if threshold is None else float(threshold),
            mode=mode,
            deadline=None if timeout_ms is None else now + float(timeout_ms) / 1e3,
            enqueued_at=now,
            future=asyncio.get_running_loop().create_future(),
        )
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            raise ShedError(self.config.retry_after_s) from None
        self.metrics.record_admitted()
        return pending.future

    # ------------------------------------------------------------------
    # The scheduler loop
    # ------------------------------------------------------------------
    async def _collect_batch(self) -> List[_Pending]:
        """Block for the first request, then coalesce up to the batch bounds.

        Seeing the drain sentinel sets ``_drain_seen`` and ends the
        collection immediately: the sentinel was enqueued *after* every
        admitted request (FIFO), so once it surfaces nothing admitted
        before the stop can still be waiting.
        """
        assert self._queue is not None
        first = await self._queue.get()
        if first is _STOP:
            self._drain_seen = True
            return []
        batch = [first]
        budget = self.config.max_wait_ms / 1e3
        loop = asyncio.get_running_loop()
        deadline = loop.time() + budget
        while len(batch) < self.config.max_batch:
            remaining = deadline - loop.time()
            if remaining <= 0:
                # Budget spent: still sweep whatever is already queued —
                # leaving ready requests behind would only split batches.
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            else:
                try:
                    item = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
            if item is _STOP:
                self._drain_seen = True
                break
            batch.append(item)
        return batch

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await self._collect_batch()
            if not batch and self._drain_seen:
                return
            # Score in a worker thread so /healthz and admission stay
            # responsive during a long batch; the loop itself remains the
            # single consumer, so batches never overlap.  The batch span
            # is opened here on the event loop and the context copied
            # into the executor thread, so the pipeline spans _process
            # opens over there nest under it.
            tracer = get_tracer()
            with tracer.span("serve.batch") as span:
                context = contextvars.copy_context()
                outcomes = await loop.run_in_executor(None, context.run, self._process, batch)
                if tracer.enabled:
                    span.set("n_requests", len(batch))
            now = time.monotonic()
            for pending, outcome in outcomes:
                if pending.future.cancelled():
                    continue
                if isinstance(outcome, Exception):
                    pending.future.set_exception(outcome)
                else:
                    self.metrics.record_scored(now - pending.enqueued_at)
                    pending.future.set_result(outcome)
            if self._drain_seen:
                return

    # ------------------------------------------------------------------
    # Batch scoring (runs in an executor thread)
    # ------------------------------------------------------------------
    def _process(self, batch: List[_Pending]) -> List[Tuple[_Pending, object]]:
        outcomes: List[Tuple[_Pending, object]] = []
        now = time.monotonic()
        groups: "OrderedDict[Tuple[Optional[str], str, Optional[float]], List[_Pending]]" = OrderedDict()
        for pending in batch:
            if pending.deadline is not None and now > pending.deadline:
                outcomes.append((pending, DeadlineExceededError(
                    f"deadline expired after {(now - pending.enqueued_at) * 1e3:.0f}ms in queue"
                )))
                continue
            groups.setdefault((pending.model, pending.mode, pending.threshold), []).append(pending)

        live = sum(len(members) for members in groups.values())
        n_unique_total = 0
        n_scored = 0
        for (model, mode, threshold), members in groups.items():
            try:
                entry = self.registry.get(model)
            except KeyError as error:
                failure = RequestError(404, str(error))
                outcomes.extend((pending, failure) for pending in members)
                continue
            try:
                scored, n_unique = self._score_group(entry, mode, threshold, members, len(batch))
            except ValueError as error:
                # Graph incompatible with the model (feature dim, bad shape).
                failure = RequestError(400, str(error))
                outcomes.extend((pending, failure) for pending in members)
            except Exception as error:  # noqa: BLE001 - surfaced as HTTP 500
                failure = RequestError(500, f"scoring failed: {error}")
                outcomes.extend((pending, failure) for pending in members)
            else:
                n_unique_total += n_unique
                n_scored += len(members)
                outcomes.extend(scored)
        if live:
            self.metrics.record_batch(live, n_unique_total, n_scored)
        return outcomes

    def _score_group(
        self,
        entry: ModelEntry,
        mode: str,
        threshold: Optional[float],
        members: List[_Pending],
        batch_size: int,
    ) -> Tuple[List[Tuple[_Pending, Dict]], int]:
        """Score one ``(model, mode, threshold)`` group, deduplicated."""
        unique: "OrderedDict[str, Graph]" = OrderedDict()
        keys: List[str] = []
        for pending in members:
            key = pending.graph.fingerprint()
            keys.append(key)
            unique.setdefault(key, pending.graph)
        graphs = list(unique.values())

        tracer = get_tracer()
        with tracer.span("serve.score_group", model=entry.name, mode=mode) as span:
            # Tape growth is thread-local and this whole group scores on
            # this executor thread, so the delta attributes the autodiff
            # cost (which must be ~0 for warm detect_only) to the entry.
            tape_before = tape_node_count()
            if mode == "fit_detect":
                # Cold fits route through the entry's dedicated fit pipeline:
                # fit_detect_many's per-(fingerprint, config-hash) LRU cache
                # persists across micro-batches, so repeats skip training.
                results = entry.fit_detector.fit_detect_many(graphs, threshold=threshold)
            elif self.config.n_workers > 1 and len(graphs) >= self.config.parallel_min_graphs:
                from repro.parallel import ParallelExecutor

                executor = ParallelExecutor(
                    entry.state.config, n_workers=self.config.n_workers, artifact=entry.path
                )
                results = executor.fit_detect_many(graphs, threshold=threshold)
            else:
                results = [entry.detector.detect_only(graph, threshold=threshold) for graph in graphs]
            tape_delta = tape_node_count() - tape_before
            if tracer.enabled:
                span.add("tape_node_count", tape_delta)
                span.set("n_unique", len(graphs))
                span.set("group_size", len(members))
        entry.record_served(len(members), tape_delta)

        by_key = {key: result.to_json_dict() for key, result in zip(unique, results)}
        trace_id = tracer.trace_id if tracer.enabled else None
        digests: Dict[str, str] = {}
        if self.provenance is not None:
            digests = {key: score_digest(result_json) for key, result_json in by_key.items()}
        scored: List[Tuple[_Pending, Dict]] = []
        for pending, key in zip(members, keys):
            response = {
                **entry.identity(),
                "mode": mode,
                "graph_fingerprint": key,
                "batch": {"size": batch_size, "group_size": len(members), "n_unique": len(graphs)},
                "result": by_key[key],
            }
            if trace_id is not None:
                response["trace_id"] = trace_id
            if self.provenance is not None:
                record = build_record(
                    model=entry.name,
                    version=entry.version,
                    config_hash=entry.config_hash,
                    graph_fingerprint=key,
                    result_json=by_key[key],
                    mode=mode,
                    threshold=threshold,
                    digest=digests[key],
                    graph=unique[key] if self.config.provenance_include_graph else None,
                )
                self.provenance.append(record)
                response["provenance"] = {
                    "record_id": record["record_id"],
                    "score_digest": record["score_digest"],
                }
            scored.append((pending, response))
        return scored, len(graphs)
