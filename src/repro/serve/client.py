"""Blocking stdlib HTTP client for the scoring service.

:class:`ScoringClient` wraps one keep-alive ``http.client`` connection —
exactly what a closed-loop load-generator worker or a monitoring script
needs.  It is **not** thread-safe (HTTP/1.1 pipelining is not attempted);
give each thread its own client, as the throughput benchmark does.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Dict, Optional, Tuple, Union

from repro.graph import Graph


class ServeError(RuntimeError):
    """A non-2xx response from the scoring service."""

    def __init__(self, status: int, payload: Dict) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class JobFailedError(ServeError):
    """An async job finished in a terminal non-``done`` state."""


class LoadShedError(ServeError):
    """429 — the server shed the request; honour ``retry_after_s``."""

    def __init__(self, status: int, payload: Dict, retry_after_s: float) -> None:
        super().__init__(status, payload)
        self.retry_after_s = retry_after_s


class DeadlineError(ServeError):
    """504 — the request's deadline budget expired while queued."""


class ScoringClient:
    """Talk to a running :class:`~repro.serve.ScoringServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        timeout: float = 60.0,
        api_key: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.api_key = api_key
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, payload: Optional[Dict] = None) -> Tuple[int, Dict[str, str], Dict]:
        body = None if payload is None else json.dumps(payload).encode()
        headers = {} if body is None else {"Content-Type": "application/json"}
        if self.api_key is not None:
            headers["X-API-Key"] = self.api_key
        for attempt in (0, 1):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
            try:
                self._conn.request(method, path, body=body, headers=headers)
                response = self._conn.getresponse()
                raw = response.read()
                return response.status, dict(response.getheaders()), json.loads(raw) if raw else {}
            except (http.client.HTTPException, ConnectionError, BrokenPipeError):
                # A keep-alive connection the server already closed; retry
                # once on a fresh one, then let the error surface.
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def _checked(self, method: str, path: str, payload: Optional[Dict] = None) -> Dict:
        status, headers, body = self._request(method, path, payload)
        if status == 429:
            retry_after = float(
                headers.get("Retry-After", headers.get("retry-after", "1")) or 1
            )
            raise LoadShedError(status, body, retry_after)
        if status == 504:
            raise DeadlineError(status, body)
        if status >= 400:
            raise ServeError(status, body)
        return body

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        return self._checked("GET", "/healthz")

    def metrics(self) -> Dict:
        return self._checked("GET", "/metrics")

    def models(self) -> Dict:
        return self._checked("GET", "/models")

    def load_model(self, name: str, path: str, default: bool = False) -> Dict:
        """Load (or atomically hot-swap) a model from an artifact directory."""
        return self._checked("POST", "/models", {"name": name, "path": str(path), "default": default})

    def score(
        self,
        graph: Union[Graph, Dict],
        model: Optional[str] = None,
        threshold: Optional[float] = None,
        mode: str = "detect_only",
        timeout_ms: Optional[float] = None,
    ) -> Dict:
        """Score one graph; returns the full response payload.

        ``payload["result"]`` is bit-identical to
        ``detector.detect_only(graph).to_json_dict()`` (or ``fit_detect``
        for ``mode="fit_detect"``) on the served artifact — micro-batching
        on the server changes latency, never scores.
        """
        body: Dict = {"graph": graph.to_json_dict() if isinstance(graph, Graph) else graph}
        if model is not None:
            body["model"] = model
        if threshold is not None:
            body["threshold"] = float(threshold)
        if mode != "detect_only":
            body["mode"] = mode
        if timeout_ms is not None:
            body["timeout_ms"] = float(timeout_ms)
        return self._checked("POST", "/score", body)

    # ------------------------------------------------------------------
    # Async batch jobs
    # ------------------------------------------------------------------
    def submit_job(
        self,
        graph: Union[Graph, Dict],
        model: Optional[str] = None,
        threshold: Optional[float] = None,
        mode: str = "detect_only",
    ) -> Dict:
        """Enqueue a durable job; returns the job record (202 new, 200 dedup).

        Resubmitting an identical ``(graph, config, mode, model, version,
        threshold)`` returns the *existing* record with
        ``deduplicated=True`` instead of queueing duplicate work.
        """
        body: Dict = {"graph": graph.to_json_dict() if isinstance(graph, Graph) else graph}
        if model is not None:
            body["model"] = model
        if threshold is not None:
            body["threshold"] = float(threshold)
        if mode != "detect_only":
            body["mode"] = mode
        return self._checked("POST", "/jobs", body)

    def job(self, job_id: str) -> Dict:
        """The current record for one job (state, attempts, timings)."""
        return self._checked("GET", f"/jobs/{job_id}")

    def job_result(self, job_id: str) -> Dict:
        """The stored response of a ``done`` job.

        Raises :class:`ServeError` with status 409 while the job is still
        queued or running (``Retry-After`` tells you when to poll again),
        500 if it failed, 410 if it was cancelled.
        """
        return self._checked("GET", f"/jobs/{job_id}/result")

    def cancel_job(self, job_id: str) -> Dict:
        """Cancel a queued job (idempotent once cancelled)."""
        return self._checked("DELETE", f"/jobs/{job_id}")

    def jobs(
        self,
        tenant: Optional[str] = None,
        state: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> Dict:
        """List job records, newest first, optionally filtered."""
        params = {}
        if tenant is not None:
            params["tenant"] = tenant
        if state is not None:
            params["state"] = state
        if limit is not None:
            params["limit"] = str(int(limit))
        path = "/jobs"
        if params:
            path += "?" + urllib.parse.urlencode(params)
        return self._checked("GET", path)

    def wait_job(self, job_id: str, timeout: float = 60.0, poll_interval: float = 0.05) -> Dict:
        """Poll until the job reaches a terminal state, then fetch its result.

        Returns the ``/jobs/{id}/result`` body for a ``done`` job.  Raises
        :class:`JobFailedError` if the job failed or was cancelled, and
        :class:`TimeoutError` if it is still pending after ``timeout``.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record.get("state") in ("done", "failed", "cancelled"):
                break
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {record.get('state')!r} after {timeout}s")
            time.sleep(poll_interval)
        status, _, body = self._request("GET", f"/jobs/{job_id}/result")
        if status >= 400:
            raise JobFailedError(status, body)
        return body

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ScoringClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
