"""Blocking stdlib HTTP client for the scoring service.

:class:`ScoringClient` wraps one keep-alive ``http.client`` connection —
exactly what a closed-loop load-generator worker or a monitoring script
needs.  It is **not** thread-safe (HTTP/1.1 pipelining is not attempted);
give each thread its own client, as the throughput benchmark does.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Optional, Tuple, Union

from repro.graph import Graph


class ServeError(RuntimeError):
    """A non-2xx response from the scoring service."""

    def __init__(self, status: int, payload: Dict) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class LoadShedError(ServeError):
    """429 — the server shed the request; honour ``retry_after_s``."""

    def __init__(self, status: int, payload: Dict, retry_after_s: float) -> None:
        super().__init__(status, payload)
        self.retry_after_s = retry_after_s


class DeadlineError(ServeError):
    """504 — the request's deadline budget expired while queued."""


class ScoringClient:
    """Talk to a running :class:`~repro.serve.ScoringServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8000, timeout: float = 60.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, payload: Optional[Dict] = None) -> Tuple[int, Dict[str, str], Dict]:
        body = None if payload is None else json.dumps(payload).encode()
        headers = {} if body is None else {"Content-Type": "application/json"}
        for attempt in (0, 1):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
            try:
                self._conn.request(method, path, body=body, headers=headers)
                response = self._conn.getresponse()
                raw = response.read()
                return response.status, dict(response.getheaders()), json.loads(raw) if raw else {}
            except (http.client.HTTPException, ConnectionError, BrokenPipeError):
                # A keep-alive connection the server already closed; retry
                # once on a fresh one, then let the error surface.
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def _checked(self, method: str, path: str, payload: Optional[Dict] = None) -> Dict:
        status, headers, body = self._request(method, path, payload)
        if status == 429:
            retry_after = float(
                headers.get("Retry-After", headers.get("retry-after", "1")) or 1
            )
            raise LoadShedError(status, body, retry_after)
        if status == 504:
            raise DeadlineError(status, body)
        if status >= 400:
            raise ServeError(status, body)
        return body

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        return self._checked("GET", "/healthz")

    def metrics(self) -> Dict:
        return self._checked("GET", "/metrics")

    def models(self) -> Dict:
        return self._checked("GET", "/models")

    def load_model(self, name: str, path: str, default: bool = False) -> Dict:
        """Load (or atomically hot-swap) a model from an artifact directory."""
        return self._checked("POST", "/models", {"name": name, "path": str(path), "default": default})

    def score(
        self,
        graph: Union[Graph, Dict],
        model: Optional[str] = None,
        threshold: Optional[float] = None,
        mode: str = "detect_only",
        timeout_ms: Optional[float] = None,
    ) -> Dict:
        """Score one graph; returns the full response payload.

        ``payload["result"]`` is bit-identical to
        ``detector.detect_only(graph).to_json_dict()`` (or ``fit_detect``
        for ``mode="fit_detect"``) on the served artifact — micro-batching
        on the server changes latency, never scores.
        """
        body: Dict = {"graph": graph.to_json_dict() if isinstance(graph, Graph) else graph}
        if model is not None:
            body["model"] = model
        if threshold is not None:
            body["threshold"] = float(threshold)
        if mode != "detect_only":
            body["mode"] = mode
        if timeout_ms is not None:
            body["timeout_ms"] = float(timeout_ms)
        return self._checked("POST", "/score", body)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ScoringClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
