"""Operational counters of the scoring service.

One :class:`ServerMetrics` instance is shared by the HTTP layer and the
micro-batcher; everything it exposes comes out of ``GET /metrics`` as one
JSON document (coerced through :func:`repro.persist.to_native`), so a
scrape never needs to reach into the batcher or the registry.

All updates take a lock: handlers run on the event loop, but batch
scoring runs in an executor thread and the latency deque / histogram
must not tear.  The latency window is bounded
(:class:`repro.obs.stats.LatencyWindow` — the same implementation the
stream replay summary uses, so serve and replay report identical
percentile math), so a long-lived server reports recent percentiles
rather than its lifetime average and the memory footprint stays
constant — the unbounded-growth footgun the pipeline's own cache
counters had is deliberately not reproduced here.
"""

from __future__ import annotations

import threading
import time
from typing import Dict

from repro.obs.stats import LatencyWindow


class ServerMetrics:
    """Counters, batch-size histogram and a bounded latency window."""

    def __init__(self, latency_window: int = 2048) -> None:
        if latency_window < 1:
            raise ValueError("latency_window must be positive")
        self._lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self.requests_total = 0  # /score requests admitted to the queue
        self.responses_by_status: Dict[int, int] = {}
        self.scored_total = 0  # 200-responses that carried scores
        self.shed_total = 0  # 429: queue full, request load-shed
        self.deadline_expired_total = 0  # 504: deadline passed while queued
        self.error_total = 0  # 4xx/5xx other than shed/deadline
        self.batches_total = 0
        self.batched_requests_total = 0
        self.dedup_hits_total = 0  # requests answered by an in-batch duplicate
        self.batch_size_histogram: Dict[int, int] = {}
        # (completed_at_monotonic, seconds) pairs; bounded.
        self._latencies = LatencyWindow(maxlen=latency_window)
        # --- async batch jobs (repro.jobs) -----------------------------
        self.jobs_submitted_total = 0  # accepted POST /jobs (incl. dedup hits)
        self.jobs_deduplicated_total = 0  # submissions answered by an existing job
        self.jobs_completed_total = 0
        self.jobs_failed_total = 0  # permanent failures (retries exhausted)
        self.jobs_cancelled_total = 0
        self.jobs_quota_shed_total = 0  # 429: tenant queued-quota hit
        self.jobs_backpressure_total = 0  # claims released: interactive queue full
        # tenant -> counter-name -> count (tenant cardinality is bounded
        # by the quota policy's audience, not request content).
        self._job_tenants: Dict[str, Dict[str, int]] = {}
        self._job_wait = LatencyWindow(maxlen=latency_window)  # queued -> claimed
        self._job_run = LatencyWindow(maxlen=latency_window)  # claimed -> finished

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_admitted(self) -> None:
        with self._lock:
            self.requests_total += 1

    def record_response(self, status: int) -> None:
        with self._lock:
            self.responses_by_status[status] = self.responses_by_status.get(status, 0) + 1
            if status == 429:
                self.shed_total += 1
            elif status == 504:
                self.deadline_expired_total += 1
            elif status >= 400:
                self.error_total += 1

    def record_scored(self, latency_seconds: float) -> None:
        """One successfully scored request, with its queue+score latency."""
        with self._lock:
            self.scored_total += 1
            self._latencies.record(float(latency_seconds), at=time.monotonic())

    def record_batch(self, n_requests: int, n_unique: int, n_scored: int) -> None:
        """One micro-batch handed to the scorer (post deadline-filtering).

        Dedup hits count only *successfully scored* requests in excess of
        the unique graphs scored — requests that failed (unknown model,
        incompatible graph) were not deduplicated into anything.
        """
        with self._lock:
            self.batches_total += 1
            self.batched_requests_total += n_requests
            self.dedup_hits_total += max(0, n_scored - n_unique)
            self.batch_size_histogram[n_requests] = (
                self.batch_size_histogram.get(n_requests, 0) + 1
            )

    # ------------------------------------------------------------------
    # Recording: async batch jobs
    # ------------------------------------------------------------------
    def _tenant_bump(self, tenant: str, key: str, by: int = 1) -> None:
        row = self._job_tenants.setdefault(str(tenant), {})
        row[key] = row.get(key, 0) + by

    def record_job_submitted(self, tenant: str, deduplicated: bool = False) -> None:
        with self._lock:
            self.jobs_submitted_total += 1
            self._tenant_bump(tenant, "submitted_total")
            if deduplicated:
                self.jobs_deduplicated_total += 1
                self._tenant_bump(tenant, "deduplicated_total")

    def record_job_quota_shed(self, tenant: str) -> None:
        with self._lock:
            self.jobs_quota_shed_total += 1
            self._tenant_bump(tenant, "quota_shed_total")

    def record_job_completed(self, tenant: str, wait_seconds: float, run_seconds: float) -> None:
        with self._lock:
            self.jobs_completed_total += 1
            self._tenant_bump(tenant, "completed_total")
            now = time.monotonic()
            self._job_wait.record(float(wait_seconds), at=now)
            self._job_run.record(float(run_seconds), at=now)

    def record_job_failed(self, tenant: str) -> None:
        with self._lock:
            self.jobs_failed_total += 1
            self._tenant_bump(tenant, "failed_total")

    def record_job_cancelled(self, tenant: str) -> None:
        with self._lock:
            self.jobs_cancelled_total += 1
            self._tenant_bump(tenant, "cancelled_total")

    def record_job_backpressure(self) -> None:
        with self._lock:
            self.jobs_backpressure_total += 1

    def job_snapshot(self) -> Dict:
        """The counters/latency half of the ``/metrics`` ``jobs`` section.

        The server layer merges in the store-derived half (queue depth
        per state, per-tenant queued/running gauges) so the JSON and
        Prometheus views always agree on one payload.
        """
        with self._lock:
            wait = {f"wait_{k.split('_', 1)[0]}_ms": v
                    for k, v in self._job_wait.percentiles_ms((50, 95)).items()}
            run = {f"run_{k.split('_', 1)[0]}_ms": v
                   for k, v in self._job_run.percentiles_ms((50, 95)).items()}
            payload: Dict = {
                "submitted_total": self.jobs_submitted_total,
                "deduplicated_total": self.jobs_deduplicated_total,
                "completed_total": self.jobs_completed_total,
                "failed_total": self.jobs_failed_total,
                "cancelled_total": self.jobs_cancelled_total,
                "quota_shed_total": self.jobs_quota_shed_total,
                "backpressure_total": self.jobs_backpressure_total,
                "tenants": {tenant: dict(row) for tenant, row in sorted(self._job_tenants.items())},
            }
            payload.update(wait)
            payload.update(run)
        return payload

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------
    def _latency_percentiles(self) -> Dict[str, float]:
        return self._latencies.percentiles_ms((50, 95))

    def _qps(self, now: float) -> Dict[str, float]:
        uptime = max(now - self._started_monotonic, 1e-9)
        lifetime = self.scored_total / uptime
        window = self._latencies.window_qps(now)
        return {"qps_lifetime": round(lifetime, 3), "qps_window": round(window, 3)}

    def snapshot(self) -> Dict:
        """The ``/metrics`` JSON body (without the per-model section)."""
        with self._lock:
            now = time.monotonic()
            mean_batch = (
                self.batched_requests_total / self.batches_total if self.batches_total else 0.0
            )
            payload = {
                "uptime_seconds": round(now - self._started_monotonic, 3),
                "requests_total": self.requests_total,
                "responses_by_status": dict(self.responses_by_status),
                "scored_total": self.scored_total,
                "shed_total": self.shed_total,
                "deadline_expired_total": self.deadline_expired_total,
                "error_total": self.error_total,
                "batches_total": self.batches_total,
                "batched_requests_total": self.batched_requests_total,
                "dedup_hits_total": self.dedup_hits_total,
                "mean_batch_size": round(mean_batch, 3),
                "batch_size_histogram": dict(sorted(self.batch_size_histogram.items())),
            }
            payload.update(self._qps(now))
            payload.update(self._latency_percentiles())
        return payload
