"""Boot the scoring service: ``python -m repro.serve [options]``.

Loads one or more pipeline artifacts into the versioned registry and
serves ``/score``, ``/models``, ``/healthz`` and ``/metrics`` until
interrupted.  Artifacts are given as ``--artifact PATH`` (model name
defaults to the directory's basename; the first one becomes the default
model) or ``--artifact NAME=PATH``.  More models can be loaded — or
existing ones hot-swapped — at runtime via ``POST /models``.

``--job-store PATH`` additionally enables the durable async job API
(``POST /jobs`` + friends) backed by a sqlite store at PATH, drained by
``--job-workers`` asyncio workers through the same micro-batcher.

Operational events (model loads, bind address, shutdown) go through
:mod:`repro.obs.logging`, so each line carries the active trace id when
``--trace`` is on.  ``--provenance-log PATH`` appends one provenance
record per scored response; ``python -m repro.obs verify`` replays them.

SIGTERM and SIGINT trigger a *graceful drain*: the listener closes, every
already-admitted request is answered, claimed jobs are released back to
``queued`` for the next boot, and the sqlite store is closed cleanly.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from pathlib import Path
from typing import List, Tuple

from repro.obs.logging import get_logger, setup_logging
from repro.obs.tracer import Tracer, set_tracer
from repro.serve.batcher import ServeConfig
from repro.serve.registry import ModelRegistry
from repro.serve.server import ScoringServer

log = get_logger("serve")


def _parse_artifact(spec: str) -> Tuple[str, str]:
    """``NAME=PATH`` or bare ``PATH`` (name = directory basename)."""
    name, sep, path = spec.partition("=")
    if sep:
        return name, path
    return Path(spec).name or "default", spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve TP-GrGAD scoring over HTTP with micro-batching.",
    )
    parser.add_argument(
        "--artifact", action="append", required=True, metavar="[NAME=]PATH",
        help="pipeline artifact directory to load (repeatable; first is the default model)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000, help="0 binds an ephemeral port")
    parser.add_argument("--max-batch", type=int, default=16,
                        help="micro-batch width; 1 disables coalescing")
    parser.add_argument("--max-wait-ms", type=float, default=5.0,
                        help="max time the first request of a batch waits for company")
    parser.add_argument("--queue-size", type=int, default=128,
                        help="admission bound; excess requests are shed with 429")
    parser.add_argument("--timeout-ms", type=float, default=None,
                        help="default per-request deadline budget (none if omitted)")
    parser.add_argument("--workers", type=int, default=1,
                        help="shard large distinct-graph batches over this many processes")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record request/batch/score spans and dump them as JSONL on shutdown")
    parser.add_argument("--provenance-log", metavar="PATH", default=None,
                        help="append one provenance record per scored response (JSONL)")
    parser.add_argument("--provenance-include-graph", action="store_true",
                        help="embed the scored graph in each provenance record "
                             "(self-contained replay via `python -m repro.obs verify`)")
    parser.add_argument("--job-store", metavar="PATH", default=None,
                        help="sqlite path for the durable async job API (enables POST /jobs)")
    parser.add_argument("--job-workers", type=int, default=1,
                        help="asyncio workers draining the job queue (default 1)")
    parser.add_argument("--job-lease-ttl-s", type=float, default=30.0,
                        help="claim lease TTL; crashed workers' jobs requeue after this")
    parser.add_argument("--job-max-attempts", type=int, default=3,
                        help="attempts before a job is marked failed permanently")
    parser.add_argument("--job-max-queued", type=int, default=64,
                        help="per-tenant queued-job quota (429 above it)")
    parser.add_argument("--job-max-running", type=int, default=8,
                        help="per-tenant running-job cap enforced at claim time")
    parser.add_argument("--log-level", default="INFO",
                        help="stdlib logging level for operational events (default INFO)")
    return parser


async def _serve(args: argparse.Namespace) -> int:
    registry = ModelRegistry()
    for spec in args.artifact:
        name, path = _parse_artifact(spec)
        entry = registry.load(name, path)
        log.info(
            "loaded model '%s' v%d from %s (config %s, fitted on %s)",
            entry.name, entry.version, entry.path,
            entry.config_hash[:12], str(entry.state.graph_fingerprint)[:12],
        )

    config = ServeConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_size=args.queue_size,
        default_timeout_ms=args.timeout_ms,
        n_workers=args.workers,
        provenance_path=args.provenance_log,
        provenance_include_graph=args.provenance_include_graph,
        job_store_path=args.job_store,
        job_workers=args.job_workers,
        job_lease_ttl_s=args.job_lease_ttl_s,
        job_max_attempts=args.job_max_attempts,
        job_max_queued=args.job_max_queued,
        job_max_running=args.job_max_running,
    )
    tracer = None
    if args.trace:
        tracer = Tracer()
        set_tracer(tracer)
        log.info("tracing enabled (trace %s -> %s)", tracer.trace_id, args.trace)
    if args.provenance_log:
        log.info("provenance log: %s (include_graph=%s)",
                 args.provenance_log, args.provenance_include_graph)
    server = ScoringServer(registry, config)
    port = await server.start(args.host, args.port)
    log.info(
        "serving on http://%s:%d (POST /score, GET /models, GET /healthz, GET /metrics%s; "
        "max_batch=%d, max_wait_ms=%s)",
        args.host, port, ", POST /jobs" if args.job_store else "",
        config.max_batch, config.max_wait_ms,
    )

    # Graceful drain on SIGTERM/SIGINT: finish admitted work, release job
    # claims, close sqlite — then fall out of serve_forever.
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop_event.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-Unix
            pass

    serve_task = asyncio.ensure_future(server.serve_forever())
    stop_task = asyncio.ensure_future(stop_event.wait())
    try:
        await asyncio.wait({serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED)
        if stop_event.is_set():
            log.info("signal received: draining in-flight work before shutdown")
    except asyncio.CancelledError:  # pragma: no cover - external cancellation
        pass
    finally:
        for task in (serve_task, stop_task):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        for sig in installed:
            loop.remove_signal_handler(sig)
        await server.stop(drain=True)
        if tracer is not None:
            tracer.dump_jsonl(args.trace)
            log.info("wrote %d spans to %s", len(tracer.spans), args.trace)
        log.info("shutdown complete")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(args.log_level)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        log.info("shutting down")
        return 0


if __name__ == "__main__":
    sys.exit(main())
