"""Boot the scoring service: ``python -m repro.serve [options]``.

Loads one or more pipeline artifacts into the versioned registry and
serves ``/score``, ``/models``, ``/healthz`` and ``/metrics`` until
interrupted.  Artifacts are given as ``--artifact PATH`` (model name
defaults to the directory's basename; the first one becomes the default
model) or ``--artifact NAME=PATH``.  More models can be loaded — or
existing ones hot-swapped — at runtime via ``POST /models``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path
from typing import List, Tuple

from repro.serve.batcher import ServeConfig
from repro.serve.registry import ModelRegistry
from repro.serve.server import ScoringServer


def _parse_artifact(spec: str) -> Tuple[str, str]:
    """``NAME=PATH`` or bare ``PATH`` (name = directory basename)."""
    name, sep, path = spec.partition("=")
    if sep:
        return name, path
    return Path(spec).name or "default", spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve TP-GrGAD scoring over HTTP with micro-batching.",
    )
    parser.add_argument(
        "--artifact", action="append", required=True, metavar="[NAME=]PATH",
        help="pipeline artifact directory to load (repeatable; first is the default model)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000, help="0 binds an ephemeral port")
    parser.add_argument("--max-batch", type=int, default=16,
                        help="micro-batch width; 1 disables coalescing")
    parser.add_argument("--max-wait-ms", type=float, default=5.0,
                        help="max time the first request of a batch waits for company")
    parser.add_argument("--queue-size", type=int, default=128,
                        help="admission bound; excess requests are shed with 429")
    parser.add_argument("--timeout-ms", type=float, default=None,
                        help="default per-request deadline budget (none if omitted)")
    parser.add_argument("--workers", type=int, default=1,
                        help="shard large distinct-graph batches over this many processes")
    return parser


async def _serve(args: argparse.Namespace) -> int:
    registry = ModelRegistry()
    for spec in args.artifact:
        name, path = _parse_artifact(spec)
        entry = registry.load(name, path)
        print(f"loaded model '{entry.name}' v{entry.version} from {entry.path} "
              f"(config {entry.config_hash[:12]}, fitted on {str(entry.state.graph_fingerprint)[:12]})")

    config = ServeConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_size=args.queue_size,
        default_timeout_ms=args.timeout_ms,
        n_workers=args.workers,
    )
    server = ScoringServer(registry, config)
    port = await server.start(args.host, args.port)
    print(f"serving on http://{args.host}:{port}  "
          f"(POST /score, GET /models, GET /healthz, GET /metrics; "
          f"max_batch={config.max_batch}, max_wait_ms={config.max_wait_ms})")
    try:
        await server.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - signal-driven teardown
        pass
    finally:
        await server.stop()
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        print("shutting down")
        return 0


if __name__ == "__main__":
    sys.exit(main())
