"""Stdlib-only asyncio HTTP front end of the scoring service.

A deliberately small HTTP/1.1 implementation over ``asyncio.start_server``
(keep-alive, ``Content-Length`` bodies, JSON in/out) — no third-party web
framework, matching the project's numpy/scipy-only dependency policy.

Endpoints
---------
``POST /score``
    Body: ``{"graph": <Graph.to_json_dict()>, "model": name?,
    "threshold": float?, "mode": "detect_only"|"fit_detect"?,
    "timeout_ms": float?}``.  The request rides a micro-batch (see
    :mod:`repro.serve.batcher`); the response carries the result JSON
    plus model attribution and batch/latency metadata.  ``429`` +
    ``Retry-After`` under load shedding, ``504`` on an expired deadline,
    ``404`` for unknown models, ``400`` for malformed payloads.
``GET /models`` / ``POST /models``
    List loaded models, or load/hot-swap one from an artifact directory
    (body ``{"name": ..., "path": ..., "default": bool?}``).
``GET /healthz``
    Liveness + the loaded model names (cheap: never touches the scorer).
``GET /metrics``
    JSON counters: qps, batch-size histogram, latency percentiles, shed
    count, plus each model's pipeline cache statistics (and, with a job
    store configured, the ``jobs`` section: queue depth, per-tenant
    counters, wait/run latency percentiles).
``POST /jobs`` / ``GET /jobs`` / ``GET /jobs/{id}`` /
``GET /jobs/{id}/result`` / ``DELETE /jobs/{id}``
    The durable async batch API (requires ``ServeConfig.job_store_path``;
    see :mod:`repro.jobs`).  Submissions are deduplicated by full input
    identity and quota-bounded per tenant — the tenant is the
    ``X-API-Key`` request header (fallback: a ``tenant`` body field,
    then ``"public"``).  ``POST`` answers ``202`` for a newly queued job
    and ``200`` when deduplicated onto an existing one; quota violations
    get the same ``429`` + ``Retry-After`` treatment as load shedding.
    Stored results are the exact ``/score`` response payload, so
    ``python -m repro.obs verify`` replays them bit-for-bit.

Every response body is JSON serialised through
:func:`repro.persist.to_native`, so numpy scalars from any layer can
never corrupt the wire format.
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.parse
from typing import Dict, Optional, Tuple

from repro.graph import Graph
from repro.jobs.store import JobStore, QuotaExceededError, TenantQuota, UnknownJobError
from repro.jobs.worker import JobWorkerPool
from repro.obs.prometheus import CONTENT_TYPE as _PROMETHEUS_CONTENT_TYPE
from repro.obs.prometheus import render_prometheus
from repro.obs.tracer import get_tracer
from repro.persist import to_native
from repro.serve.batcher import (
    MODES,
    DeadlineExceededError,
    MicroBatcher,
    RequestError,
    ServeConfig,
    ShedError,
)
from repro.serve.metrics import ServerMetrics
from repro.serve.registry import ModelRegistry

_STATUS_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str, headers: Optional[Dict[str, str]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


class ScoringServer:
    """The long-running detector: registry + micro-batcher + HTTP front end."""

    def __init__(
        self,
        registry: ModelRegistry,
        config: Optional[ServeConfig] = None,
        metrics: Optional[ServerMetrics] = None,
    ) -> None:
        self.registry = registry
        self.config = config or ServeConfig()
        self.metrics = metrics or ServerMetrics()
        self.batcher = MicroBatcher(registry, self.config, self.metrics)
        self.job_store: Optional[JobStore] = (
            JobStore(
                self.config.job_store_path,
                quota=TenantQuota(
                    max_queued=self.config.job_max_queued,
                    max_running=self.config.job_max_running,
                ),
            )
            if self.config.job_store_path
            else None
        )
        self.job_pool: Optional[JobWorkerPool] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind the listener and start the batcher; returns the bound port.

        The listener binds *before* the batcher task starts, so a bind
        failure (port in use) leaves nothing running to clean up.
        """
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        await self.batcher.start()
        if self.job_store is not None:
            self.job_pool = JobWorkerPool(
                self.job_store,
                self.batcher,
                self.metrics,
                n_workers=self.config.job_workers,
                claim_batch=self.config.job_claim_batch,
                lease_ttl_s=self.config.job_lease_ttl_s,
                poll_interval_s=self.config.job_poll_interval_s,
                max_attempts=self.config.job_max_attempts,
            )
            await self.job_pool.start()
        self.host = host
        self.port = int(self._server.sockets[0].getsockname()[1])
        return self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, drain: bool = False) -> None:
        """Tear the service down; ``drain=True`` is the graceful path.

        Graceful order: stop accepting connections, stop the job workers
        (claimed-but-unscored jobs go back to ``queued`` — the lease
        release), drain the micro-batcher so every admitted request is
        answered, then close the sqlite store cleanly.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.job_pool is not None:
            await self.job_pool.stop()
            self.job_pool = None
        # Idle keep-alive connections block on readline forever; cancel
        # them so shutdown never hangs on a client that forgot to close.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        await self.batcher.stop(drain=drain)
        if self.job_store is not None:
            self.job_store.close()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as error:
                    # Unparseable request: answer once, then drop the
                    # connection (framing is no longer trustworthy).
                    self.metrics.record_response(error.status)
                    writer.write(self._encode_response(error.status, {"error": str(error)}, error.headers))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, query, headers, body = request
                loop = asyncio.get_running_loop()
                started = loop.time()
                tracer = get_tracer()
                with tracer.span("serve.request", method=method, path=path) as span:
                    try:
                        status, payload, extra = await self._dispatch(
                            method, path, body, query=query, headers=headers
                        )
                    except _HttpError as error:
                        status, payload, extra = error.status, {"error": str(error)}, error.headers
                    except Exception as error:  # noqa: BLE001 - last-resort 500
                        status, payload, extra = 500, {"error": f"internal error: {error}"}, {}
                    if tracer.enabled:
                        span.set("status", status)
                if path == "/score" and status == 200:
                    payload["latency_ms"] = round((loop.time() - started) * 1e3, 3)
                self.metrics.record_response(status)
                writer.write(self._encode_response(status, payload, extra))
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        except asyncio.CancelledError:  # server shutdown
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, str, Dict[str, str], bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {request_line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or 0)
        except ValueError:
            raise _HttpError(400, f"malformed Content-Length {headers['content-length']!r}") from None
        if length < 0:
            raise _HttpError(400, f"malformed Content-Length {length}")
        if length > self.config.max_body_bytes:
            raise _HttpError(413, f"body of {length} bytes exceeds the {self.config.max_body_bytes} limit")
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        return method, path, query, headers, body

    @staticmethod
    def _encode_response(status: int, payload, extra_headers: Dict[str, str]) -> bytes:
        # A str payload is pre-rendered text (the Prometheus exposition);
        # anything else is serialised as JSON through to_native.
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = _PROMETHEUS_CONTENT_TYPE
        else:
            body = json.dumps(to_native(payload)).encode()
            content_type = "application/json"
        reason = _STATUS_REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
        return ("\r\n".join(lines) + "\r\n\r\n").encode() + body

    @staticmethod
    def _parse_json(body: bytes) -> Dict:
        if not body:
            raise _HttpError(400, "request body must be a JSON object")
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            raise _HttpError(400, f"invalid JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, body: bytes, query: str = "", headers: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Dict, Dict[str, str]]:
        headers = headers or {}
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok", "models": self.registry.names()}, {}
        if path == "/metrics" and method == "GET":
            payload = self._metrics_payload()
            if self._wants_prometheus(query, headers.get("accept", "")):
                return 200, render_prometheus(payload), {}
            return 200, payload, {}
        if path == "/models":
            if method == "GET":
                return 200, self.registry.describe(), {}
            if method == "POST":
                return 200, await self._load_model(self._parse_json(body)), {}
            raise _HttpError(405, f"{method} not allowed on /models")
        if path == "/score":
            if method != "POST":
                raise _HttpError(405, f"{method} not allowed on /score")
            return 200, await self._score(self._parse_json(body)), {}
        if path == "/jobs":
            if method == "POST":
                return self._submit_job(self._parse_json(body), headers)
            if method == "GET":
                return 200, self._list_jobs(query), {}
            raise _HttpError(405, f"{method} not allowed on /jobs")
        if path.startswith("/jobs/"):
            return self._job_route(method, path)
        raise _HttpError(404, f"no route for {method} {path}")

    @staticmethod
    def _wants_prometheus(query: str, accept: str) -> bool:
        """Content negotiation for ``/metrics``: JSON unless asked otherwise.

        ``?format=prometheus`` always wins; an ``Accept`` header
        preferring ``text/plain`` (no JSON mentioned) also selects the
        exposition format, which is how Prometheus itself scrapes.
        """
        if "format=prometheus" in query.split("&"):
            return True
        accept = accept.lower()
        return ("text/plain" in accept or "openmetrics" in accept) and "json" not in accept

    def _metrics_payload(self) -> Dict:
        payload = self.metrics.snapshot()
        payload["models"] = {
            row["name"]: {
                "version": row["version"],
                "swap_count": row["swap_count"],
                "config_hash": row["config_hash"],
                "loaded_at_unix": row["loaded_at_unix"],
                "requests_served": row["requests_served"],
                "tape_nodes_total": row["tape_nodes_total"],
                "cache_evictions": (row["fit_cache"] or {}).get("evictions", 0),
                "fit_cache": row["fit_cache"],
            }
            for row in self.registry.describe()["models"]
        }
        payload["queue"] = {
            "capacity": self.config.queue_size,
            "max_batch": self.config.max_batch,
            "max_wait_ms": self.config.max_wait_ms,
        }
        if self.job_store is not None:
            jobs = self.metrics.job_snapshot()
            jobs["queue_depth"] = self.job_store.counts()
            tenants = jobs.get("tenants", {})
            for tenant in self.job_store.tenants():
                depth = self.job_store.counts(tenant)
                row = tenants.setdefault(tenant, {})
                row["queued"] = depth["queued"]
                row["running"] = depth["running"]
            jobs["quota"] = {
                "max_queued": self.config.job_max_queued,
                "max_running": self.config.job_max_running,
            }
            payload["jobs"] = jobs
        return payload

    async def _load_model(self, payload: Dict) -> Dict:
        name, path = payload.get("name"), payload.get("path")
        if not name or not path:
            raise _HttpError(400, "POST /models requires 'name' and 'path'")
        try:
            # Reading arrays.npz for a large model can take a while; keep
            # the event loop (health probes, admission) responsive by
            # loading in a worker thread — the registry locks internally
            # and swaps atomically, so concurrent loads are safe.
            entry = await asyncio.get_running_loop().run_in_executor(
                None,
                lambda: self.registry.load(name, path, default=bool(payload.get("default", False))),
            )
        except FileNotFoundError as error:
            raise _HttpError(404, str(error)) from None
        except ValueError as error:
            raise _HttpError(400, str(error)) from None
        return entry.describe()

    @staticmethod
    def _parse_graph(payload: Dict, endpoint: str) -> Graph:
        graph_payload = payload.get("graph")
        if not isinstance(graph_payload, dict):
            raise _HttpError(400, f"POST {endpoint} requires a 'graph' object (Graph.to_json_dict())")
        try:
            return Graph.from_json_dict(graph_payload)
        except (ValueError, TypeError) as error:
            raise _HttpError(400, f"invalid graph payload: {error}") from None

    @staticmethod
    def _parse_number(payload: Dict, key: str) -> Optional[float]:
        value = payload.get(key)
        try:
            return None if value is None else float(value)
        except (TypeError, ValueError):
            raise _HttpError(400, f"'{key}' must be a number") from None

    async def _score(self, payload: Dict) -> Dict:
        graph = self._parse_graph(payload, "/score")
        threshold = self._parse_number(payload, "threshold")
        timeout_ms = self._parse_number(payload, "timeout_ms")
        try:
            future = self.batcher.submit(
                graph,
                model=payload.get("model"),
                threshold=threshold,
                mode=payload.get("mode", "detect_only"),
                timeout_ms=timeout_ms,
            )
            return await future
        except ShedError as error:
            raise _HttpError(
                429, str(error), headers={"Retry-After": f"{error.retry_after_s:.0f}"}
            ) from None
        except DeadlineExceededError as error:
            raise _HttpError(504, str(error)) from None
        except RequestError as error:
            raise _HttpError(error.status, str(error)) from None

    # ------------------------------------------------------------------
    # Async batch jobs (requires ServeConfig.job_store_path)
    # ------------------------------------------------------------------
    def _jobs_store(self) -> JobStore:
        if self.job_store is None:
            raise _HttpError(503, "no job store configured; start the server with --job-store PATH")
        return self.job_store

    @staticmethod
    def _tenant_of(payload: Dict, headers: Dict[str, str]) -> str:
        return headers.get("x-api-key") or str(payload.get("tenant") or "public")

    def _submit_job(self, payload: Dict, headers: Dict[str, str]) -> Tuple[int, Dict, Dict[str, str]]:
        store = self._jobs_store()
        tenant = self._tenant_of(payload, headers)
        mode = payload.get("mode", "detect_only")
        if mode not in MODES:
            raise _HttpError(400, f"unknown mode {mode!r}; expected one of {MODES}")
        graph = self._parse_graph(payload, "/jobs")
        threshold = self._parse_number(payload, "threshold")
        try:
            entry = self.registry.get(payload.get("model"))
        except KeyError as error:
            raise _HttpError(404, str(error)) from None
        try:
            outcome = store.submit(
                tenant=tenant,
                model=entry.name,
                model_version=entry.version,
                config_hash=entry.config_hash,
                mode=mode,
                threshold=threshold,
                graph_fingerprint=graph.fingerprint(),
                graph_json=json.dumps(to_native(graph.to_json_dict()), sort_keys=True),
            )
        except QuotaExceededError as error:
            self.metrics.record_job_quota_shed(tenant)
            raise _HttpError(
                429, str(error), headers={"Retry-After": f"{error.retry_after_s:.0f}"}
            ) from None
        self.metrics.record_job_submitted(tenant, deduplicated=not outcome.created)
        body = outcome.record.describe()
        body["deduplicated"] = not outcome.created
        body["revived"] = outcome.revived
        return (202 if outcome.created else 200), body, {}

    def _get_job(self, job_id: str):
        try:
            return self._jobs_store().get(job_id)
        except UnknownJobError as error:
            raise _HttpError(404, str(error)) from None

    def _job_route(self, method: str, path: str) -> Tuple[int, Dict, Dict[str, str]]:
        rest = path[len("/jobs/"):]
        job_id, slash, tail = rest.partition("/")
        if not job_id:
            raise _HttpError(404, f"no route for {method} {path}")
        if slash:
            if tail != "result":
                raise _HttpError(404, f"no route for {method} {path}")
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on /jobs/{{id}}/result")
            return self._job_result(job_id)
        if method == "GET":
            return 200, self._get_job(job_id).describe(), {}
        if method == "DELETE":
            return self._cancel_job(job_id)
        raise _HttpError(405, f"{method} not allowed on /jobs/{{id}}")

    def _job_result(self, job_id: str) -> Tuple[int, Dict, Dict[str, str]]:
        record = self._get_job(job_id)
        if record.state == "done":
            return 200, {"job_id": record.job_id, "state": "done", "response": record.result}, {}
        if record.state == "failed":
            return 500, {
                "job_id": record.job_id, "state": "failed",
                "error": record.error, "attempts": record.attempts,
            }, {}
        if record.state == "cancelled":
            return 410, {"job_id": record.job_id, "state": "cancelled"}, {}
        # queued / running: not an error, just not done yet — poll again.
        return 409, {"job_id": record.job_id, "state": record.state}, {"Retry-After": "1"}

    def _cancel_job(self, job_id: str) -> Tuple[int, Dict, Dict[str, str]]:
        store = self._jobs_store()
        try:
            record = store.cancel(job_id)
        except UnknownJobError as error:
            raise _HttpError(404, str(error)) from None
        except ValueError as error:
            raise _HttpError(409, str(error)) from None
        self.metrics.record_job_cancelled(record.tenant)
        return 200, record.describe(), {}

    def _list_jobs(self, query: str) -> Dict:
        store = self._jobs_store()
        params = urllib.parse.parse_qs(query)
        tenant = params.get("tenant", [None])[0]
        state = params.get("state", [None])[0]
        try:
            limit = int(params.get("limit", ["100"])[0])
        except ValueError:
            raise _HttpError(400, "'limit' must be an integer") from None
        try:
            records = store.list(tenant=tenant, state=state, limit=limit)
        except ValueError as error:
            raise _HttpError(400, str(error)) from None
        return {
            "jobs": [record.describe() for record in records],
            "counts": store.counts(tenant),
        }


# ----------------------------------------------------------------------
# Threaded harness (tests, benchmarks, the example client)
# ----------------------------------------------------------------------
class ServerHandle:
    """A running :class:`ScoringServer` on a background event-loop thread."""

    def __init__(self, server: ScoringServer, loop: asyncio.AbstractEventLoop, thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self.server.host or "127.0.0.1"

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    def stop(self, timeout: float = 10.0, drain: bool = False) -> None:
        """Stop the server and join the loop thread (idempotent).

        ``drain=True`` runs the graceful path: admitted requests are
        answered and claimed jobs released before the loop exits.
        """
        if not self._thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(self.server.stop(drain=drain), self._loop).result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_server_thread(
    registry: ModelRegistry,
    config: Optional[ServeConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ServerHandle:
    """Run a :class:`ScoringServer` on a daemon thread; returns its handle.

    ``port=0`` binds an ephemeral port (read it from ``handle.port``).
    The in-process equivalent of ``python -m repro.serve`` used by the
    test suite, the throughput benchmark and ``examples/serving_client.py``.
    """
    started = threading.Event()
    box: Dict[str, object] = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = ScoringServer(registry, config)
        try:
            loop.run_until_complete(server.start(host, port))
        except Exception as error:  # noqa: BLE001 - re-raised in the caller
            box["error"] = error
            loop.run_until_complete(server.stop())  # tear down anything half-started
            started.set()
            loop.close()
            return
        box["server"], box["loop"] = server, loop
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=30):  # pragma: no cover - startup hang
        raise RuntimeError("scoring server failed to start within 30s")
    if "error" in box:
        raise RuntimeError(f"scoring server failed to start: {box['error']}") from box["error"]
    return ServerHandle(box["server"], box["loop"], thread)  # type: ignore[arg-type]
