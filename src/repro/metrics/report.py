"""Bundled evaluation of a group-detection result against ground truth."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.graph import Group
from repro.metrics.classification import average_group_size, group_auc, group_detection_f1
from repro.metrics.completeness import completeness_ratio


@dataclass
class EvaluationReport:
    """CR / F1 / AUC plus descriptive statistics for one detection run."""

    cr: float
    f1: float
    auc: float
    n_predicted: int
    avg_predicted_size: float
    avg_truth_size: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "CR": self.cr,
            "F1": self.f1,
            "AUC": self.auc,
            "n_predicted": self.n_predicted,
            "avg_predicted_size": self.avg_predicted_size,
            "avg_truth_size": self.avg_truth_size,
        }


def evaluate_detection(
    predicted_groups: Sequence[Group],
    scores: np.ndarray,
    truth_groups: Sequence[Group],
    anomalous_groups: Optional[Sequence[Group]] = None,
    threshold: Optional[float] = None,
    contamination: float = 0.15,
) -> EvaluationReport:
    """Evaluate a detection run.

    Parameters
    ----------
    predicted_groups:
        All scored candidate groups (the ranking population for AUC/F1).
    scores:
        Anomaly score of each candidate group (larger = more anomalous).
    truth_groups:
        Ground-truth anomaly groups of the dataset.
    anomalous_groups:
        The groups the detector actually flags as anomalous (above its
        threshold); used for CR and size statistics.  Defaults to the
        thresholded candidates when omitted.
    """
    predicted_groups = list(predicted_groups)
    scores = np.asarray(scores, dtype=np.float64)
    truth_groups = list(truth_groups)

    if anomalous_groups is None:
        if len(predicted_groups):
            if threshold is not None:
                mask = scores > threshold
            else:
                cut = np.quantile(scores, 1.0 - contamination)
                mask = scores >= cut
            anomalous_groups = [g for g, flag in zip(predicted_groups, mask) if flag]
        else:
            anomalous_groups = []
    anomalous_groups = list(anomalous_groups)

    return EvaluationReport(
        cr=completeness_ratio(truth_groups, anomalous_groups) if truth_groups else 0.0,
        f1=group_detection_f1(anomalous_groups, truth_groups),
        auc=group_auc(predicted_groups, scores, truth_groups),
        n_predicted=len(anomalous_groups),
        avg_predicted_size=average_group_size(anomalous_groups),
        avg_truth_size=average_group_size(truth_groups),
    )
