"""Completeness Ratio (CR), the paper's new metric (Eqns. 24-25).

For every ground-truth group ``c_g`` the completeness score is the best
match over predicted groups ``ĉ_i``:

    s_g = max_i  0.5 * ( |V̂_i ∩ V_g| / |V_g|  +  |V̂_i ∩ V_g| / |V̂_i| )

i.e. the average of recall (what fraction of the true group was found) and
precision (how much of the predicted group is not redundant).  CR is the
mean of ``s_g`` over all ground-truth groups; CR = 1 means every anomaly
group was recovered exactly.
"""

from __future__ import annotations

from typing import Sequence

from repro.graph import Group


def completeness_score(truth: Group, predictions: Sequence[Group]) -> float:
    """Completeness score ``s_g`` of a single ground-truth group (Eqn. 24)."""
    truth_nodes = truth.nodes
    if not truth_nodes:
        raise ValueError("ground-truth group is empty")
    best = 0.0
    for predicted in predictions:
        predicted_nodes = predicted.nodes
        if not predicted_nodes:
            continue
        overlap = len(truth_nodes & predicted_nodes)
        if overlap == 0:
            continue
        score = 0.5 * (overlap / len(truth_nodes) + overlap / len(predicted_nodes))
        best = max(best, score)
    return best


def completeness_ratio(truth_groups: Sequence[Group], predicted_groups: Sequence[Group]) -> float:
    """Completeness Ratio over all ground-truth groups (Eqn. 25).

    Returns 0.0 when there are no predictions; raises when there is no
    ground truth (the metric is undefined in that case).
    """
    truth_groups = list(truth_groups)
    if not truth_groups:
        raise ValueError("completeness ratio requires at least one ground-truth group")
    predicted_groups = list(predicted_groups)
    if not predicted_groups:
        return 0.0
    return sum(completeness_score(g, predicted_groups) for g in truth_groups) / len(truth_groups)
