"""Group-level evaluation metrics.

The paper evaluates Gr-GAD along two axes (Sec. VII-A2):

* **detection accuracy** — group-wise F1 and AUC, where a predicted group is
  a true positive when it matches a ground-truth anomaly group;
* **detection completeness** — the Completeness Ratio (CR, Eqns. 24-25),
  which this paper introduces and which simultaneously penalises missing
  and redundant nodes in the matched predictions.
"""

from repro.metrics.completeness import completeness_ratio, completeness_score
from repro.metrics.classification import (
    group_f1_score,
    group_detection_f1,
    group_auc,
    match_groups,
    roc_auc_score,
    precision_recall_f1,
    average_group_size,
)
from repro.metrics.report import EvaluationReport, evaluate_detection

__all__ = [
    "completeness_ratio",
    "completeness_score",
    "group_f1_score",
    "group_detection_f1",
    "group_auc",
    "match_groups",
    "roc_auc_score",
    "precision_recall_f1",
    "average_group_size",
    "EvaluationReport",
    "evaluate_detection",
]
