"""Group-wise classification metrics: matching, F1 and AUC.

A *predicted* group counts as anomalous-correct when it matches some
ground-truth group; matching uses node overlap (at least half of a true
group covered, or a Jaccard similarity above a threshold).  F1 is computed
over the thresholded predictions; AUC treats each scored candidate group as
one ranking example whose label is whether it matches a true group.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph import Group


def match_groups(
    predicted: Sequence[Group],
    truth: Sequence[Group],
    coverage_threshold: float = 0.5,
    jaccard_threshold: float = 0.3,
) -> np.ndarray:
    """Binary label per predicted group: does it match any ground-truth group?

    A match requires either covering at least ``coverage_threshold`` of some
    true group while having at least half of its own nodes inside it, or a
    Jaccard similarity of at least ``jaccard_threshold``.
    """
    labels = np.zeros(len(predicted), dtype=bool)
    for index, candidate in enumerate(predicted):
        for true_group in truth:
            overlap = len(candidate.nodes & true_group.nodes)
            if overlap == 0:
                continue
            coverage = overlap / len(true_group.nodes)
            precision = overlap / len(candidate.nodes)
            jaccard = overlap / len(candidate.nodes | true_group.nodes)
            if (coverage >= coverage_threshold and precision >= 0.5) or jaccard >= jaccard_threshold:
                labels[index] = True
                break
    return labels


def precision_recall_f1(predicted_positive: np.ndarray, labels: np.ndarray) -> Tuple[float, float, float]:
    """Precision / recall / F1 of boolean predictions against boolean labels."""
    predicted_positive = np.asarray(predicted_positive, dtype=bool)
    labels = np.asarray(labels, dtype=bool)
    true_positive = int((predicted_positive & labels).sum())
    false_positive = int((predicted_positive & ~labels).sum())
    false_negative = int((~predicted_positive & labels).sum())
    precision = true_positive / (true_positive + false_positive) if (true_positive + false_positive) else 0.0
    recall = true_positive / (true_positive + false_negative) if (true_positive + false_negative) else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return precision, recall, f1


def roc_auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """Rank-based ROC AUC (Mann-Whitney U) handling ties; 0.5 for degenerate labels."""
    labels = np.asarray(labels, dtype=bool)
    scores = np.asarray(scores, dtype=np.float64)
    n_positive = int(labels.sum())
    n_negative = int((~labels).sum())
    if n_positive == 0 or n_negative == 0:
        return 0.5
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    sorted_scores = scores[order]
    # Average ranks for tied scores.
    i = 0
    position = 1
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        average_rank = (position + position + (j - i)) / 2.0
        ranks[order[i : j + 1]] = average_rank
        position += j - i + 1
        i = j + 1
    rank_sum_positive = ranks[labels].sum()
    auc = (rank_sum_positive - n_positive * (n_positive + 1) / 2.0) / (n_positive * n_negative)
    return float(auc)


def _threshold_mask(scores: np.ndarray, threshold: Optional[float], contamination: float) -> np.ndarray:
    scores = np.asarray(scores, dtype=np.float64)
    if threshold is not None:
        return scores > threshold
    cut = np.quantile(scores, 1.0 - contamination) if len(scores) else 0.0
    return scores >= cut


def group_detection_f1(
    anomalous: Sequence[Group],
    truth: Sequence[Group],
    coverage_threshold: float = 0.5,
    jaccard_threshold: float = 0.3,
) -> float:
    """Detection-style group F1.

    Recall is the fraction of ground-truth anomaly groups matched by at
    least one flagged group; precision is the fraction of flagged groups
    matching at least one ground-truth group.  This penalises both missing
    real groups (the failure mode of N-GAD/Sub-GAD baselines, which flag a
    couple of small fragments) and over-reporting spurious groups.
    """
    anomalous = list(anomalous)
    truth = list(truth)
    if not truth:
        return 0.0
    if not anomalous:
        return 0.0

    predicted_matches = match_groups(anomalous, truth, coverage_threshold, jaccard_threshold)
    truth_matches = match_groups(truth, anomalous, coverage_threshold, jaccard_threshold)
    precision = float(predicted_matches.mean())
    recall = float(truth_matches.mean())
    if precision + recall == 0.0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def group_f1_score(
    predicted: Sequence[Group],
    scores: np.ndarray,
    truth: Sequence[Group],
    threshold: Optional[float] = None,
    contamination: float = 0.15,
) -> float:
    """Group-wise F1 of the thresholded candidate groups (see :func:`group_detection_f1`)."""
    predicted = list(predicted)
    if not predicted:
        return 0.0
    mask = _threshold_mask(scores, threshold, contamination)
    anomalous = [group for group, flag in zip(predicted, mask) if flag]
    return group_detection_f1(anomalous, truth)


def group_auc(predicted: Sequence[Group], scores: np.ndarray, truth: Sequence[Group]) -> float:
    """Group-wise ROC AUC of candidate-group scores against ground-truth matches."""
    if len(predicted) == 0:
        return 0.5
    labels = match_groups(predicted, truth)
    return roc_auc_score(labels, np.asarray(scores, dtype=np.float64))


def average_group_size(groups: Sequence[Group]) -> float:
    """Mean node count of a set of groups (used by the Fig. 5 experiment)."""
    groups = list(groups)
    if not groups:
        return 0.0
    return float(np.mean([len(g) for g in groups]))
