"""The attributed :class:`Graph` container.

A ``Graph`` is an undirected attributed graph with

* ``n_nodes`` nodes indexed ``0 .. n_nodes - 1``,
* an edge list (stored canonically, no duplicates, no self loops),
* a dense feature matrix ``X`` of shape ``(n_nodes, n_features)``,
* optional ground-truth anomaly :class:`~repro.graph.group.Group` objects,
* optional per-node anomaly labels derived from those groups.

The container is deliberately immutable-ish: mutating operations return new
``Graph`` instances so detectors can never corrupt a dataset in place.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph.group import Group, _canonical_edge


class Graph:
    """Undirected attributed graph with optional ground-truth anomaly groups."""

    def __init__(
        self,
        n_nodes: int,
        edges: Iterable[Tuple[int, int]],
        features: Optional[np.ndarray] = None,
        groups: Optional[Sequence[Group]] = None,
        name: str = "graph",
    ) -> None:
        if n_nodes <= 0:
            raise ValueError("a graph needs at least one node")
        self.n_nodes = int(n_nodes)
        self.name = name

        canonical: Set[Tuple[int, int]] = set()
        for u, v in edges:
            u, v = int(u), int(v)
            if u == v:
                continue  # self loops are dropped; GCN adds them explicitly
            if not (0 <= u < self.n_nodes and 0 <= v < self.n_nodes):
                raise ValueError(f"edge ({u}, {v}) out of range for {self.n_nodes} nodes")
            canonical.add(_canonical_edge(u, v))
        self.edges: Tuple[Tuple[int, int], ...] = tuple(sorted(canonical))

        if features is None:
            features = np.zeros((self.n_nodes, 1), dtype=np.float64)
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[0] != self.n_nodes:
            raise ValueError(
                f"features must have shape (n_nodes, d); got {features.shape} for {self.n_nodes} nodes"
            )
        self.features = features

        self.groups: Tuple[Group, ...] = tuple(groups or ())
        for group in self.groups:
            bad = [n for n in group.nodes if not 0 <= n < self.n_nodes]
            if bad:
                raise ValueError(f"group references nodes outside the graph: {bad}")

        self._adjacency_cache: Optional[sp.csr_matrix] = None
        self._neighbor_cache: Optional[List[Tuple[int, ...]]] = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        return len(self.edges)

    @property
    def n_features(self) -> int:
        return self.features.shape[1]

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(name={self.name!r}, nodes={self.n_nodes}, edges={self.n_edges}, "
            f"features={self.n_features}, groups={self.n_groups})"
        )

    # ------------------------------------------------------------------
    # Adjacency / neighbourhood access
    # ------------------------------------------------------------------
    def adjacency(self, sparse: bool = False):
        """Return the symmetric binary adjacency matrix.

        Parameters
        ----------
        sparse:
            When True return a ``scipy.sparse.csr_matrix``; otherwise a dense
            ``numpy`` array (fine for the graph sizes used in this repo).
        """
        if self._adjacency_cache is None:
            rows, cols, vals = [], [], []
            for u, v in self.edges:
                rows.extend((u, v))
                cols.extend((v, u))
                vals.extend((1.0, 1.0))
            self._adjacency_cache = sp.csr_matrix(
                (vals, (rows, cols)), shape=(self.n_nodes, self.n_nodes), dtype=np.float64
            )
        return self._adjacency_cache if sparse else self._adjacency_cache.toarray()

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Neighbours of ``node`` (sorted, excluding the node itself)."""
        if self._neighbor_cache is None:
            adjacency: List[Set[int]] = [set() for _ in range(self.n_nodes)]
            for u, v in self.edges:
                adjacency[u].add(v)
                adjacency[v].add(u)
            self._neighbor_cache = [tuple(sorted(s)) for s in adjacency]
        return self._neighbor_cache[int(node)]

    def degree(self, node: Optional[int] = None):
        """Degree of one node, or the full degree vector when ``node`` is None."""
        if node is not None:
            return len(self.neighbors(node))
        degrees = np.zeros(self.n_nodes, dtype=np.int64)
        for u, v in self.edges:
            degrees[u] += 1
            degrees[v] += 1
        return degrees

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` is present."""
        return int(v) in self.neighbors(int(u))

    # ------------------------------------------------------------------
    # Ground-truth helpers
    # ------------------------------------------------------------------
    def anomaly_node_mask(self) -> np.ndarray:
        """Boolean mask of nodes belonging to any ground-truth group."""
        mask = np.zeros(self.n_nodes, dtype=bool)
        for group in self.groups:
            mask[list(group.nodes)] = True
        return mask

    def average_group_size(self) -> float:
        """Average number of nodes per ground-truth group (0 when no groups)."""
        if not self.groups:
            return 0.0
        return float(np.mean([len(g) for g in self.groups]))

    def statistics(self) -> Dict[str, float]:
        """Dataset statistics in the format of Table I of the paper."""
        return {
            "nodes": self.n_nodes,
            "edges": self.n_edges,
            "attributes": self.n_features,
            "anomaly_groups": self.n_groups,
            "avg_group_size": round(self.average_group_size(), 2),
        }

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[int], name: Optional[str] = None) -> "Graph":
        """Induced subgraph on ``nodes`` with node indices relabelled to ``0..k-1``.

        Group annotations are dropped (a subgraph is usually a candidate
        group, not a labelled dataset).
        """
        node_list = sorted({int(n) for n in nodes})
        if not node_list:
            raise ValueError("cannot build an empty subgraph")
        index = {node: i for i, node in enumerate(node_list)}
        node_set = set(node_list)
        sub_edges = [
            (index[u], index[v]) for u, v in self.edges if u in node_set and v in node_set
        ]
        return Graph(
            n_nodes=len(node_list),
            edges=sub_edges,
            features=self.features[node_list],
            name=name or f"{self.name}-sub",
        )

    def group_subgraph(self, group: Group) -> "Graph":
        """Induced subgraph of a :class:`Group` (uses graph edges, not group edges)."""
        return self.subgraph(group.nodes, name=f"{self.name}-group")

    def with_groups(self, groups: Sequence[Group]) -> "Graph":
        """Return a copy of this graph annotated with ``groups``."""
        return Graph(self.n_nodes, self.edges, self.features, groups=groups, name=self.name)

    def with_features(self, features: np.ndarray) -> "Graph":
        """Return a copy of this graph with a replaced feature matrix."""
        return Graph(self.n_nodes, self.edges, features, groups=self.groups, name=self.name)

    def add_nodes_and_edges(
        self,
        new_node_features: np.ndarray,
        new_edges: Iterable[Tuple[int, int]],
        name: Optional[str] = None,
    ) -> "Graph":
        """Return a grown copy with extra nodes appended and extra edges added.

        ``new_edges`` may reference both old nodes and the freshly appended
        ones (indices ``n_nodes .. n_nodes + k - 1``).
        """
        new_node_features = np.atleast_2d(np.asarray(new_node_features, dtype=np.float64))
        if new_node_features.size and new_node_features.shape[1] != self.n_features:
            raise ValueError("new node features must match the graph feature dimension")
        total = self.n_nodes + new_node_features.shape[0]
        features = (
            np.vstack([self.features, new_node_features]) if new_node_features.size else self.features
        )
        edges = list(self.edges) + [(int(u), int(v)) for u, v in new_edges]
        return Graph(total, edges, features, groups=self.groups, name=name or self.name)

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def connected_components(self, nodes: Optional[Iterable[int]] = None) -> List[Set[int]]:
        """Connected components of the whole graph or of an induced node subset."""
        if nodes is None:
            candidates = set(range(self.n_nodes))
        else:
            candidates = {int(n) for n in nodes}
        seen: Set[int] = set()
        components: List[Set[int]] = []
        for start in sorted(candidates):
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            seen.add(start)
            while frontier:
                current = frontier.pop()
                for neighbor in self.neighbors(current):
                    if neighbor in candidates and neighbor not in seen:
                        seen.add(neighbor)
                        component.add(neighbor)
                        frontier.append(neighbor)
            components.append(component)
        return components

    def bfs_tree(self, root: int, depth: int) -> Dict[int, int]:
        """Breadth-first tree from ``root`` to at most ``depth`` hops.

        Returns a mapping ``node -> parent`` (the root maps to itself).
        """
        root = int(root)
        parents = {root: root}
        frontier = [root]
        for _ in range(depth):
            next_frontier = []
            for node in frontier:
                for neighbor in self.neighbors(node):
                    if neighbor not in parents:
                        parents[neighbor] = node
                        next_frontier.append(neighbor)
            frontier = next_frontier
            if not frontier:
                break
        return parents

    def shortest_path(self, source: int, target: int, cutoff: Optional[int] = None) -> Optional[List[int]]:
        """Unweighted shortest path between two nodes (BFS), or None if unreachable.

        ``cutoff`` bounds the number of hops explored.
        """
        source, target = int(source), int(target)
        if source == target:
            return [source]
        parents = {source: source}
        frontier = [source]
        hops = 0
        while frontier:
            if cutoff is not None and hops >= cutoff:
                return None
            hops += 1
            next_frontier = []
            for node in frontier:
                for neighbor in self.neighbors(node):
                    if neighbor in parents:
                        continue
                    parents[neighbor] = node
                    if neighbor == target:
                        path = [target]
                        while path[-1] != source:
                            path.append(parents[path[-1]])
                        return list(reversed(path))
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return None

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` if internal invariants are violated."""
        for u, v in self.edges:
            if u == v:
                raise ValueError("self loop found in canonical edge list")
            if u > v:
                raise ValueError("edge list is not canonical")
        if len(set(self.edges)) != len(self.edges):
            raise ValueError("duplicate edges found")
        if not np.isfinite(self.features).all():
            raise ValueError("features contain NaN or infinite values")
