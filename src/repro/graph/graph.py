"""The attributed :class:`Graph` container.

A ``Graph`` is an undirected attributed graph with

* ``n_nodes`` nodes indexed ``0 .. n_nodes - 1``,
* a canonical ``(2, E)`` integer **edge index** (deduplicated, no self
  loops, each column sorted ``u < v`` and columns in lexicographic order),
* a cached CSR adjacency matrix derived from the edge index, from which all
  neighbourhood queries (``neighbors`` / ``degree`` / ``has_edge``) are
  answered without per-edge Python loops,
* a dense feature matrix ``X`` of shape ``(n_nodes, n_features)``,
* optional ground-truth anomaly :class:`~repro.graph.group.Group` objects,
* optional per-node anomaly labels derived from those groups.

The container is deliberately immutable-ish: mutating operations return new
``Graph`` instances so detectors can never corrupt a dataset in place.  The
historical ``graph.edges`` tuple-of-pairs view is kept as a lazily built
property for callers that want to iterate edges in Python; numeric code
should prefer :attr:`edge_index` (see DESIGN.md, "Sparse-first engine").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import breadth_first_order as _csgraph_bfs_order
from scipy.sparse.csgraph import connected_components as _csgraph_components

from repro.graph.group import Group


@dataclass(frozen=True)
class MultiSourceBFS:
    """Result of :meth:`Graph.multi_source_bfs` — one BFS forest per source.

    All arrays have shape ``(n_sources, n_nodes)``:

    * ``dist[s, v]`` — hops from ``sources[s]`` to ``v``; ``-1`` when ``v``
      was not reached (disconnected or beyond the depth bound).
    * ``parent[s, v]`` — BFS-tree parent of ``v`` (a source is its own
      parent, unreached nodes hold ``-1``).
    * ``order[s, v]`` — discovery index of ``v`` within BFS ``s``.  The
      ordering is exactly that of a sequential BFS that scans each frontier
      node's sorted neighbour list: level by level, ties broken first by
      the parent's discovery index, then by node id.  This is what lets the
      vectorized sampler reproduce the per-pair searches bit for bit.
    """

    sources: Tuple[int, ...]
    dist: np.ndarray
    parent: np.ndarray
    order: np.ndarray

    def path(self, row: int, target: int) -> Optional[List[int]]:
        """Shortest path ``sources[row] -> target`` from the parent forest."""
        target = int(target)
        if self.dist[row, target] < 0:
            return None
        path = [target]
        parents = self.parent[row]
        while parents[path[-1]] != path[-1]:
            path.append(int(parents[path[-1]]))
        return list(reversed(path))


def _bfs_forest_row(
    csr: sp.csr_matrix,
    source: int,
    dist_row: np.ndarray,
    parent_row: np.ndarray,
    order_row: np.ndarray,
    depth: Optional[int],
) -> None:
    """Fill one source's BFS dist/parent/order row (views into the forest).

    The traversal itself is ``scipy.sparse.csgraph.breadth_first_order`` —
    a compiled queue BFS that scans each CSR row in (sorted) index order,
    i.e. exactly the discovery semantics of the sequential
    :meth:`Graph.shortest_path` / :meth:`Graph.bfs_tree`.  Distances are
    recovered from the discovery order with a searchsorted cascade over
    the (non-decreasing) parent positions, one step per BFS level.
    """
    node_array, predecessors = _csgraph_bfs_order(csr, source, directed=True, return_predecessors=True)
    reached = node_array.size

    order_row[node_array] = np.arange(reached, dtype=order_row.dtype)
    parents = predecessors[node_array]
    parents[0] = source  # scipy marks the root unreachable (-9999)
    parent_row[node_array] = parents

    # Parent discovery positions are non-decreasing along the discovery
    # order (BFS queue property), so each level ends where the parent
    # position first reaches the previous level's end.
    parent_positions = order_row[parents]
    distances = np.empty(reached, dtype=dist_row.dtype)
    level, start, end = 0, 0, 1
    while start < reached:
        distances[start:end] = level
        level += 1
        start, end = end, int(np.searchsorted(parent_positions, end, side="left"))
    dist_row[node_array] = distances

    if depth is not None:
        cutoff = int(np.searchsorted(distances, depth, side="right"))
        if cutoff < reached:
            beyond = node_array[cutoff:]
            dist_row[beyond] = -1
            parent_row[beyond] = -1
            order_row[beyond] = -1


def _as_edge_array(edges: Iterable[Tuple[int, int]]) -> np.ndarray:
    """Coerce any iterable of ``(u, v)`` pairs into an ``(E, 2)`` int array."""
    if isinstance(edges, np.ndarray):
        array = edges
    else:
        array = np.asarray(list(edges))
    if array.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    if array.ndim != 2 or array.shape[1] != 2:
        raise ValueError(f"edges must be (u, v) pairs; got an array of shape {array.shape}")
    return array.astype(np.int64, copy=False)


class Graph:
    """Undirected attributed graph with optional ground-truth anomaly groups."""

    def __init__(
        self,
        n_nodes: int,
        edges: Iterable[Tuple[int, int]],
        features: Optional[np.ndarray] = None,
        groups: Optional[Sequence[Group]] = None,
        name: str = "graph",
    ) -> None:
        edge_index = self._canonicalize(_as_edge_array(edges), int(n_nodes))
        self._init_fields(int(n_nodes), edge_index, features, groups, name)

    def _init_fields(
        self,
        n_nodes: int,
        edge_index: np.ndarray,
        features: Optional[np.ndarray],
        groups: Optional[Sequence[Group]],
        name: str,
    ) -> None:
        """Shared tail of ``__init__`` / :meth:`from_canonical`."""
        if n_nodes <= 0:
            raise ValueError("a graph needs at least one node")
        self.n_nodes = int(n_nodes)
        self.name = name

        self._edge_index = edge_index
        self._edge_index.setflags(write=False)

        if features is None:
            features = np.zeros((self.n_nodes, 1), dtype=np.float64)
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[0] != self.n_nodes:
            raise ValueError(
                f"features must have shape (n_nodes, d); got {features.shape} for {self.n_nodes} nodes"
            )
        self.features = features

        self.groups: Tuple[Group, ...] = tuple(groups or ())
        for group in self.groups:
            bad = [n for n in group.nodes if not 0 <= n < self.n_nodes]
            if bad:
                raise ValueError(f"group references nodes outside the graph: {bad}")

        self._adjacency_cache: Optional[sp.csr_matrix] = None
        self._neighbor_cache: Optional[List[Tuple[int, ...]]] = None
        self._edges_cache: Optional[Tuple[Tuple[int, int], ...]] = None

    @classmethod
    def from_canonical(
        cls,
        n_nodes: int,
        edge_index: np.ndarray,
        features: Optional[np.ndarray] = None,
        groups: Optional[Sequence[Group]] = None,
        name: str = "graph",
        adjacency: Optional[sp.csr_matrix] = None,
    ) -> "Graph":
        """Build a graph from an *already canonical* ``(2, E)`` edge index.

        This is the trusted fast path used by the streaming subsystem: a
        :class:`~repro.stream.StreamingGraph` maintains the canonical sorted
        edge index itself (sorted-merge per delta), so re-running the
        ``O(E log E)`` :meth:`_canonicalize` on every tick would throw that
        work away.  The caller guarantees each column satisfies ``u < v``
        with columns in strictly increasing lexicographic order —
        :meth:`validate` checks exactly these invariants when in doubt.
        ``adjacency`` optionally seeds the CSR cache (it must equal the
        adjacency the edge index implies; again trusted, not checked).
        """
        edge_index = np.ascontiguousarray(np.asarray(edge_index, dtype=np.int64))
        if edge_index.ndim != 2 or edge_index.shape[0] != 2:
            raise ValueError(f"edge_index must have shape (2, E); got {edge_index.shape}")
        graph = cls.__new__(cls)
        graph._init_fields(int(n_nodes), edge_index, features, groups, name)
        if adjacency is not None:
            graph._adjacency_cache = adjacency
        return graph

    @staticmethod
    def _canonicalize(array: np.ndarray, n_nodes: int) -> np.ndarray:
        """Sort endpoints, drop self loops, dedupe; returns a ``(2, E)`` array."""
        if array.shape[0] == 0:
            return np.zeros((2, 0), dtype=np.int64)
        out_of_range = (array < 0) | (array >= n_nodes)
        if out_of_range.any():
            u, v = array[out_of_range.any(axis=1)][0]
            raise ValueError(f"edge ({u}, {v}) out of range for {n_nodes} nodes")
        lo = array.min(axis=1)
        hi = array.max(axis=1)
        keep = lo != hi  # self loops are dropped; GCN adds them explicitly
        # Encoding (u, v) -> u * n + v dedupes and lexicographically sorts at once.
        keys = np.unique(lo[keep] * np.int64(n_nodes) + hi[keep])
        return np.vstack([keys // n_nodes, keys % n_nodes])

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def edge_index(self) -> np.ndarray:
        """Canonical ``(2, E)`` edge index (read-only; each column ``u < v``)."""
        return self._edge_index

    @property
    def edges(self) -> Tuple[Tuple[int, int], ...]:
        """Edges as a sorted tuple of ``(u, v)`` pairs (built lazily)."""
        if self._edges_cache is None:
            self._edges_cache = tuple(map(tuple, self._edge_index.T.tolist()))
        return self._edges_cache

    @property
    def n_edges(self) -> int:
        return self._edge_index.shape[1]

    @property
    def n_features(self) -> int:
        return self.features.shape[1]

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(name={self.name!r}, nodes={self.n_nodes}, edges={self.n_edges}, "
            f"features={self.n_features}, groups={self.n_groups})"
        )

    # ------------------------------------------------------------------
    # Adjacency / neighbourhood access
    # ------------------------------------------------------------------
    def adjacency(self, sparse: bool = False):
        """Return the symmetric binary adjacency matrix.

        Parameters
        ----------
        sparse:
            When True return the cached ``scipy.sparse.csr_matrix`` (shared,
            treat as read-only); otherwise a dense ``numpy`` array.
        """
        if self._adjacency_cache is None:
            u, v = self._edge_index
            rows = np.concatenate([u, v])
            cols = np.concatenate([v, u])
            vals = np.ones(rows.shape[0], dtype=np.float64)
            cache = sp.csr_matrix((vals, (rows, cols)), shape=(self.n_nodes, self.n_nodes))
            cache.sort_indices()  # sorted rows let has_edge binary-search
            self._adjacency_cache = cache
        return self._adjacency_cache if sparse else self._adjacency_cache.toarray()

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Neighbours of ``node`` (sorted, excluding the node itself)."""
        if self._neighbor_cache is None:
            csr = self.adjacency(sparse=True)
            splits = np.split(csr.indices, csr.indptr[1:-1])
            self._neighbor_cache = [tuple(part.tolist()) for part in splits]
        return self._neighbor_cache[int(node)]

    def degree(self, node: Optional[int] = None):
        """Degree of one node, or the full degree vector when ``node`` is None."""
        if node is not None:
            csr = self.adjacency(sparse=True)
            node = int(node)
            return int(csr.indptr[node + 1] - csr.indptr[node])
        return np.bincount(self._edge_index.ravel(), minlength=self.n_nodes)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` is present (O(log deg(u)))."""
        csr = self.adjacency(sparse=True)
        u, v = int(u), int(v)
        start, end = int(csr.indptr[u]), int(csr.indptr[u + 1])
        position = start + int(np.searchsorted(csr.indices[start:end], v))
        return position < end and int(csr.indices[position]) == v

    def fingerprint(self) -> str:
        """Stable content hash of ``(n_nodes, edge_index, features)``.

        Ground-truth groups and the name are excluded: detectors ignore
        both, so two graphs with equal topology and attributes must share a
        fingerprint for the pipeline's stage cache to hit.  The hash is
        recomputed on every call — the features array is caller-owned and
        writable, so memoizing here could serve stale fingerprints (and
        silently wrong cache hits) after an in-place feature edit.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(np.int64(self.n_nodes).tobytes())
        digest.update(np.ascontiguousarray(self._edge_index).tobytes())
        digest.update(np.ascontiguousarray(self.features).tobytes())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # JSON wire format
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict:
        """JSON-serialisable form: ``n_nodes``, edge pairs, features, name.

        This is the wire format of the scoring service (``POST /score``
        bodies carry one of these under ``"graph"``).  Ground-truth groups
        are deliberately excluded — detectors ignore them, and a scoring
        request has no business shipping labels.  Round-trips exactly
        through :meth:`from_json_dict`: same fingerprint, same scores.
        """
        return {
            "n_nodes": int(self.n_nodes),
            "edges": self._edge_index.T.tolist(),
            "features": self.features.tolist(),
            "name": self.name,
        }

    @classmethod
    def from_json_dict(cls, payload: Dict) -> "Graph":
        """Rebuild a graph written by :meth:`to_json_dict`.

        Also accepts hand-written payloads: ``features`` may be omitted
        (defaulting to the usual all-zeros single attribute) and ``name``
        falls back to ``"graph"``.
        """
        if "n_nodes" not in payload:
            raise ValueError("graph payload must carry 'n_nodes'")
        features = payload.get("features")
        return cls(
            n_nodes=int(payload["n_nodes"]),
            edges=payload.get("edges", ()),
            features=None if features is None else np.asarray(features, dtype=np.float64),
            name=str(payload.get("name", "graph")),
        )

    # ------------------------------------------------------------------
    # Ground-truth helpers
    # ------------------------------------------------------------------
    def anomaly_node_mask(self) -> np.ndarray:
        """Boolean mask of nodes belonging to any ground-truth group."""
        mask = np.zeros(self.n_nodes, dtype=bool)
        for group in self.groups:
            mask[list(group.nodes)] = True
        return mask

    def average_group_size(self) -> float:
        """Average number of nodes per ground-truth group (0 when no groups)."""
        if not self.groups:
            return 0.0
        return float(np.mean([len(g) for g in self.groups]))

    def statistics(self) -> Dict[str, float]:
        """Dataset statistics in the format of Table I of the paper."""
        return {
            "nodes": self.n_nodes,
            "edges": self.n_edges,
            "attributes": self.n_features,
            "anomaly_groups": self.n_groups,
            "avg_group_size": round(self.average_group_size(), 2),
        }

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[int], name: Optional[str] = None) -> "Graph":
        """Induced subgraph on ``nodes`` with node indices relabelled to ``0..k-1``.

        Edge filtering is a vectorised boolean mask over the edge index —
        this is a hot path for stage-3 candidate-group extraction.  Group
        annotations are dropped (a subgraph is usually a candidate group,
        not a labelled dataset).
        """
        node_array = np.unique(np.fromiter((int(n) for n in nodes), dtype=np.int64))
        if node_array.size == 0:
            raise ValueError("cannot build an empty subgraph")
        if node_array[0] < 0 or node_array[-1] >= self.n_nodes:
            raise ValueError(f"subgraph nodes out of range for {self.n_nodes} nodes")
        mapping = np.full(self.n_nodes, -1, dtype=np.int64)
        mapping[node_array] = np.arange(node_array.size)
        u, v = self._edge_index
        keep = (mapping[u] >= 0) & (mapping[v] >= 0)
        sub_edges = np.stack([mapping[u[keep]], mapping[v[keep]]], axis=1)
        return Graph(
            n_nodes=int(node_array.size),
            edges=sub_edges,
            features=self.features[node_array],
            name=name or f"{self.name}-sub",
        )

    def group_subgraph(self, group: Group) -> "Graph":
        """Induced subgraph of a :class:`Group` (uses graph edges, not group edges)."""
        return self.subgraph(group.nodes, name=f"{self.name}-group")

    def with_groups(self, groups: Sequence[Group]) -> "Graph":
        """Return a copy of this graph annotated with ``groups``."""
        return Graph(self.n_nodes, self._edge_index.T, self.features, groups=groups, name=self.name)

    def with_features(self, features: np.ndarray) -> "Graph":
        """Return a copy of this graph with a replaced feature matrix."""
        return Graph(self.n_nodes, self._edge_index.T, features, groups=self.groups, name=self.name)

    def add_nodes_and_edges(
        self,
        new_node_features: np.ndarray,
        new_edges: Iterable[Tuple[int, int]],
        name: Optional[str] = None,
    ) -> "Graph":
        """Return a grown copy with extra nodes appended and extra edges added.

        ``new_edges`` may reference both old nodes and the freshly appended
        ones (indices ``n_nodes .. n_nodes + k - 1``).
        """
        new_node_features = np.atleast_2d(np.asarray(new_node_features, dtype=np.float64))
        if new_node_features.size and new_node_features.shape[1] != self.n_features:
            raise ValueError("new node features must match the graph feature dimension")
        total = self.n_nodes + new_node_features.shape[0]
        features = (
            np.vstack([self.features, new_node_features]) if new_node_features.size else self.features
        )
        edges = np.vstack([self._edge_index.T, _as_edge_array(new_edges)])
        return Graph(total, edges, features, groups=self.groups, name=name or self.name)

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def connected_components(self, nodes: Optional[Iterable[int]] = None) -> List[Set[int]]:
        """Connected components of the whole graph or of an induced node subset."""
        if nodes is None:
            # Whole graph: delegate to the compiled scipy.sparse.csgraph BFS.
            count, labels = _csgraph_components(self.adjacency(sparse=True), directed=False)
            components: List[Set[int]] = [set() for _ in range(count)]
            for node, label in enumerate(labels):
                components[label].add(int(node))
            return components
        candidates = {int(n) for n in nodes}
        seen: Set[int] = set()
        components = []
        for start in sorted(candidates):
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            seen.add(start)
            while frontier:
                current = frontier.pop()
                for neighbor in self.neighbors(current):
                    if neighbor in candidates and neighbor not in seen:
                        seen.add(neighbor)
                        component.add(neighbor)
                        frontier.append(neighbor)
            components.append(component)
        return components

    def multi_source_bfs(self, sources: Sequence[int], depth: Optional[int] = None) -> MultiSourceBFS:
        """Run one BFS per source, batched, over the CSR adjacency.

        This is the engine behind vectorized candidate-group sampling: a
        single call answers every :meth:`shortest_path` / :meth:`bfs_tree`
        query among the sources.  ``depth`` bounds the number of hops kept
        (``None`` keeps each component exhaustively); the arrays of deeper
        nodes are masked to ``-1``.

        Discovery order, parents and tie-breaking match the sequential BFS
        of :meth:`shortest_path` / :meth:`bfs_tree` exactly (see
        :class:`MultiSourceBFS`): both scan each node's sorted neighbour
        list in queue order, as does the compiled csgraph traversal used
        here.
        """
        source_array = np.fromiter((int(s) for s in sources), dtype=np.int64)
        if source_array.size and (source_array.min() < 0 or source_array.max() >= self.n_nodes):
            raise ValueError(f"BFS sources out of range for {self.n_nodes} nodes")
        n_sources = int(source_array.size)
        dist = np.full((n_sources, self.n_nodes), -1, dtype=np.int32)
        parent = np.full((n_sources, self.n_nodes), -1, dtype=np.int32)
        order = np.full((n_sources, self.n_nodes), -1, dtype=np.int32)
        csr = self.adjacency(sparse=True) if n_sources else None
        for row, source in enumerate(source_array):
            _bfs_forest_row(csr, int(source), dist[row], parent[row], order[row], depth)
        return MultiSourceBFS(
            sources=tuple(int(s) for s in source_array), dist=dist, parent=parent, order=order
        )

    def k_hop_nodes(self, sources: Sequence[int], k: int) -> List[np.ndarray]:
        """Nodes within ``k`` hops of each source (sorted, source included)."""
        bfs = self.multi_source_bfs(sources, depth=int(k))
        return [np.flatnonzero(row >= 0) for row in bfs.dist]

    def k_hop_ball(self, sources: Sequence[int], k: Optional[int]) -> np.ndarray:
        """Union of the ``k``-hop balls around ``sources`` (sorted node ids).

        Equals ``union(self.k_hop_nodes(sources, k))`` — i.e. the union over
        the per-source forests of :meth:`multi_source_bfs` — but is computed
        as one joint frontier expansion (``k`` boolean SpMVs over the CSR
        adjacency) instead of one BFS per source, so it stays cheap even
        when a streaming delta touches many nodes at once.  This is the
        *dirty region* primitive of the streaming subsystem: every candidate
        group a bounded search from an anchor outside the ball can produce
        is provably unaffected by changes at ``sources`` (see DESIGN.md,
        "Dirty-region invalidation").  ``k=None`` expands exhaustively
        (the ball becomes the union of connected components).
        """
        source_array = np.fromiter((int(s) for s in sources), dtype=np.int64)
        if source_array.size == 0:
            return np.zeros(0, dtype=np.int64)
        if source_array.min() < 0 or source_array.max() >= self.n_nodes:
            raise ValueError(f"ball sources out of range for {self.n_nodes} nodes")
        csr = self.adjacency(sparse=True)
        reached = np.zeros(self.n_nodes, dtype=bool)
        reached[source_array] = True
        frontier = reached.copy()
        hops = 0
        while frontier.any() and (k is None or hops < int(k)):
            hops += 1
            expanded = (csr @ frontier.astype(np.float64)) > 0
            frontier = expanded & ~reached
            reached |= frontier
        return np.flatnonzero(reached)

    def bfs_tree(self, root: int, depth: int) -> Dict[int, int]:
        """Breadth-first tree from ``root`` to at most ``depth`` hops.

        Returns a mapping ``node -> parent`` (the root maps to itself).
        """
        root = int(root)
        parents = {root: root}
        frontier = [root]
        for _ in range(depth):
            next_frontier = []
            for node in frontier:
                for neighbor in self.neighbors(node):
                    if neighbor not in parents:
                        parents[neighbor] = node
                        next_frontier.append(neighbor)
            frontier = next_frontier
            if not frontier:
                break
        return parents

    def shortest_path(self, source: int, target: int, cutoff: Optional[int] = None) -> Optional[List[int]]:
        """Unweighted shortest path between two nodes (BFS), or None if unreachable.

        ``cutoff`` bounds the number of hops explored.
        """
        source, target = int(source), int(target)
        if source == target:
            return [source]
        parents = {source: source}
        frontier = [source]
        hops = 0
        while frontier:
            if cutoff is not None and hops >= cutoff:
                return None
            hops += 1
            next_frontier = []
            for node in frontier:
                for neighbor in self.neighbors(node):
                    if neighbor in parents:
                        continue
                    parents[neighbor] = node
                    if neighbor == target:
                        path = [target]
                        while path[-1] != source:
                            path.append(parents[path[-1]])
                        return list(reversed(path))
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return None

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` if internal invariants are violated."""
        u, v = self._edge_index
        if (u == v).any():
            raise ValueError("self loop found in canonical edge list")
        if (u > v).any():
            raise ValueError("edge list is not canonical")
        keys = u * np.int64(self.n_nodes) + v
        if np.unique(keys).size != keys.size:
            raise ValueError("duplicate edges found")
        if not np.isfinite(self.features).all():
            raise ValueError("features contain NaN or infinite values")
