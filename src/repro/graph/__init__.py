"""Graph substrate: containers, adjacency transforms and group utilities.

Everything downstream (datasets, GAE variants, sampling, contrastive
learning, baselines) operates on :class:`repro.graph.Graph`, an attributed
undirected graph with optional ground-truth anomaly groups attached.
"""

from repro.graph.group import Group
from repro.graph.graph import Graph, MultiSourceBFS
from repro.graph.adjacency import (
    adjacency_matrix,
    normalized_adjacency,
    k_hop_matrix,
    graphsnn_weighted_adjacency,
    row_normalize,
)
from repro.graph.builders import graph_from_networkx, graph_to_networkx, union_of_groups

__all__ = [
    "Graph",
    "Group",
    "MultiSourceBFS",
    "adjacency_matrix",
    "normalized_adjacency",
    "k_hop_matrix",
    "graphsnn_weighted_adjacency",
    "row_normalize",
    "graph_from_networkx",
    "graph_to_networkx",
    "union_of_groups",
]
