"""Conversions between :class:`repro.graph.Graph` and ``networkx`` plus helpers."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

import networkx as nx
import numpy as np

from repro.graph.graph import Graph
from repro.graph.group import Group


def graph_from_networkx(nx_graph: nx.Graph, feature_key: str = "x", name: str = "graph") -> Graph:
    """Convert a ``networkx`` graph into a :class:`Graph`.

    Node labels are relabelled to consecutive integers (sorted order of the
    original labels).  Per-node features are read from the ``feature_key``
    attribute when present; nodes lacking the attribute get zero vectors.
    """
    nodes = sorted(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in nx_graph.edges()]

    dims = [
        np.atleast_1d(np.asarray(data[feature_key], dtype=np.float64)).shape[0]
        for _, data in nx_graph.nodes(data=True)
        if feature_key in data
    ]
    dim = max(dims) if dims else 1
    features = np.zeros((len(nodes), dim), dtype=np.float64)
    for node, data in nx_graph.nodes(data=True):
        if feature_key in data:
            vector = np.atleast_1d(np.asarray(data[feature_key], dtype=np.float64))
            features[index[node], : vector.shape[0]] = vector
    return Graph(len(nodes), edges, features, name=name)


def graph_to_networkx(graph: Graph, feature_key: str = "x") -> nx.Graph:
    """Convert a :class:`Graph` into a ``networkx`` graph with feature attributes."""
    nx_graph = nx.Graph()
    for node in range(graph.n_nodes):
        nx_graph.add_node(node, **{feature_key: graph.features[node].copy()})
    nx_graph.add_edges_from(graph.edges)
    return nx_graph


def union_of_groups(groups: Sequence[Group]) -> Set[int]:
    """Union of the node sets of several groups."""
    union: Set[int] = set()
    for group in groups:
        union |= group.nodes
    return union


def groups_from_components(graph: Graph, nodes: Iterable[int], min_size: int = 2, label: Optional[str] = None) -> List[Group]:
    """Turn connected components of an induced node set into groups.

    This is the AS-GAE-style group extraction used to generalise node-level
    detectors to the Gr-GAD task (Sec. VII-A3 of the paper).
    """
    components = graph.connected_components(nodes)
    groups = []
    for component in components:
        if len(component) < min_size:
            continue
        node_set = set(component)
        edges = [(u, v) for u, v in graph.edges if u in node_set and v in node_set]
        groups.append(Group(nodes=frozenset(component), edges=frozenset(edges), label=label))
    return groups
