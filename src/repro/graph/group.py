"""The :class:`Group` container used for both ground truth and predictions.

A group is the paper's ``c_i = (V_i, E_i)`` — a subset of nodes together
with the edges connecting them — optionally carrying an anomaly score and a
free-form label describing its topology pattern or provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Tuple


def _canonical_edge(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u <= v else (v, u)


@dataclass(frozen=True)
class Group:
    """An (induced) group of nodes within a graph.

    Parameters
    ----------
    nodes:
        Node indices belonging to the group.
    edges:
        Undirected edges internal to the group, stored canonically as
        ``(min, max)`` pairs.  May be empty for groups defined purely by a
        node set.
    label:
        Optional free-form tag, e.g. ``"path"``, ``"tree"``, ``"cycle"`` or
        the laundering typology that generated the group.
    score:
        Optional anomaly score attached by a detector.
    """

    nodes: FrozenSet[int]
    edges: FrozenSet[Tuple[int, int]] = field(default_factory=frozenset)
    label: Optional[str] = None
    score: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", frozenset(int(n) for n in self.nodes))
        canonical = frozenset(_canonical_edge(int(u), int(v)) for u, v in self.edges)
        object.__setattr__(self, "edges", canonical)
        for u, v in canonical:
            if u not in self.nodes or v not in self.nodes:
                raise ValueError(f"edge ({u}, {v}) references a node outside the group")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_nodes(cls, nodes: Iterable[int], label: Optional[str] = None, score: Optional[float] = None) -> "Group":
        """Build a group from a node set with no explicit internal edges."""
        return cls(nodes=frozenset(nodes), edges=frozenset(), label=label, score=score)

    @classmethod
    def from_path(cls, path: Iterable[int], label: str = "path") -> "Group":
        """Build a group whose internal edges form the given path."""
        path = [int(n) for n in path]
        edges = {_canonical_edge(a, b) for a, b in zip(path, path[1:])}
        return cls(nodes=frozenset(path), edges=frozenset(edges), label=label)

    @classmethod
    def from_cycle(cls, cycle: Iterable[int], label: str = "cycle") -> "Group":
        """Build a group whose internal edges form the given cycle."""
        cycle = [int(n) for n in cycle]
        if len(cycle) < 3:
            raise ValueError("a cycle needs at least three nodes")
        edges = {_canonical_edge(a, b) for a, b in zip(cycle, cycle[1:] + cycle[:1])}
        return cls(nodes=frozenset(cycle), edges=frozenset(edges), label=label)

    # ------------------------------------------------------------------
    # Set-like behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: int) -> bool:
        return int(node) in self.nodes

    def __iter__(self):
        return iter(sorted(self.nodes))

    def overlap(self, other: "Group") -> int:
        """Number of nodes shared with ``other``."""
        return len(self.nodes & other.nodes)

    def jaccard(self, other: "Group") -> float:
        """Jaccard similarity of the two node sets."""
        union = len(self.nodes | other.nodes)
        return self.overlap(other) / union if union else 0.0

    def with_score(self, score: float) -> "Group":
        """Return a copy of this group carrying ``score``."""
        return Group(nodes=self.nodes, edges=self.edges, label=self.label, score=float(score))

    def with_label(self, label: str) -> "Group":
        """Return a copy of this group carrying ``label``."""
        return Group(nodes=self.nodes, edges=self.edges, label=label, score=self.score)

    def node_tuple(self) -> Tuple[int, ...]:
        """Sorted tuple of member nodes (useful as a dict key)."""
        return tuple(sorted(self.nodes))
