"""Adjacency transforms: normalisation, k-hop powers and GraphSNN weights.

These are the reconstruction targets explored by MH-GAE (Sec. V-B and the
Table IV ablation of the paper):

* the plain adjacency ``A`` (vanilla GAE / DOMINANT),
* standardised k-th powers ``A^k`` capturing k-hop reachability mass,
* the GraphSNN weighted adjacency ``Ã`` of Eqn. (4), built from the overlap
  subgraph between the closed neighbourhoods of each edge's endpoints.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.graph import Graph


def adjacency_matrix(graph: Graph) -> np.ndarray:
    """Dense symmetric binary adjacency matrix of ``graph``."""
    return graph.adjacency(sparse=False)


def row_normalize(matrix: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Scale each row to sum to one (rows of zeros are left untouched)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    sums = matrix.sum(axis=1, keepdims=True)
    sums = np.where(sums < eps, 1.0, sums)
    return matrix / sums


def normalized_adjacency(graph: Graph, add_self_loops: bool = True) -> np.ndarray:
    """Symmetrically normalised adjacency ``D^{-1/2} (A + I) D^{-1/2}``.

    This is the propagation matrix of the Kipf & Welling GCN used as the
    encoder of every model in the paper.
    """
    adjacency = graph.adjacency(sparse=False)
    if add_self_loops:
        adjacency = adjacency + np.eye(graph.n_nodes)
    degrees = adjacency.sum(axis=1)
    inv_sqrt = np.where(degrees > 0, degrees ** -0.5, 0.0)
    return (adjacency * inv_sqrt[:, None]) * inv_sqrt[None, :]


def k_hop_matrix(graph: Graph, k: int, standardize: bool = True) -> np.ndarray:
    """Standardised ``A^k``, the naive multi-hop MH-GAE reconstruction target.

    ``A^k[i, j]`` counts walks of length ``k`` between ``i`` and ``j``;
    standardising (max-scaling into ``[0, 1]``) keeps the reconstruction loss
    comparable across different ``k`` as prescribed by Eqn. (3).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    adjacency = graph.adjacency(sparse=False)
    power = np.linalg.matrix_power(adjacency, k)
    if standardize:
        maximum = power.max()
        if maximum > 0:
            power = power / maximum
    return power


def graphsnn_weighted_adjacency(graph: Graph, lam: float = 1.0, normalize: bool = True) -> np.ndarray:
    """GraphSNN structural-coefficient weighted adjacency ``Ã`` (Eqn. 4).

    For every edge ``(v, u)`` the weight is determined by the overlap
    subgraph ``S_vu = S_v ∩ S_u`` of the closed neighbourhood subgraphs of
    the endpoints:

        Ã_vu = |E_vu| / (|V_vu| * (|V_vu| - 1)) * |V_vu|^lam

    Larger overlaps (dense, well-connected shared neighbourhoods) yield
    larger weights, letting a reconstruction loss see structure beyond
    one-hop adjacency — exactly the long-range-inconsistency signal MH-GAE
    needs.

    Parameters
    ----------
    graph:
        Input graph.
    lam:
        The ``λ`` exponent of Eqn. (4).
    normalize:
        When True the matrix is max-scaled into ``[0, 1]`` so it can be used
        directly as a sigmoid-decoder reconstruction target.
    """
    n = graph.n_nodes
    weighted = np.zeros((n, n), dtype=np.float64)
    closed_neighborhoods = [set(graph.neighbors(v)) | {v} for v in range(n)]

    edge_lookup = {frozenset(e) for e in graph.edges}

    for u, v in graph.edges:
        overlap_nodes = closed_neighborhoods[u] & closed_neighborhoods[v]
        size = len(overlap_nodes)
        if size < 2:
            # Degenerate overlap: fall back to the plain adjacency weight so
            # the matrix keeps the original connectivity pattern.
            weight = 1.0
        else:
            overlap_edges = 0
            overlap_list = sorted(overlap_nodes)
            for i, a in enumerate(overlap_list):
                for b in overlap_list[i + 1:]:
                    if frozenset((a, b)) in edge_lookup:
                        overlap_edges += 1
            weight = overlap_edges / (size * (size - 1)) * (size ** lam)
            if weight <= 0.0:
                weight = 1.0 / size
        weighted[u, v] = weight
        weighted[v, u] = weight

    if normalize and weighted.max() > 0:
        weighted = weighted / weighted.max()
    return weighted


def reconstruction_target(graph: Graph, target: str = "graphsnn", k: Optional[int] = None, lam: float = 1.0) -> np.ndarray:
    """Resolve a named MH-GAE reconstruction target.

    Parameters
    ----------
    target:
        One of ``"adjacency"`` (vanilla GAE), ``"k_hop"`` (requires ``k``) or
        ``"graphsnn"`` (the recommended ``Ã``).
    """
    if target == "adjacency":
        return adjacency_matrix(graph)
    if target == "k_hop":
        if k is None:
            raise ValueError("k must be provided for the k_hop target")
        return k_hop_matrix(graph, k)
    if target == "graphsnn":
        return graphsnn_weighted_adjacency(graph, lam=lam)
    raise ValueError(f"unknown reconstruction target '{target}'")
