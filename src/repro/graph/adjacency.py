"""Adjacency transforms: normalisation, k-hop powers and GraphSNN weights.

These are the reconstruction targets explored by MH-GAE (Sec. V-B and the
Table IV ablation of the paper):

* the plain adjacency ``A`` (vanilla GAE / DOMINANT),
* standardised k-th powers ``A^k`` capturing k-hop reachability mass,
* the GraphSNN weighted adjacency ``Ã`` of Eqn. (4), built from the overlap
  subgraph between the closed neighbourhoods of each edge's endpoints.

Every transform is computed sparse-first: the work happens on CSR matrices
derived from the graph's edge index and is densified only on request
(``sparse=False``, the default, for callers that feed a dense decoder).
See DESIGN.md ("Sparse-first engine") for the layering rationale.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.graph.graph import Graph

Matrix = Union[np.ndarray, sp.spmatrix]


def adjacency_matrix(graph: Graph, sparse: bool = False) -> Matrix:
    """Symmetric binary adjacency matrix of ``graph`` (dense by default)."""
    return graph.adjacency(sparse=sparse)


def row_normalize(matrix: Matrix, eps: float = 1e-12) -> Matrix:
    """Scale each row to sum to one (rows of zeros are left untouched).

    Accepts a dense array or any scipy sparse matrix; the result has the
    same layout as the input (dense in / dense out, sparse in / CSR out).
    """
    if sp.issparse(matrix):
        csr = matrix.tocsr().astype(np.float64)
        sums = np.asarray(csr.sum(axis=1)).ravel()
        scale = np.where(sums < eps, 1.0, sums)
        return sp.diags(1.0 / scale) @ csr
    matrix = np.asarray(matrix, dtype=np.float64)
    sums = matrix.sum(axis=1, keepdims=True)
    sums = np.where(sums < eps, 1.0, sums)
    return matrix / sums


def normalized_adjacency(graph: Graph, add_self_loops: bool = True, sparse: bool = False) -> Matrix:
    """Symmetrically normalised adjacency ``D^{-1/2} (A + I) D^{-1/2}``.

    This is the propagation matrix of the Kipf & Welling GCN used as the
    encoder of every model in the paper.  With ``sparse=True`` the result is
    a CSR matrix with the sparsity of ``A + I``, suitable for
    :func:`repro.tensor.functional.spmm`.
    """
    if sparse:
        adjacency = graph.adjacency(sparse=True)
        if add_self_loops:
            adjacency = adjacency + sp.identity(graph.n_nodes, format="csr")
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        inv_sqrt = np.zeros_like(degrees)
        positive = degrees > 0
        inv_sqrt[positive] = degrees[positive] ** -0.5
        scaler = sp.diags(inv_sqrt)
        return (scaler @ adjacency @ scaler).tocsr()
    # Dense path: plain numpy arithmetic beats a sparse round-trip for the
    # small graphs that still want a dense propagation matrix.
    adjacency = graph.adjacency(sparse=False)
    if add_self_loops:
        adjacency = adjacency + np.eye(graph.n_nodes)
    degrees = adjacency.sum(axis=1)
    inv_sqrt = np.zeros_like(degrees)
    positive = degrees > 0
    inv_sqrt[positive] = degrees[positive] ** -0.5
    return (adjacency * inv_sqrt[:, None]) * inv_sqrt[None, :]


def k_hop_matrix(graph: Graph, k: int, standardize: bool = True, sparse: bool = False) -> Matrix:
    """Standardised ``A^k``, the naive multi-hop MH-GAE reconstruction target.

    ``A^k[i, j]`` counts walks of length ``k`` between ``i`` and ``j``;
    standardising (max-scaling into ``[0, 1]``) keeps the reconstruction loss
    comparable across different ``k`` as prescribed by Eqn. (3).  The power
    is accumulated by repeated sparse matrix-matrix products and densified
    only at the end (never via ``np.linalg.matrix_power``).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    adjacency = graph.adjacency(sparse=True)
    power = adjacency.copy()
    for _ in range(k - 1):
        power = power @ adjacency
    if standardize:
        maximum = power.max() if power.nnz else 0.0
        if maximum > 0:
            power = power.multiply(1.0 / maximum).tocsr()
    return power.tocsr() if sparse else power.toarray()


def graphsnn_weighted_adjacency(
    graph: Graph, lam: float = 1.0, normalize: bool = True, sparse: bool = False
) -> Matrix:
    """GraphSNN structural-coefficient weighted adjacency ``Ã`` (Eqn. 4).

    For every edge ``(v, u)`` the weight is determined by the overlap
    subgraph ``S_vu = S_v ∩ S_u`` of the closed neighbourhood subgraphs of
    the endpoints:

        Ã_vu = |E_vu| / (|V_vu| * (|V_vu| - 1)) * |V_vu|^lam

    Larger overlaps (dense, well-connected shared neighbourhoods) yield
    larger weights, letting a reconstruction loss see structure beyond
    one-hop adjacency — exactly the long-range-inconsistency signal MH-GAE
    needs.

    The per-edge overlap statistics are computed without any per-edge Python
    loops.  With ``c(u, v)`` the number of common neighbours of an edge's
    endpoints (an entry of ``A @ A`` restricted to edges) the overlap
    counts decompose as::

        |V_uv| = c(u, v) + 2                      # shared neighbours + both endpoints
        |E_uv| = 1 + 2 c(u, v) + t(u, v)          # (u,v) itself, spokes, and edges
                                                  # between common neighbours

    where ``t(u, v)`` counts edges whose two endpoints are both common
    neighbours of ``u`` and ``v``.  Building the ``n × E`` common-neighbour
    indicator ``M[:, e] = A[:, u_e] ⊙ A[:, v_e]`` gives ``c`` as column sums
    and ``t`` as entries of the sparse product ``M Mᵀ`` at edge positions.

    Parameters
    ----------
    graph:
        Input graph.
    lam:
        The ``λ`` exponent of Eqn. (4).
    normalize:
        When True the matrix is max-scaled into ``[0, 1]`` so it can be used
        directly as a sigmoid-decoder reconstruction target.
    sparse:
        When True return a CSR matrix (same sparsity pattern as ``A``).
    """
    n = graph.n_nodes
    heads, tails = graph.edge_index
    if heads.size == 0:
        empty = sp.csr_matrix((n, n), dtype=np.float64)
        return empty if sparse else empty.toarray()

    adjacency = graph.adjacency(sparse=True).tocsc()
    # Column e of ``common`` flags the nodes adjacent to both endpoints of
    # edge e.  Diagonal-free A guarantees the endpoints themselves (and any
    # edge sharing an endpoint with e) contribute nothing downstream.
    common = adjacency[:, heads].multiply(adjacency[:, tails]).tocsr()
    common_counts = np.asarray(common.sum(axis=0)).ravel()
    # (common @ common.T)[x, y] counts edges whose endpoints are both
    # adjacent to x and to y — evaluated at edge positions this is the
    # number of overlap-internal edges between common neighbours (the
    # K4-per-edge triangle mask).
    pair_counts = (common @ common.T).tocsr()
    internal = np.asarray(pair_counts[heads, tails]).ravel()

    overlap_size = common_counts + 2.0
    overlap_edges = 1.0 + 2.0 * common_counts + internal
    weights = overlap_edges / (overlap_size * (overlap_size - 1.0)) * overlap_size ** lam

    weighted = sp.coo_matrix((weights, (heads, tails)), shape=(n, n))
    weighted = (weighted + weighted.T).tocsr()
    if normalize and weighted.nnz:
        maximum = weighted.max()
        if maximum > 0:
            weighted.data /= maximum
    return weighted if sparse else weighted.toarray()


def reconstruction_target(graph: Graph, target: str = "graphsnn", k: Optional[int] = None, lam: float = 1.0) -> np.ndarray:
    """Resolve a named MH-GAE reconstruction target.

    Targets are returned dense: they feed the ``sigmoid(Z Zᵀ)`` decoder
    whose output is inherently dense.

    Parameters
    ----------
    target:
        One of ``"adjacency"`` (vanilla GAE), ``"k_hop"`` (requires ``k``) or
        ``"graphsnn"`` (the recommended ``Ã``).
    """
    if target == "adjacency":
        return adjacency_matrix(graph)
    if target == "k_hop":
        if k is None:
            raise ValueError("k must be provided for the k_hop target")
        return k_hop_matrix(graph, k)
    if target == "graphsnn":
        return graphsnn_weighted_adjacency(graph, lam=lam)
    raise ValueError(f"unknown reconstruction target '{target}'")
