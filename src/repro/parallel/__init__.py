"""Parallel sharded execution of pipeline batches and experiment runs.

See :mod:`repro.parallel.executor` for the sharding/parity design and
``python -m repro.parallel --help`` for the CLI front end.
"""

from repro.parallel.executor import (
    ParallelExecutor,
    default_worker_count,
    parallel_fit_detect_many,
)

__all__ = [
    "ParallelExecutor",
    "default_worker_count",
    "parallel_fit_detect_many",
]
