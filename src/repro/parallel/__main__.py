"""CLI for sharded runs: ``python -m repro.parallel <command> [options]``.

Three commands:

* ``detect`` — score a batch of generated graphs through the sharded
  ``fit_detect_many`` (optionally warm-started from a saved artifact),
  printing one summary line per graph.
* ``fit`` — train the pipeline on one dataset and save the model
  artifact (``arrays.npz`` + ``manifest.json``) for later ``detect
  --artifact`` / streaming warm starts.
* ``experiments`` — shard entries of the experiment registry across
  worker processes and print each rendered table in input order.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import load_dataset
from repro.gae import MHGAEConfig
from repro.gcl import TPGCLConfig
from repro.obs.logging import get_logger, setup_logging
from repro.obs.tracer import Tracer, use_tracer
from repro.parallel import ParallelExecutor, default_worker_count
from repro.sampling import SamplerConfig

log = get_logger("parallel")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n-workers", type=int, default=default_worker_count(),
                        help="worker processes (<=1 runs in-process)")
    parser.add_argument("--dataset", default="simml", help="dataset name (see repro.datasets)")
    parser.add_argument("--scale", type=float, default=0.2, help="dataset scale vs published size")
    parser.add_argument("--seed", type=int, default=0, help="master pipeline seed")
    parser.add_argument("--mhgae-epochs", type=int, default=25)
    parser.add_argument("--tpgcl-epochs", type=int, default=6)
    parser.add_argument("--max-anchors", type=int, default=30)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel",
        description="Sharded TP-GrGAD runs: batched detection, artifact fitting, experiment grids.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    detect = commands.add_parser("detect", help="shard fit_detect_many over a graph batch")
    _add_common(detect)
    detect.add_argument("--batch", type=int, default=4,
                        help="batch size; graph i is the dataset generated with seed (--seed + i)")
    detect.add_argument("--chunk-size", type=int, default=None, help="graphs per worker task")
    detect.add_argument("--derive-seeds", action="store_true",
                        help="derive a distinct per-graph master seed from the batch index")
    detect.add_argument("--threshold", type=float, default=None, help="explicit score threshold τ")
    detect.add_argument("--artifact", default=None,
                        help="broadcast a saved artifact; workers serve warm detect_only")
    detect.add_argument("--json", metavar="PATH", default=None,
                        help="write per-graph result summaries as JSON")
    detect.add_argument("--trace", metavar="PATH", default=None,
                        help="trace the sharded run (incl. worker spans) and dump JSONL")

    fit = commands.add_parser("fit", help="train on one dataset and save the model artifact")
    _add_common(fit)
    fit.add_argument("--out", required=True, help="artifact directory to write")
    fit.add_argument("--trace", metavar="PATH", default=None,
                        help="trace the fit (pipeline/gae/tpgcl spans) and dump JSONL")

    experiments = commands.add_parser("experiments", help="shard the experiment registry")
    experiments.add_argument("names", nargs="+", help="experiment names (or 'all')")
    experiments.add_argument("--n-workers", type=int, default=default_worker_count())
    experiments.add_argument("--scale", type=float, default=0.12)
    experiments.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    experiments.add_argument("--datasets", type=str, nargs="+", default=None)
    experiments.add_argument("--mhgae-epochs", type=int, default=50)
    experiments.add_argument("--tpgcl-epochs", type=int, default=10)
    experiments.add_argument("--baseline-epochs", type=int, default=40)
    return parser


def pipeline_config(args: argparse.Namespace) -> TPGrGADConfig:
    return TPGrGADConfig(
        mhgae=MHGAEConfig(epochs=args.mhgae_epochs, hidden_dim=32, embedding_dim=16),
        sampler=SamplerConfig(max_candidates=150, max_anchor_pairs=200),
        tpgcl=TPGCLConfig(epochs=args.tpgcl_epochs, hidden_dim=32, embedding_dim=32, batch_size=24),
        max_anchors=args.max_anchors,
        seed=args.seed,
    )


def _cmd_detect(args: argparse.Namespace) -> int:
    graphs = [
        load_dataset(args.dataset, scale=args.scale, seed=args.seed + i)
        for i in range(args.batch)
    ]
    executor = ParallelExecutor(
        pipeline_config(args),
        n_workers=args.n_workers,
        chunk_size=args.chunk_size,
        derive_seeds=args.derive_seeds,
        artifact=args.artifact,
    )
    tracer = Tracer() if args.trace else None
    start = time.perf_counter()
    if tracer is not None:
        with use_tracer(tracer):
            results = executor.fit_detect_many(graphs, threshold=args.threshold)
    else:
        results = executor.fit_detect_many(graphs, threshold=args.threshold)
    elapsed = time.perf_counter() - start

    for i, (graph, result) in enumerate(zip(graphs, results)):
        print(
            f"graph {i} ({graph.n_nodes} nodes / {graph.n_edges} edges): "
            f"{result.n_candidates} candidates, {result.n_anomalous} flagged, "
            f"threshold {result.threshold:.4f}"
        )
    mode = "warm detect_only" if args.artifact else "fit_detect"
    log.info(
        "%d graphs via %s on %d workers in %.1fs (cache: %d hits / %d misses)",
        len(graphs), mode, args.n_workers, elapsed,
        executor.cache_hits, executor.cache_misses,
    )
    if tracer is not None:
        tracer.dump_jsonl(args.trace)
        log.info("wrote %d spans (trace %s) to %s", len(tracer.spans), tracer.trace_id, args.trace)
    if args.json:
        from repro.persist import dump_json

        dump_json(
            args.json,
            {
                "n_workers": args.n_workers,
                "seconds": round(elapsed, 4),
                "cache_hits": executor.cache_hits,
                "cache_misses": executor.cache_misses,
                "results": [result.to_json_dict() for result in results],
            },
        )
        log.info("wrote %s", args.json)
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    detector = TPGrGAD(pipeline_config(args))
    tracer = Tracer() if args.trace else None
    start = time.perf_counter()
    if tracer is not None:
        with use_tracer(tracer):
            result = detector.fit_detect(graph)
    else:
        result = detector.fit_detect(graph)
    path = detector.save(args.out)
    log.info(
        "fitted '%s' (%d nodes) in %.1fs: %d candidates, %d flagged",
        args.dataset, graph.n_nodes, time.perf_counter() - start,
        result.n_candidates, result.n_anomalous,
    )
    log.info("saved artifact to %s", path)
    if tracer is not None:
        tracer.dump_jsonl(args.trace)
        log.info("wrote %d spans (trace %s) to %s", len(tracer.spans), tracer.trace_id, args.trace)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS, ExperimentSettings

    settings = ExperimentSettings(
        scale=args.scale,
        seeds=tuple(args.seeds),
        mhgae_epochs=args.mhgae_epochs,
        tpgcl_epochs=args.tpgcl_epochs,
        baseline_epochs=args.baseline_epochs,
    )
    if args.datasets:
        settings.datasets = list(args.datasets)
    names = sorted(EXPERIMENTS) if args.names == ["all"] else args.names

    executor = ParallelExecutor(n_workers=args.n_workers)
    start = time.perf_counter()
    for name, _records, rendered in executor.run_experiments(names, settings):
        print(rendered)
        log.info("[%s done]", name)
    log.info(
        "[%d experiments on %d workers in %.1fs]",
        len(names), args.n_workers, time.perf_counter() - start,
    )
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging()
    if args.command == "detect":
        return _cmd_detect(args)
    if args.command == "fit":
        return _cmd_fit(args)
    return _cmd_experiments(args)


if __name__ == "__main__":
    sys.exit(main())
