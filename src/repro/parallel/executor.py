"""Process-pool sharded execution of the TP-GrGAD pipeline.

:class:`ParallelExecutor` shards two workloads across a
``ProcessPoolExecutor``:

* ``fit_detect_many`` — a batch of graphs is split into contiguous chunks,
  each scored by a worker process.  Results are **bit-identical to the
  serial order** by construction: every graph's pipeline is seeded from
  its config (and, under ``derive_seeds``, from its *batch index* via
  ``SeedSequence.spawn``), never from worker identity or chunk layout.
* ``run_experiments`` — entries of the experiment registry
  (:data:`repro.experiments.EXPERIMENTS`) run as one task each.

The pipeline's per-graph LRU stage cache cannot span processes, so the
executor recovers its effect two ways: duplicate graphs (same
``Graph.fingerprint()``) are collapsed *before* sharding and fanned back
out afterwards — the cross-worker analogue of a cache hit, counted in
``cache_hits`` — and a pre-fitted artifact (see :mod:`repro.persist`)
can be broadcast by path so every worker serves warm ``detect_only``
instead of retraining from scratch.  Counter accounting matches the
serial detector exactly when its LRU never evicts within the batch
(``cache_size`` at least the number of distinct graphs, the common
case); under eviction pressure the serial path recomputes evicted
repeats while the collapse never does, so the executor then reports
fewer misses — the *results* are identical either way.  ``cache_size ==
0`` disables the collapse entirely, mirroring a cache-disabled serial
run.

``backend="thread"`` swaps the process pool for a
``ThreadPoolExecutor`` in *artifact mode only*: warm ``detect_only`` is
pinned thread-safe (``tests/test_serve.py``), so every thread can share
one parent-loaded detector — no fork, no per-worker artifact load, no
pickling.  Fit paths mutate per-pipeline state and stay process-only, so
``backend="thread"`` without ``artifact`` raises.

On a single-core host the pool still shards correctly (parity is a
property of seed derivation, not of concurrency); wall-clock speedups
obviously need real cores.
"""

from __future__ import annotations

import copy
import math
import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import TPGrGADConfig
from repro.core.pipeline import TPGrGAD
from repro.core.result import GroupDetectionResult
from repro.graph import Graph
from repro.obs.tracer import Tracer, current_span_id, get_tracer, use_tracer
from repro.seeding import spawn_seeds


def default_worker_count() -> int:
    """Usable CPUs (cgroup/affinity aware), at least 1."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


# ----------------------------------------------------------------------
# Worker entry points (module-level: they must pickle by reference)
# ----------------------------------------------------------------------
def _worker_fit_detect(
    config: TPGrGADConfig,
    graphs: List[Graph],
    threshold: Optional[float],
    seeds: Optional[List[int]],
    artifact_path: Optional[str],
    state_index: Optional[int] = None,
    trace: Optional[Tuple[str, str, Optional[str], int]] = None,
) -> Tuple[List[GroupDetectionResult], int, int, Optional[object]]:
    """Score one chunk; returns (results, cache_hits, cache_misses, state).

    ``state_index`` asks for a :class:`repro.persist.PipelineState`
    snapshot of the models that scored that chunk-local graph (the fitted
    models themselves hold unpicklable closures; their state dicts are
    plain arrays).  The parent warm-binds it so the serial post-fit
    contract — the caller's detector exposes the models that scored the
    batch's last graph — survives sharding.

    ``trace`` is ``(shard_dir, trace_id, parent_span_id, chunk_index)``:
    tracer memory cannot cross the process boundary, so a traced parent
    asks each worker to run under a private :class:`Tracer` continuing
    the parent's trace id and to dump its spans to a per-shard JSONL
    file in ``shard_dir``; the parent merges the shards afterwards.
    """
    from repro.persist import PipelineState

    if trace is not None:
        shard_dir, trace_id, parent_span_id, chunk_index = trace
        tracer = Tracer(trace_id=trace_id, parent_span_id=parent_span_id)
        with use_tracer(tracer):
            with tracer.span("parallel.chunk", chunk=chunk_index, n_graphs=len(graphs)):
                output = _worker_fit_detect(
                    config, graphs, threshold, seeds, artifact_path, state_index, None
                )
        tracer.dump_jsonl(os.path.join(shard_dir, f"shard-{chunk_index:05d}.jsonl"))
        return output

    if artifact_path is not None:
        detector = TPGrGAD.load(artifact_path)
        return (
            [detector.detect_only(graph, threshold=threshold) for graph in graphs],
            0,
            0,
            None,
        )
    results: List[GroupDetectionResult] = []
    hits = misses = 0
    state: Optional[PipelineState] = None
    detector = TPGrGAD(config) if seeds is None else None
    for index, graph in enumerate(graphs):
        if seeds is not None:
            # Per-item derived seeds: one fresh detector per graph, each
            # seeded by the graph's batch index (threaded in via
            # ``seeds``), so the result cannot depend on which worker or
            # chunk ran it.
            detector = TPGrGAD(config.reseed(seeds[index]))
        results.append(detector.fit_detect(graph, threshold=threshold))
        if seeds is not None:
            hits += detector.cache_hits
            misses += detector.cache_misses
        if index == state_index:
            state = PipelineState.from_fitted(detector)
    if seeds is None:
        hits, misses = detector.cache_hits, detector.cache_misses
    return results, hits, misses, state


def _worker_experiment(name: str, settings) -> Tuple[str, List, str]:
    """Run one experiment registry entry; returns (name, records, rendered)."""
    from repro.experiments import EXPERIMENTS

    runner, renderer = EXPERIMENTS[name]
    records = runner(settings)
    return name, records, renderer(records)


# ----------------------------------------------------------------------
class ParallelExecutor:
    """Shard pipeline batches and experiment runs across worker processes.

    Parameters
    ----------
    config:
        Pipeline config shared by every item (ignored when ``artifact``
        is given — the artifact carries its own config).
    n_workers:
        Process count; ``None`` uses the machine's usable CPUs and
        ``<= 1`` runs everything in-process (the serial reference path,
        same code, no pool).
    chunk_size:
        Graphs per worker task; defaults to an even split over
        ``n_workers``.
    derive_seeds:
        Give item ``i`` the master seed ``spawn_seeds(config.seed, n)[i]``
        (stages that were derived re-derive from it; explicitly pinned
        stage seeds stay pinned).  Repeated graphs then intentionally get
        *different* streams, so duplicate-collapsing is disabled.
    artifact:
        Path of a saved pipeline artifact to broadcast: every worker
        loads it once and serves warm ``detect_only`` for its whole
        chunk instead of retraining per graph.
    backend:
        ``"process"`` (default) shards over a ``ProcessPoolExecutor``;
        ``"thread"`` uses threads sharing **one** parent-loaded warm
        detector — valid only with ``artifact`` (``detect_only`` is the
        thread-safe path), and the cheaper choice there since it skips
        fork and per-worker artifact loads.  ``run_experiments`` always
        uses processes.

    Examples
    --------
    >>> from repro.datasets import make_example_graph
    >>> graphs = [make_example_graph(seed=s) for s in (7, 11)]
    >>> executor = ParallelExecutor(TPGrGADConfig.fast(), n_workers=1)
    >>> len(executor.fit_detect_many(graphs))
    2
    """

    def __init__(
        self,
        config: Optional[TPGrGADConfig] = None,
        n_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        derive_seeds: bool = False,
        artifact: Optional[str] = None,
        backend: str = "process",
    ) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        backend = str(backend)
        if backend not in ("process", "thread"):
            raise ValueError(f"backend must be 'process' or 'thread', got {backend!r}")
        if backend == "thread" and artifact is None:
            raise ValueError(
                "backend='thread' requires a broadcast artifact: warm detect_only "
                "is the thread-safe path; fit paths stay process-only"
            )
        self.config = config or TPGrGADConfig()
        self.n_workers = default_worker_count() if n_workers is None else int(n_workers)
        self.chunk_size = chunk_size
        self.derive_seeds = derive_seeds
        self.artifact = None if artifact is None else str(artifact)
        self.backend = backend
        self._thread_detector: Optional[TPGrGAD] = None
        # Counters mirroring TPGrGAD's: cross-worker duplicate collapses
        # count as hits, worker-local LRU activity is merged in.
        self.cache_hits = 0
        self.cache_misses = 0
        # PipelineState of the models that scored the latest batch's last
        # item (None in artifact mode) — what fit_detect_many's parallel
        # route warm-binds to keep the serial post-fit contract.
        self.final_state = None

    # ------------------------------------------------------------------
    def _chunks(self, n_items: int) -> List[Tuple[int, int]]:
        """Contiguous ``[start, end)`` chunk bounds covering ``n_items``."""
        if n_items == 0:
            return []
        size = self.chunk_size or math.ceil(n_items / max(1, self.n_workers))
        return [(start, min(start + size, n_items)) for start in range(0, n_items, size)]

    # ------------------------------------------------------------------
    def _shared_detector(self) -> TPGrGAD:
        """The one warm detector every thread shard scores on (lazy load)."""
        if self._thread_detector is None:
            self._thread_detector = TPGrGAD.load(self.artifact)
        return self._thread_detector

    def _thread_chunk(
        self,
        detector: TPGrGAD,
        graphs: List[Graph],
        threshold: Optional[float],
        tracer: Tracer,
        parent_span_id: Optional[str],
        chunk_index: int,
    ):
        """Thread-backend shard: warm ``detect_only`` on the shared detector.

        Same output shape as :func:`_worker_fit_detect` in artifact mode.
        Worker threads start with a fresh contextvar context, so span
        parentage is re-established via a child :class:`Tracer` whose
        spans merge back under the parent's lock — no JSONL hand-off.
        """
        if tracer.enabled:
            child = Tracer(trace_id=tracer.trace_id, parent_span_id=parent_span_id)
            with use_tracer(child):
                with child.span(
                    "parallel.chunk", chunk=chunk_index, n_graphs=len(graphs), backend="thread"
                ):
                    results = [detector.detect_only(graph, threshold=threshold) for graph in graphs]
            tracer.ingest(child.spans)
        else:
            results = [detector.detect_only(graph, threshold=threshold) for graph in graphs]
        return results, 0, 0, None

    # ------------------------------------------------------------------
    def fit_detect_many(
        self, graphs: Iterable[Graph], threshold: Optional[float] = None
    ) -> List[GroupDetectionResult]:
        """Sharded ``TPGrGAD.fit_detect_many`` — serial-order results."""
        graphs = list(graphs)
        if not graphs:
            return []

        seeds: Optional[List[int]] = (
            spawn_seeds(self.config.seed, len(graphs)) if self.derive_seeds else None
        )

        # Collapse duplicate graphs when every item runs the identical
        # pipeline (same config, no per-index seeds): the cross-worker
        # equivalent of the serial stage cache (counter caveats under
        # LRU eviction pressure: see module docstring).  Warm artifact
        # serving is deterministic per graph, so duplicates collapse
        # there too — the scoring service's micro-batches lean on this.
        # cache_size == 0 means the user disabled caching — mirror the
        # serial semantics exactly: recompute duplicates and count only
        # misses (the artifact's own cache_size is not consulted; the
        # broadcast path never retrains, so collapsing is always sound).
        if seeds is None and (self.artifact is not None or self.config.cache_size):
            first_index: Dict[str, int] = {}
            assignment: List[int] = []
            unique: List[Graph] = []
            for graph in graphs:
                key = graph.fingerprint()
                if key not in first_index:
                    first_index[key] = len(unique)
                    unique.append(graph)
                assignment.append(first_index[key])
            self.cache_hits += len(graphs) - len(unique)
        else:
            assignment = list(range(len(graphs)))
            unique = graphs

        bounds = self._chunks(len(unique))
        # The unique graph whose fitted models the caller must end up
        # holding: the one the batch's *last* item resolved to.
        final_unique = assignment[-1] if self.artifact is None else None
        tracer = get_tracer()
        use_pool = self.n_workers > 1 and len(bounds) > 1
        use_threads = use_pool and self.backend == "thread"
        # The in-process path records into the global tracer directly,
        # and thread shards merge spans in-memory via Tracer.ingest;
        # only real process shards need the JSONL hand-off.
        shard_dir = (
            tempfile.mkdtemp(prefix="repro-trace-")
            if tracer.enabled and use_pool and not use_threads
            else None
        )
        with tracer.span("parallel.fit_detect_many") as span:
            if tracer.enabled:
                span.set("n_graphs", len(graphs))
                span.set("n_unique", len(unique))
                span.set("n_workers", self.n_workers)
            parent_span_id = current_span_id()
            tasks = [
                (
                    self.config,
                    unique[start:end],
                    threshold,
                    None if seeds is None else seeds[start:end],
                    self.artifact,
                    final_unique - start if final_unique is not None and start <= final_unique < end else None,
                    (shard_dir, tracer.trace_id, parent_span_id, chunk)
                    if shard_dir is not None
                    else None,
                )
                for chunk, (start, end) in enumerate(bounds)
            ]

            try:
                if not use_pool:
                    shard_outputs = [_worker_fit_detect(*task) for task in tasks]
                elif use_threads:
                    detector = self._shared_detector()
                    with ThreadPoolExecutor(max_workers=min(self.n_workers, len(tasks))) as pool:
                        futures = [
                            pool.submit(
                                self._thread_chunk,
                                detector,
                                unique[start:end],
                                threshold,
                                tracer,
                                parent_span_id,
                                chunk,
                            )
                            for chunk, (start, end) in enumerate(bounds)
                        ]
                        shard_outputs = [future.result() for future in futures]
                else:
                    with ProcessPoolExecutor(max_workers=min(self.n_workers, len(tasks))) as pool:
                        futures = [pool.submit(_worker_fit_detect, *task) for task in tasks]
                        shard_outputs = [future.result() for future in futures]
                if shard_dir is not None:
                    for name in sorted(os.listdir(shard_dir)):
                        tracer.ingest(Tracer.load_jsonl(os.path.join(shard_dir, name)))
            finally:
                if shard_dir is not None:
                    shutil.rmtree(shard_dir, ignore_errors=True)

        unique_results: List[GroupDetectionResult] = []
        self.final_state = None
        for results, hits, misses, state in shard_outputs:
            unique_results.extend(results)
            self.cache_hits += hits
            self.cache_misses += misses
            if state is not None:
                self.final_state = state

        # Fan duplicate collapses back out.  Copies keep the serial
        # contract that mutating one returned result never corrupts
        # another.
        fanned: List[GroupDetectionResult] = []
        seen_first = [False] * len(unique_results)
        for index in assignment:
            if seen_first[index]:
                fanned.append(copy.deepcopy(unique_results[index]))
            else:
                seen_first[index] = True
                fanned.append(unique_results[index])
        return fanned

    # ------------------------------------------------------------------
    def run_experiments(
        self, names: Sequence[str], settings
    ) -> List[Tuple[str, List, str]]:
        """Run experiment registry entries in parallel, input order kept.

        Each element of the returned list is ``(name, records, rendered)``
        — exactly what the serial ``python -m repro.experiments`` loop
        produces per experiment.
        """
        from repro.experiments import EXPERIMENTS

        names = list(names)
        unknown = sorted(set(names) - set(EXPERIMENTS))
        if unknown:
            raise KeyError(f"unknown experiments {unknown}; available: {sorted(EXPERIMENTS)}")
        if not names:
            return []
        if self.n_workers <= 1 or len(names) == 1:
            return [_worker_experiment(name, settings) for name in names]
        with ProcessPoolExecutor(max_workers=min(self.n_workers, len(names))) as pool:
            futures = [pool.submit(_worker_experiment, name, settings) for name in names]
            return [future.result() for future in futures]


def parallel_fit_detect_many(
    graphs: Iterable[Graph],
    config: Optional[TPGrGADConfig] = None,
    n_workers: Optional[int] = None,
    threshold: Optional[float] = None,
    **kwargs,
) -> List[GroupDetectionResult]:
    """One-call convenience wrapper around :class:`ParallelExecutor`."""
    return ParallelExecutor(config, n_workers=n_workers, **kwargs).fit_detect_many(
        graphs, threshold=threshold
    )
