"""Event-stream views of the generated datasets.

The paper's workloads arrive as transaction streams: accounts appear when
they first transact and laundering/phishing rings materialise over time.
This module turns any generated dataset with ground-truth groups into a
replayable :class:`EventStream` —

* a **base snapshot** of the normal economy (the background nodes and a
  configurable share of their edges),
* a sequence of :class:`~repro.stream.GraphDelta` ticks carrying the
  remaining background churn and the anomaly groups in arrival order,
* the **final graph** (base ⊕ all deltas) with the ground-truth groups
  re-labelled into stream node ids, and per-group arrival ticks so replay
  harnesses can measure *detection lag*.

Node ids are re-assigned in arrival order (background first, then group
members as their group arrives), so the streamed final graph is the
generated graph up to a node relabelling — same topology, same features,
same groups.

:func:`make_burst_stream` is the lag scenario from the ISSUE: every group
but one arrives early, then a chosen ring is planted in a single
mid-stream tick; the returned ``burst_group``/``burst_tick`` tell the
replay driver what to watch for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.registry import load_dataset
from repro.graph import Graph, Group
from repro.stream.delta import GraphDelta, StreamingGraph


@dataclass
class EventStream:
    """A replayable stream: base snapshot, delta ticks, final truth."""

    name: str
    base: Graph
    deltas: List[GraphDelta]
    final: Graph                      # base ⊕ all deltas, groups in stream ids
    groups: Tuple[Group, ...]         # ground truth, stream ids
    group_arrival_tick: Dict[int, int]  # group index -> tick it fully arrived
    burst_group: Optional[Group] = None
    burst_tick: Optional[int] = None

    @property
    def n_ticks(self) -> int:
        return len(self.deltas)

    def truncated(self, n_ticks: int) -> "EventStream":
        """The first ``n_ticks`` ticks as a standalone stream.

        The final graph is recomputed for the shorter horizon and only
        groups that have fully arrived by then are kept; burst metadata is
        dropped when the burst lies beyond the cut.
        """
        if not 0 < n_ticks <= self.n_ticks:
            raise ValueError(f"cannot truncate a {self.n_ticks}-tick stream to {n_ticks}")
        deltas = list(self.deltas[:n_ticks])
        streamed = StreamingGraph(self.base)
        streamed.apply_all(deltas)
        kept = sorted(i for i, tick in self.group_arrival_tick.items() if tick < n_ticks)
        groups = tuple(self.groups[i] for i in kept)
        burst_inside = self.burst_tick is not None and self.burst_tick < n_ticks
        return EventStream(
            name=f"{self.name}[:{n_ticks}]",
            base=self.base,
            deltas=deltas,
            final=streamed.graph.with_groups(groups),
            groups=groups,
            group_arrival_tick={
                new_index: self.group_arrival_tick[old_index]
                for new_index, old_index in enumerate(kept)
            },
            burst_group=self.burst_group if burst_inside else None,
            burst_tick=self.burst_tick if burst_inside else None,
        )


def _build_stream(
    graph: Graph,
    n_ticks: int,
    seed: int,
    base_edge_fraction: float,
    group_ticks: np.ndarray,
    name: str,
) -> EventStream:
    """Assemble an :class:`EventStream` from a labelled graph.

    ``group_ticks[i]`` is the tick at which group ``i`` (in ``graph.groups``
    order) arrives; background churn edges are spread uniformly over all
    ticks.
    """
    if n_ticks < 1:
        raise ValueError("a stream needs at least one tick")
    if not 0.0 < base_edge_fraction <= 1.0:
        raise ValueError("base_edge_fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)

    anomaly_mask = graph.anomaly_node_mask()
    background = np.flatnonzero(~anomaly_mask)
    if background.size == 0:
        raise ValueError("stream construction needs at least one background node")

    # Stream ids: background keeps ascending order; group members get ids at
    # arrival.  ``stream_id[orig] = new id``.
    stream_id = np.full(graph.n_nodes, -1, dtype=np.int64)
    stream_id[background] = np.arange(background.size)

    u, v = graph.edge_index
    background_edge = ~anomaly_mask[u] & ~anomaly_mask[v]
    background_edges = np.flatnonzero(background_edge)
    # Hold out churn edges, but keep the base well-formed even at small sizes.
    n_churn = int(round((1.0 - base_edge_fraction) * background_edges.size))
    churn_pick = rng.choice(background_edges.size, size=n_churn, replace=False)
    churn_mask = np.zeros(background_edges.size, dtype=bool)
    churn_mask[churn_pick] = True
    base_pairs = np.stack(
        [stream_id[u[background_edges[~churn_mask]]], stream_id[v[background_edges[~churn_mask]]]],
        axis=1,
    )
    churn_pairs = np.stack(
        [stream_id[u[background_edges[churn_mask]]], stream_id[v[background_edges[churn_mask]]]],
        axis=1,
    )
    churn_tick = rng.integers(0, n_ticks, size=churn_pairs.shape[0])

    base = Graph(
        n_nodes=int(background.size),
        edges=base_pairs,
        features=graph.features[background],
        name=f"{name}-base",
    )

    # Anomaly edges attached to each group: internal group edges plus any
    # graph edge touching a member (the generators' attachment edges).
    member_group = np.full(graph.n_nodes, -1, dtype=np.int64)
    for index, group in enumerate(graph.groups):
        member_group[list(group.nodes)] = index
    anomaly_edges = np.flatnonzero(~background_edge)
    edge_group = np.maximum(member_group[u[anomaly_edges]], member_group[v[anomaly_edges]])

    next_id = int(background.size)
    deltas: List[GraphDelta] = []
    group_arrival: Dict[int, int] = {}
    stream_groups: List[Optional[Group]] = [None] * len(graph.groups)
    order = np.argsort(group_ticks, kind="stable")

    for tick in range(n_ticks):
        new_features: List[np.ndarray] = []
        new_edges: List[np.ndarray] = []
        churn_now = churn_pairs[churn_tick == tick]
        if churn_now.size:
            new_edges.append(churn_now)
        for group_index in order[group_ticks[order] == tick]:
            group = graph.groups[int(group_index)]
            members = np.asarray(sorted(group.nodes), dtype=np.int64)
            stream_id[members] = np.arange(next_id, next_id + members.size)
            next_id += members.size
            new_features.append(graph.features[members])
            edges_here = anomaly_edges[edge_group == group_index]
            new_edges.append(np.stack([stream_id[u[edges_here]], stream_id[v[edges_here]]], axis=1))
            stream_groups[int(group_index)] = Group(
                nodes=frozenset(int(n) for n in stream_id[members]),
                edges=frozenset(
                    (int(stream_id[a]), int(stream_id[b])) for a, b in group.edges
                ),
                label=group.label,
            )
            group_arrival[int(group_index)] = tick
        deltas.append(
            GraphDelta.make(
                edges=np.vstack(new_edges) if new_edges else None,
                node_features=np.vstack(new_features) if new_features else None,
            )
        )

    streamed = StreamingGraph(base)
    streamed.apply_all(deltas)
    groups = tuple(g for g in stream_groups if g is not None)
    final = streamed.graph.with_groups(groups)
    final.name = name
    return EventStream(
        name=name,
        base=base,
        deltas=deltas,
        final=final,
        groups=groups,
        group_arrival_tick=group_arrival,
    )


def make_event_stream(
    dataset: str = "simml",
    scale: float = 1.0,
    seed: int = 0,
    n_ticks: int = 10,
    base_edge_fraction: float = 0.8,
) -> EventStream:
    """Arrival-ordered stream of a generated dataset.

    Groups arrive at ticks drawn uniformly; a ``1 - base_edge_fraction``
    share of background edges churns in alongside them.
    """
    graph = load_dataset(dataset, scale=scale, seed=seed)
    rng = np.random.default_rng((seed, 1))
    group_ticks = rng.integers(0, n_ticks, size=len(graph.groups))
    return _build_stream(
        graph, n_ticks, seed, base_edge_fraction, group_ticks, name=f"{graph.name}-stream"
    )


def make_burst_stream(
    dataset: str = "simml",
    scale: float = 1.0,
    seed: int = 0,
    n_ticks: int = 10,
    base_edge_fraction: float = 0.8,
    burst_tick: Optional[int] = None,
) -> EventStream:
    """Burst-injection scenario: one ring planted in a single mid-stream tick.

    All other groups arrive in the first third of the stream (so the
    detector has settled); the largest group is planted at ``burst_tick``
    (default: two-thirds in).  The returned stream carries ``burst_group``
    and ``burst_tick`` for detection-lag measurement.
    """
    graph = load_dataset(dataset, scale=scale, seed=seed)
    if not graph.groups:
        raise ValueError(f"dataset '{dataset}' has no ground-truth groups to plant")
    rng = np.random.default_rng((seed, 2))
    burst_tick = int(burst_tick) if burst_tick is not None else max(1, (2 * n_ticks) // 3)
    if not 0 <= burst_tick < n_ticks:
        raise ValueError(f"burst_tick {burst_tick} outside the {n_ticks}-tick stream")
    burst_index = int(np.argmax([len(g) for g in graph.groups]))
    early = max(1, n_ticks // 3)
    group_ticks = rng.integers(0, early, size=len(graph.groups))
    group_ticks[burst_index] = burst_tick
    stream = _build_stream(
        graph, n_ticks, seed, base_edge_fraction, group_ticks, name=f"{graph.name}-burst"
    )
    stream.burst_group = stream.groups[burst_index]
    stream.burst_tick = burst_tick
    return stream
