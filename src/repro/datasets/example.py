"""The illustrative example graph of Fig. 3 / Fig. 8 of the paper.

A small community graph containing three planted anomaly groups (a path, a
tree and a cycle).  It is used to demonstrate qualitatively that vanilla
GAE-based detectors (DOMINANT, DeepAE, ComGA) miss nodes deep inside the
groups, while MH-GAE recovers whole groups — the comparison reproduced by
the Figure 8 experiment.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.background import sbm_citation_background
from repro.datasets.injection import GroupSpec, inject_groups
from repro.graph import Graph


def make_example_graph(seed: int = 7, n_background: int = 90, n_features: int = 12) -> Graph:
    """Build the Fig. 3 / Fig. 8 style example graph.

    Three anomaly groups are planted: a 7-node path, a 7-node tree and a
    6-node cycle.  Group members share shifted attributes so their interiors
    look locally consistent but globally anomalous.
    """
    rng = np.random.default_rng(seed)
    background = sbm_citation_background(
        n_nodes=n_background,
        n_communities=3,
        avg_degree=4.0,
        n_features=n_features,
        rng=rng,
        name="example-background",
    )
    specs = [
        GroupSpec(pattern="path", size=7, attribute_shift=1.0, attribute_noise=0.08, n_attachments=2),
        GroupSpec(pattern="tree", size=7, attribute_shift=1.0, attribute_noise=0.08, n_attachments=2),
        GroupSpec(pattern="cycle", size=6, attribute_shift=1.0, attribute_noise=0.08, n_attachments=2),
    ]
    return inject_groups(background, specs, rng, name="example")
