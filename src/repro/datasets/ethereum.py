"""Ethereum-TSGN: a phishing-scam transaction graph with tree/cycle groups.

The original dataset (Wang et al., TSGN) contains 1,823 user accounts,
≈3,254 transactions, 13 attributes and 17 phishing groups whose topology
pattern mix (Table II) is 1 path, 9 trees and 7 cycles, with an average
group size of ≈ 7.2.  This generator reproduces those statistics: phishing
rings are star/tree shaped (a scammer fanning out to victims) or cyclic
(wash-trading style loops), with bursty transaction features.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.datasets.background import random_transaction_background
from repro.datasets.injection import assign_group_features
from repro.graph import Graph, Group


def make_ethereum_tsgn(scale: float = 1.0, seed: int = 0, n_features: int = 13) -> Graph:
    """Generate the Ethereum-TSGN-like phishing dataset.

    Parameters
    ----------
    scale:
        Fraction of the published size (1.0 → ≈1.8k nodes).
    seed:
        Random seed.
    n_features:
        Number of account attributes (the original has 13).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = np.random.default_rng(seed)

    n_groups = max(4, int(round(17 * scale ** 0.5)))
    # Table II pattern mix: 1 path, 9 trees, 7 cycles out of 17.  Keep the
    # tree/cycle proportions when scaling down, with at least one of each.
    n_cycles = max(1, int(round(7 / 17 * n_groups)))
    n_trees = max(1, n_groups - 1 - n_cycles)
    patterns: List[str] = ["path"] + ["tree"] * n_trees + ["cycle"] * n_cycles
    patterns = patterns[:n_groups]

    group_sizes = np.clip(rng.normal(loc=7.2, scale=2.0, size=len(patterns)), 4, 14).astype(int)
    n_anomaly_nodes = int(group_sizes.sum())

    n_nodes_total = max(120, int(round(1823 * scale)))
    n_background = max(80, n_nodes_total - n_anomaly_nodes)
    n_edges_background = max(n_background - 1, int(round(3254 * scale)) - int(1.3 * n_anomaly_nodes))

    background = random_transaction_background(
        n_background, n_edges_background, n_features, rng, name="Eth-background"
    )

    new_features: List[np.ndarray] = []
    new_edges: List[Tuple[int, int]] = []
    groups: List[Group] = []
    next_id = n_background

    for pattern, size in zip(patterns, group_sizes):
        size = int(max(size, 3 if pattern == "cycle" else 2))
        node_ids = list(range(next_id, next_id + size))
        next_id += size

        if pattern == "path":
            internal = list(zip(node_ids, node_ids[1:]))
        elif pattern == "cycle":
            internal = list(zip(node_ids, node_ids[1:])) + [(node_ids[-1], node_ids[0])]
            # The paper's example (Fig. 4b) shows a cycle with an inner cycle;
            # add a chord for larger cycles to mimic that density.
            if size >= 6:
                internal.append((node_ids[0], node_ids[size // 2]))
        else:  # tree: scammer hub with victim branches
            internal = []
            for i in range(1, size):
                parent = node_ids[int(rng.integers(0, max(1, i // 2)))]
                internal.append((parent, node_ids[i]))

        n_attachments = int(rng.integers(1, 3))
        attachment_members = [int(m) for m in rng.choice(node_ids, size=min(n_attachments, size), replace=False)]
        attachment_edges = [(member, int(rng.integers(0, n_background))) for member in attachment_members]

        anchor = int(rng.integers(0, n_background))
        # Phishing accounts receive many small incoming transfers then move
        # funds out in bursts — boundary accounts deviate strongly from the
        # normal economy while inner accounts mirror their ring neighbours.
        new_features.append(
            assign_group_features(
                node_ids,
                internal,
                attachment_members,
                background.features[anchor],
                rng,
                attribute_shift=1.1,
                attribute_noise=0.2,
            )
        )

        new_edges.extend(internal)
        new_edges.extend(attachment_edges)
        groups.append(Group(nodes=frozenset(node_ids), edges=frozenset(internal), label=pattern))

    grown = background.add_nodes_and_edges(np.vstack(new_features), new_edges, name="Ethereum-TSGN")
    return grown.with_groups(groups)
