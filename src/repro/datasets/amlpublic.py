"""AMLPublic: a bank-transaction graph with path-shaped laundering groups.

The original dataset (90,000 bank accounts, cleaned to 16,720 nodes and
17,238 edges with 16 attributes) is a public GitHub CSV that is not
reachable offline, so this module generates a graph matching its published
statistics.  The defining characteristic relevant to the paper is its
topology-pattern mix (Table II): 18 of the 19 anomaly groups are *paths*
(layered laundering flows) and one is a tree, with a large average group
size of ≈ 19 nodes.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.datasets.background import random_transaction_background
from repro.datasets.injection import assign_group_features
from repro.graph import Graph, Group


def make_amlpublic(scale: float = 1.0, seed: int = 0, n_features: int = 16) -> Graph:
    """Generate the AMLPublic-like dataset.

    Parameters
    ----------
    scale:
        Fraction of the published size.  ``scale=1.0`` yields ≈16.7k nodes;
        tests and benchmarks use ``scale≈0.05-0.2``.
    seed:
        Random seed.
    n_features:
        Number of account attributes (the original has 16).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = np.random.default_rng(seed)

    n_groups = max(3, int(round(19 * scale ** 0.5)))  # keep several groups even when heavily scaled
    # Published average group size is 19.05: long layered chains.
    group_sizes = np.clip(rng.normal(loc=19.0, scale=4.0, size=n_groups), 6, 30).astype(int)
    # At small scales shrink chains so groups do not dominate the graph.
    if scale < 0.5:
        group_sizes = np.clip((group_sizes * max(scale * 2.0, 0.4)).astype(int), 5, None)
    n_anomaly_nodes = int(group_sizes.sum())

    n_nodes_total = max(150, int(round(16720 * scale)))
    n_background = max(100, n_nodes_total - n_anomaly_nodes)
    # The published graph is extremely sparse (avg degree ≈ 2).
    n_edges_background = max(n_background - 1, int(round(17238 * scale)) - n_anomaly_nodes)

    background = random_transaction_background(
        n_background, n_edges_background, n_features, rng, name="AMLPublic-background"
    )

    new_features: List[np.ndarray] = []
    new_edges: List[Tuple[int, int]] = []
    groups: List[Group] = []
    next_id = n_background

    for index, size in enumerate(group_sizes):
        size = int(size)
        pattern = "tree" if index == n_groups - 1 else "path"  # Table II: 18 paths, 1 tree
        node_ids = list(range(next_id, next_id + size))
        next_id += size

        if pattern == "path":
            internal = list(zip(node_ids, node_ids[1:]))
        else:
            internal = []
            for i in range(1, size):
                parent = node_ids[int(rng.integers(0, i))]
                internal.append((parent, node_ids[i]))

        # The chain touches the legitimate economy at its two ends.
        attachment_members = [node_ids[0], node_ids[-1]]
        attachment_edges = [(member, int(rng.integers(0, n_background))) for member in attachment_members]

        anchor = int(rng.integers(0, n_background))
        new_features.append(
            assign_group_features(
                node_ids,
                internal,
                attachment_members,
                background.features[anchor],
                rng,
                attribute_shift=1.2,
                attribute_noise=0.15,
            )
        )

        new_edges.extend(internal)
        new_edges.extend(attachment_edges)
        groups.append(Group(nodes=frozenset(node_ids), edges=frozenset(internal), label=pattern))

    grown = background.add_nodes_and_edges(np.vstack(new_features), new_edges, name="AMLPublic")
    return grown.with_groups(groups)
