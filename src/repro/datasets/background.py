"""Background (normal-behaviour) graph generators.

Two families of backgrounds are used by the dataset builders:

* a sparse *transaction* background — accounts transacting mostly inside
  hub-and-spoke communities, used by the financial datasets (simML,
  AMLPublic, Ethereum-TSGN);
* a stochastic-block-model *citation* background with sparse binary
  bag-of-words attributes, used by the Cora-group / CiteSeer-group builders.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graph import Graph


def _preferential_edges(
    n_nodes: int,
    n_edges: int,
    rng: np.random.Generator,
    hub_bias: float = 0.75,
) -> List[Tuple[int, int]]:
    """Sparse edge list with a heavy-tailed degree distribution.

    A fraction ``hub_bias`` of edge endpoints is drawn proportionally to the
    current degree (preferential attachment), the rest uniformly, which
    yields the hub-dominated structure typical of transaction networks.
    """
    edges = set()
    degrees = np.ones(n_nodes, dtype=np.float64)
    # Start from a random spanning-tree-ish backbone so the graph is not
    # fragmented into dust.
    order = rng.permutation(n_nodes)
    for i in range(1, n_nodes):
        u = int(order[i])
        v = int(order[rng.integers(0, i)])
        if u != v:
            edges.add((min(u, v), max(u, v)))
            degrees[u] += 1
            degrees[v] += 1
        if len(edges) >= n_edges:
            break

    attempts = 0
    max_attempts = 50 * n_edges
    while len(edges) < n_edges and attempts < max_attempts:
        attempts += 1
        u = int(rng.integers(0, n_nodes))
        if rng.random() < hub_bias:
            probabilities = degrees / degrees.sum()
            v = int(rng.choice(n_nodes, p=probabilities))
        else:
            v = int(rng.integers(0, n_nodes))
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in edges:
            continue
        edges.add(edge)
        degrees[u] += 1
        degrees[v] += 1
    return sorted(edges)


def transaction_features(n_nodes: int, n_features: int, rng: np.random.Generator) -> np.ndarray:
    """Account-level features: log-normal amounts, counts and balance ratios.

    Feature semantics do not matter to the detectors (they are unsupervised);
    what matters is that normal accounts share a common distribution that
    anomaly groups will later deviate from.
    """
    base = rng.lognormal(mean=0.0, sigma=0.6, size=(n_nodes, n_features))
    noise = rng.normal(scale=0.15, size=(n_nodes, n_features))
    return np.clip(base + noise, 0.0, None)


def random_transaction_background(
    n_nodes: int,
    n_edges: int,
    n_features: int,
    rng: np.random.Generator,
    name: str = "transactions",
) -> Graph:
    """Sparse heavy-tailed transaction graph with log-normal account features."""
    if n_edges < n_nodes - 1:
        n_edges = n_nodes - 1
    edges = _preferential_edges(n_nodes, n_edges, rng)
    features = transaction_features(n_nodes, n_features, rng)
    return Graph(n_nodes, edges, features, name=name)


def sbm_citation_background(
    n_nodes: int,
    n_communities: int,
    avg_degree: float,
    n_features: int,
    rng: np.random.Generator,
    homophily: float = 0.9,
    name: str = "citation",
) -> Graph:
    """Stochastic-block-model citation-style graph with binary bag-of-words features.

    Each community has a topic: a subset of ~5% of the vocabulary with high
    activation probability.  Documents mostly cite within their community
    (``homophily`` controls the intra-community edge fraction).
    """
    communities = rng.integers(0, n_communities, size=n_nodes)
    target_edges = int(n_nodes * avg_degree / 2)

    edges = set()
    nodes_by_community = [np.flatnonzero(communities == c) for c in range(n_communities)]
    attempts = 0
    while len(edges) < target_edges and attempts < 50 * target_edges:
        attempts += 1
        u = int(rng.integers(0, n_nodes))
        if rng.random() < homophily:
            pool = nodes_by_community[communities[u]]
            if len(pool) < 2:
                continue
            v = int(rng.choice(pool))
        else:
            v = int(rng.integers(0, n_nodes))
        if u == v:
            continue
        edges.add((min(u, v), max(u, v)))

    # Bag-of-words features: community topic words fire with high probability.
    topic_size = max(3, n_features // 20)
    features = (rng.random((n_nodes, n_features)) < 0.02).astype(np.float64)
    for c in range(n_communities):
        topic_words = rng.choice(n_features, size=topic_size, replace=False)
        members = nodes_by_community[c]
        if len(members) == 0:
            continue
        activations = rng.random((len(members), topic_size)) < 0.35
        features[np.ix_(members, topic_words)] = np.maximum(
            features[np.ix_(members, topic_words)], activations.astype(np.float64)
        )
    return Graph(n_nodes, sorted(edges), features, name=name)
