"""Dataset generators for the five evaluation datasets of the paper.

The original paper evaluates on two real-world datasets (AMLPublic,
Ethereum-TSGN) and three synthetic ones (simML, Cora-group, CiteSeer-group).
None of the raw files are redistributable or reachable offline, so each is
replaced by a generator that reproduces its published statistics (Table I),
its anomaly-group topology-pattern mix (Table II) and the injection recipe
described in Sec. VII-A1.  See DESIGN.md for the substitution rationale.

Every generator accepts ``scale`` (shrinks node counts proportionally so the
full pipeline runs in seconds during tests and benchmarks) and ``seed``.
"""

from repro.datasets.injection import GroupSpec, inject_groups, attach_group_to_background
from repro.datasets.background import random_transaction_background, sbm_citation_background
from repro.datasets.amlsim import make_simml
from repro.datasets.amlpublic import make_amlpublic
from repro.datasets.ethereum import make_ethereum_tsgn
from repro.datasets.citation import make_cora_group, make_citeseer_group
from repro.datasets.example import make_example_graph
from repro.datasets.registry import load_dataset, available_datasets, DATASET_LOADERS

# Event-stream views (repro.datasets.stream) are exported lazily: they pull
# in the full streaming subsystem (and with it the pipeline stages), which
# plain dataset users should not pay for.
_LAZY_ATTRS = {
    "EventStream": ("repro.datasets.stream", "EventStream"),
    "make_event_stream": ("repro.datasets.stream", "make_event_stream"),
    "make_burst_stream": ("repro.datasets.stream", "make_burst_stream"),
}


def __getattr__(name):
    if name in _LAZY_ATTRS:
        import importlib

        module_name, attr = _LAZY_ATTRS[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro.datasets' has no attribute '{name}'")


__all__ = [
    "EventStream",
    "make_event_stream",
    "make_burst_stream",
    "GroupSpec",
    "inject_groups",
    "attach_group_to_background",
    "random_transaction_background",
    "sbm_citation_background",
    "make_simml",
    "make_amlpublic",
    "make_ethereum_tsgn",
    "make_cora_group",
    "make_citeseer_group",
    "make_example_graph",
    "load_dataset",
    "available_datasets",
    "DATASET_LOADERS",
]
