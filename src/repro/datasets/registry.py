"""Dataset registry: name-based loading for experiments and examples."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.datasets.amlpublic import make_amlpublic
from repro.datasets.amlsim import make_simml
from repro.datasets.citation import make_citeseer_group, make_cora_group
from repro.datasets.ethereum import make_ethereum_tsgn
from repro.datasets.example import make_example_graph
from repro.graph import Graph

DATASET_LOADERS: Dict[str, Callable[..., Graph]] = {
    "simml": make_simml,
    "cora-group": make_cora_group,
    "citeseer-group": make_citeseer_group,
    "amlpublic": make_amlpublic,
    "ethereum-tsgn": make_ethereum_tsgn,
}

# Aliases matching the paper's abbreviations.
_ALIASES = {
    "simml": "simml",
    "cora-g": "cora-group",
    "cora_group": "cora-group",
    "citeseer-g": "citeseer-group",
    "citeseer_group": "citeseer-group",
    "amlp": "amlpublic",
    "eth": "ethereum-tsgn",
    "ethereum": "ethereum-tsgn",
    "example": "example",
}


def available_datasets() -> List[str]:
    """Names accepted by :func:`load_dataset` (canonical names only)."""
    return sorted(DATASET_LOADERS) + ["example"]


def load_dataset(name: str, scale: float = 1.0, seed: int = 0, **kwargs) -> Graph:
    """Load a dataset by name.

    Parameters
    ----------
    name:
        Canonical dataset name or paper abbreviation (``simML``, ``Cora-g``,
        ``CiteSeer-g``, ``AMLP``, ``Eth``, ``example``).
    scale:
        Size fraction relative to the published statistics; ignored by the
        ``example`` graph.
    seed:
        Random seed forwarded to the generator.
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key == "example":
        return make_example_graph(seed=seed, **kwargs)
    if key not in DATASET_LOADERS:
        raise KeyError(f"unknown dataset '{name}'; available: {available_datasets()}")
    return DATASET_LOADERS[key](scale=scale, seed=seed, **kwargs)
