"""Anomaly-group injection machinery shared by all dataset builders.

A :class:`GroupSpec` describes one group to plant: its topology pattern
(path / tree / cycle / star), its size, and how strongly its node attributes
deviate from the background distribution.  :func:`inject_groups` grows the
background graph with the new nodes and edges, wires each group into the
background through a small number of attachment edges, and returns the
annotated :class:`~repro.graph.Graph`.

The attribute assignment reproduces the regime the paper targets:

* **boundary members** (nodes at or near the group's attachment points to
  the background) receive *individually* deviant attributes — each node is
  shifted in its own random direction away from its anchor's attributes, so
  it is inconsistent with its one-hop neighbourhood and detectable by
  vanilla GAE methods;
* **deep members** (nodes two or more hops away from every attachment
  point) receive the *average of their within-group neighbours'*
  attributes, so they are locally consistent and exhibit only the
  "long-range inconsistency" that MH-GAE is designed to capture (Sec. V-B,
  Fig. 3 of the paper).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graph import Graph, Group

PATTERNS = ("path", "tree", "cycle", "star")


@dataclass(frozen=True)
class GroupSpec:
    """Specification of one anomaly group to inject.

    Parameters
    ----------
    pattern:
        Topology pattern: ``"path"``, ``"tree"``, ``"cycle"`` or ``"star"``
        (a star is a depth-1 tree and is labelled as a tree).
    size:
        Number of nodes in the group (>= 2; cycles need >= 3).
    attribute_shift:
        Magnitude of the per-node attribute deviation of boundary members
        (larger = easier to detect at the node level).
    attribute_noise:
        Standard deviation of the Gaussian noise added to every member's
        attributes.
    n_attachments:
        Number of edges connecting the group to the background graph.
    """

    pattern: str
    size: int
    attribute_shift: float = 0.8
    attribute_noise: float = 0.1
    n_attachments: int = 2

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ValueError(f"unknown pattern '{self.pattern}'; choose one of {PATTERNS}")
        minimum = 3 if self.pattern == "cycle" else 2
        if self.size < minimum:
            raise ValueError(f"pattern '{self.pattern}' needs at least {minimum} nodes")
        if self.n_attachments < 1:
            raise ValueError("groups must attach to the background with at least one edge")


def _pattern_edges(pattern: str, node_ids: Sequence[int], rng: np.random.Generator) -> List[Tuple[int, int]]:
    """Internal edges realising ``pattern`` over ``node_ids``."""
    nodes = list(node_ids)
    if pattern == "path":
        return list(zip(nodes, nodes[1:]))
    if pattern == "cycle":
        return list(zip(nodes, nodes[1:])) + [(nodes[-1], nodes[0])]
    if pattern == "star":
        hub = nodes[0]
        return [(hub, leaf) for leaf in nodes[1:]]
    if pattern == "tree":
        # Random recursive tree: every node after the root attaches to a
        # uniformly chosen earlier node, giving branching hierarchies.
        edges = []
        for index in range(1, len(nodes)):
            parent = nodes[int(rng.integers(0, index))]
            edges.append((parent, nodes[index]))
        return edges
    raise ValueError(f"unknown pattern '{pattern}'")


def _pattern_label(pattern: str) -> str:
    return "tree" if pattern == "star" else pattern


def split_boundary_and_deep(
    node_ids: Sequence[int],
    internal_edges: Sequence[Tuple[int, int]],
    attachment_members: Sequence[int],
    deep_distance: int = 2,
) -> Tuple[Set[int], Set[int]]:
    """Partition group members into boundary and deep sets.

    A member is *deep* when its hop distance (inside the group's internal
    pattern) to every attachment member is at least ``deep_distance``.
    """
    adjacency: Dict[int, Set[int]] = {int(n): set() for n in node_ids}
    for u, v in internal_edges:
        adjacency[int(u)].add(int(v))
        adjacency[int(v)].add(int(u))

    distance = {int(n): np.inf for n in node_ids}
    queue = deque()
    for member in attachment_members:
        distance[int(member)] = 0
        queue.append(int(member))
    while queue:
        current = queue.popleft()
        for neighbor in adjacency[current]:
            if distance[neighbor] > distance[current] + 1:
                distance[neighbor] = distance[current] + 1
                queue.append(neighbor)

    deep = {n for n, d in distance.items() if d >= deep_distance}
    boundary = {int(n) for n in node_ids} - deep
    if not boundary:  # never let a group float without node-level signal
        boundary = {int(attachment_members[0])}
        deep.discard(int(attachment_members[0]))
    return boundary, deep


def assign_group_features(
    node_ids: Sequence[int],
    internal_edges: Sequence[Tuple[int, int]],
    attachment_members: Sequence[int],
    anchor_features: np.ndarray,
    rng: np.random.Generator,
    attribute_shift: float = 0.8,
    attribute_noise: float = 0.1,
) -> np.ndarray:
    """Attribute matrix for one injected group (rows follow ``node_ids`` order).

    Boundary members get individually deviant attributes; deep members get
    the mean of their already-assigned within-group neighbours, falling back
    to the group's boundary mean (see module docstring).
    """
    node_ids = [int(n) for n in node_ids]
    n_features = anchor_features.shape[0]
    features = {node: None for node in node_ids}

    boundary, deep = split_boundary_and_deep(node_ids, internal_edges, attachment_members)
    scale = np.maximum(np.abs(anchor_features), 0.5)
    for node in boundary:
        direction = rng.choice([-1.0, 1.0], size=n_features)
        features[node] = (
            anchor_features
            + attribute_shift * direction * scale
            + rng.normal(scale=attribute_noise, size=n_features)
        )

    adjacency: Dict[int, Set[int]] = {node: set() for node in node_ids}
    for u, v in internal_edges:
        adjacency[int(u)].add(int(v))
        adjacency[int(v)].add(int(u))
    boundary_mean = np.mean([features[node] for node in boundary], axis=0)

    # Assign deep members in BFS order from the boundary so each can average
    # over already-assigned neighbours.
    pending = deque(sorted(deep, key=lambda n: min((1 if m in boundary else 2) for m in adjacency[n]) if adjacency[n] else 3))
    guard = 0
    while pending and guard < 10 * len(node_ids):
        guard += 1
        node = pending.popleft()
        assigned_neighbors = [features[m] for m in adjacency[node] if features[m] is not None]
        if assigned_neighbors:
            features[node] = np.mean(assigned_neighbors, axis=0) + rng.normal(
                scale=attribute_noise, size=n_features
            )
        elif not pending:  # isolated deep node: fall back to the boundary mean
            features[node] = boundary_mean + rng.normal(scale=attribute_noise, size=n_features)
        else:
            pending.append(node)
    for node in node_ids:  # safety net for pathological adjacency
        if features[node] is None:
            features[node] = boundary_mean + rng.normal(scale=attribute_noise, size=n_features)

    return np.vstack([features[node] for node in node_ids])


def attach_group_to_background(
    graph: Graph,
    group_nodes: Sequence[int],
    n_attachments: int,
    rng: np.random.Generator,
    background_nodes: Optional[Sequence[int]] = None,
) -> List[Tuple[int, int]]:
    """Pick attachment edges wiring an injected group into the background."""
    pool = np.asarray(background_nodes if background_nodes is not None else range(graph.n_nodes))
    attachments = []
    for _ in range(n_attachments):
        group_end = int(rng.choice(np.asarray(group_nodes)))
        background_end = int(rng.choice(pool))
        attachments.append((group_end, background_end))
    return attachments


def inject_groups(
    background: Graph,
    specs: Sequence[GroupSpec],
    rng: np.random.Generator,
    name: Optional[str] = None,
) -> Graph:
    """Inject one anomaly group per spec into ``background``.

    Each group is made of *new* nodes appended to the graph.  Attachment
    points to the background are chosen first so the boundary/deep split of
    the attribute assignment (see module docstring) is well defined.
    """
    n_background = background.n_nodes
    n_features = background.n_features

    new_features: List[np.ndarray] = []
    new_edges: List[Tuple[int, int]] = []
    groups: List[Group] = []
    next_id = n_background

    for spec in specs:
        node_ids = list(range(next_id, next_id + spec.size))
        next_id += spec.size

        internal_edges = _pattern_edges(spec.pattern, node_ids, rng)

        n_attachments = min(spec.n_attachments, spec.size)
        attachment_members = [int(m) for m in rng.choice(node_ids, size=n_attachments, replace=False)]
        attachment_edges = [
            (member, int(rng.integers(0, n_background))) for member in attachment_members
        ]

        anchor = int(rng.integers(0, n_background))
        member_features = assign_group_features(
            node_ids,
            internal_edges,
            attachment_members,
            background.features[anchor],
            rng,
            attribute_shift=spec.attribute_shift,
            attribute_noise=spec.attribute_noise,
        )
        new_features.append(member_features)

        new_edges.extend(internal_edges)
        new_edges.extend(attachment_edges)
        groups.append(
            Group(
                nodes=frozenset(node_ids),
                edges=frozenset(internal_edges),
                label=_pattern_label(spec.pattern),
            )
        )

    features = np.vstack(new_features) if new_features else np.zeros((0, n_features))
    grown = background.add_nodes_and_edges(features, new_edges, name=name or background.name)
    return grown.with_groups(groups)


def pattern_mix(
    counts: dict,
    size_sampler,
    rng: np.random.Generator,
    attribute_shift: float = 0.8,
    attribute_noise: float = 0.1,
    n_attachments: int = 2,
) -> List[GroupSpec]:
    """Build a list of :class:`GroupSpec` from a ``{pattern: count}`` mapping.

    ``size_sampler`` is a callable ``rng -> int`` giving the size of each
    group, so builders can match the published average group sizes.
    """
    specs: List[GroupSpec] = []
    for pattern, count in counts.items():
        for _ in range(int(count)):
            specs.append(
                GroupSpec(
                    pattern=pattern,
                    size=max(3 if pattern == "cycle" else 2, int(size_sampler(rng))),
                    attribute_shift=attribute_shift,
                    attribute_noise=attribute_noise,
                    n_attachments=n_attachments,
                )
            )
    return specs
