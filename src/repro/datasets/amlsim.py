"""simML: an AMLSim-style agent-based money-laundering transaction simulator.

The paper's simML dataset is a Kaggle dump generated with IBM's AMLSim.
AMLSim itself is a simulator, so rather than shipping a frozen CSV we
re-implement its core behaviour: accounts transact normally according to
simple behavioural profiles, and a small number of laundering *typologies*
are planted on top — fan-in, fan-out, cycle, scatter-gather and stacked
(layered path) patterns, the same typologies AMLSim ships with.

Published statistics targeted at ``scale=1.0`` (Table I): 2,768 nodes,
4,226 edges, 74 anomaly groups with average size ≈ 3.5.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.datasets.background import random_transaction_background
from repro.datasets.injection import assign_group_features
from repro.graph import Graph, Group

# AMLSim laundering typologies and the share of groups using each.
TYPOLOGY_SHARES: Dict[str, float] = {
    "fan_in": 0.25,       # many sources -> one mule (tree)
    "fan_out": 0.25,      # one source -> many mules (tree)
    "cycle": 0.20,        # money returns to its origin
    "scatter_gather": 0.15,  # fan-out followed by fan-in (tree-ish diamond)
    "stacked": 0.15,      # layered chain of intermediaries (path)
}

_TYPOLOGY_LABEL = {
    "fan_in": "tree",
    "fan_out": "tree",
    "cycle": "cycle",
    "scatter_gather": "tree",
    "stacked": "path",
}


def _typology_edges(typology: str, nodes: List[int], rng: np.random.Generator) -> List[Tuple[int, int]]:
    """Internal transaction edges realising an AMLSim laundering typology."""
    if typology in ("fan_in", "fan_out"):
        hub = nodes[0]
        return [(hub, other) for other in nodes[1:]]
    if typology == "cycle":
        return list(zip(nodes, nodes[1:])) + [(nodes[-1], nodes[0])]
    if typology == "stacked":
        return list(zip(nodes, nodes[1:]))
    if typology == "scatter_gather":
        # source -> intermediaries -> sink
        source, sink = nodes[0], nodes[-1]
        middle = nodes[1:-1] or [nodes[0]]
        edges = [(source, m) for m in middle]
        edges += [(m, sink) for m in middle if m != sink]
        return edges
    raise ValueError(f"unknown typology '{typology}'")


def make_simml(scale: float = 1.0, seed: int = 0, n_features: int = 24) -> Graph:
    """Generate the simML money-laundering dataset.

    Parameters
    ----------
    scale:
        Fraction of the published dataset size to generate (use small values
        such as 0.1 in tests; 1.0 reproduces the Table I statistics).
    seed:
        Random seed controlling both the background and the typologies.
    n_features:
        Number of account attributes.  The Kaggle dump one-hot encodes
        categorical fields into 3,123 columns; we keep the dense numeric
        equivalent, which carries the same signal for unsupervised
        detectors.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = np.random.default_rng(seed)

    n_group_total = max(4, int(round(74 * scale)))
    # Average group size 3.52 -> sizes in {3, 4} mostly, occasionally 5.
    group_sizes = rng.choice([3, 3, 3, 4, 4, 5], size=n_group_total)
    n_anomaly_nodes = int(group_sizes.sum())

    n_nodes_total = max(60, int(round(2768 * scale)))
    n_background = max(40, n_nodes_total - n_anomaly_nodes)
    n_edges_background = max(n_background - 1, int(round(4226 * scale)) - int(1.2 * n_anomaly_nodes))

    background = random_transaction_background(
        n_background, n_edges_background, n_features, rng, name="simML-background"
    )

    typologies = list(TYPOLOGY_SHARES)
    probabilities = np.array([TYPOLOGY_SHARES[t] for t in typologies])
    chosen = rng.choice(typologies, size=n_group_total, p=probabilities / probabilities.sum())

    new_features: List[np.ndarray] = []
    new_edges: List[Tuple[int, int]] = []
    groups: List[Group] = []
    next_id = n_background

    for typology, size in zip(chosen, group_sizes):
        size = int(size)
        if typology == "cycle":
            size = max(size, 3)
        node_ids = list(range(next_id, next_id + size))
        next_id += size

        internal = _typology_edges(typology, node_ids, rng)

        # Laundering rings touch the legitimate economy through 1-2 accounts.
        n_attachments = int(rng.integers(1, 3))
        attachment_members = [int(m) for m in rng.choice(node_ids, size=min(n_attachments, size), replace=False)]
        attachment_edges = [(member, int(rng.integers(0, n_background))) for member in attachment_members]

        anchor = int(rng.integers(0, n_background))
        new_features.append(
            assign_group_features(
                node_ids,
                internal,
                attachment_members,
                background.features[anchor],
                rng,
                attribute_shift=1.0,
                attribute_noise=0.15,
            )
        )

        new_edges.extend(internal)
        new_edges.extend(attachment_edges)
        groups.append(
            Group(nodes=frozenset(node_ids), edges=frozenset(internal), label=_TYPOLOGY_LABEL[typology])
        )

    grown = background.add_nodes_and_edges(np.vstack(new_features), new_edges, name="simML")
    return grown.with_groups(groups)
