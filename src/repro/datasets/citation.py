"""Cora-group / CiteSeer-group: citation graphs with injected anomaly groups.

The paper builds these synthetic Gr-GAD datasets from the public Cora and
CiteSeer node-classification graphs by choosing anchor nodes and *adding new
nodes* linked to those anchors so the new nodes form anomaly groups; the new
nodes' attributes are the anchor attributes plus Gaussian noise.  The raw
Planetoid files are not available offline, so the substrate here is a
stochastic-block-model citation graph with bag-of-words features matching
the published scale, and the paper's injection recipe is applied on top via
:mod:`repro.datasets.injection`.

Published statistics (Table I):
    Cora-group      2,847 nodes / 10,792 edges / 1,433 attrs / 22 groups / avg 6.32
    CiteSeer-group  3,463 nodes /  9,334 edges / 3,703 attrs / 22 groups / avg 6.18
"""

from __future__ import annotations

import numpy as np

from repro.datasets.background import sbm_citation_background
from repro.datasets.injection import GroupSpec, inject_groups
from repro.graph import Graph


def _make_citation_group_dataset(
    name: str,
    n_nodes: int,
    n_edges: int,
    n_features: int,
    n_groups: int,
    avg_group_size: float,
    scale: float,
    seed: int,
    feature_cap: int,
) -> Graph:
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = np.random.default_rng(seed)

    group_count = max(4, int(round(n_groups * scale ** 0.5)))
    sizes = np.clip(rng.normal(loc=avg_group_size, scale=1.5, size=group_count), 3, 12).astype(int)
    n_anomaly_nodes = int(sizes.sum())

    total_nodes = max(120, int(round(n_nodes * scale)))
    background_nodes = max(90, total_nodes - n_anomaly_nodes)
    avg_degree = 2.0 * n_edges / n_nodes
    features = min(n_features, feature_cap) if scale < 1.0 else n_features

    background = sbm_citation_background(
        n_nodes=background_nodes,
        n_communities=7,
        avg_degree=avg_degree,
        n_features=features,
        rng=rng,
        name=f"{name}-background",
    )

    patterns = ["path", "tree", "cycle", "star"]
    specs = []
    for index, size in enumerate(sizes):
        specs.append(
            GroupSpec(
                pattern=patterns[index % len(patterns)],
                size=int(max(size, 3)),
                attribute_shift=0.9,
                attribute_noise=0.1,
                n_attachments=2,
            )
        )
    return inject_groups(background, specs, rng, name=name)


def make_cora_group(scale: float = 1.0, seed: int = 0, feature_cap: int = 256) -> Graph:
    """Generate the Cora-group dataset (``scale=1.0`` matches Table I sizes).

    ``feature_cap`` bounds the bag-of-words vocabulary when ``scale < 1`` so
    scaled-down copies stay cheap; at full scale the published 1,433-word
    vocabulary is used.
    """
    return _make_citation_group_dataset(
        name="Cora-group",
        n_nodes=2847,
        n_edges=10792,
        n_features=1433,
        n_groups=22,
        avg_group_size=6.32,
        scale=scale,
        seed=seed,
        feature_cap=feature_cap,
    )


def make_citeseer_group(scale: float = 1.0, seed: int = 0, feature_cap: int = 256) -> Graph:
    """Generate the CiteSeer-group dataset (``scale=1.0`` matches Table I sizes)."""
    return _make_citation_group_dataset(
        name="CiteSeer-group",
        n_nodes=3463,
        n_edges=9334,
        n_features=3703,
        n_groups=22,
        avg_group_size=6.18,
        scale=scale,
        seed=seed,
        feature_cap=feature_cap,
    )
