"""Shared latency statistics: bounded window, percentiles, qps.

One implementation used by both the serve layer
(:class:`repro.serve.metrics.ServerMetrics`) and the stream replay
driver (:class:`repro.stream.replay.ReplaySummary`), which previously
each carried their own percentile math.  Keeping the numerics here —
``np.percentile`` with its default linear interpolation, ``0.0`` for an
empty sample — guarantees the two surfaces report identical figures for
identical inputs (guarded by ``tests/test_obs.py``).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["LatencyWindow", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """``np.percentile`` with the project-wide empty-sample convention."""
    if not len(values):
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), q))


class LatencyWindow:
    """Bounded sliding window of ``(timestamp, seconds)`` samples.

    The window holds the most recent ``maxlen`` observations;
    timestamps come from whatever monotonic clock the caller uses and
    only ever enter qps math as differences.  Thread-safe: every method
    takes the internal lock, and callers that already serialize access
    (e.g. ``ServerMetrics``) simply pay an uncontended acquire.
    """

    def __init__(self, maxlen: int = 1024) -> None:
        self.maxlen = int(maxlen)
        self._lock = threading.Lock()
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=self.maxlen)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def record(self, seconds: float, at: float) -> None:
        """Append one latency sample observed at monotonic time ``at``."""
        with self._lock:
            self._samples.append((at, float(seconds)))

    def values(self) -> List[float]:
        """Latency values (seconds) currently in the window, oldest first."""
        with self._lock:
            return [seconds for _, seconds in self._samples]

    def percentile(self, q: float) -> float:
        return percentile(self.values(), q)

    def percentiles_ms(self, qs: Sequence[float] = (50, 95)) -> Dict[str, float]:
        """``{"p50_latency_ms": ..., ...}`` rounded to 3 decimals (µs)."""
        values = self.values()
        out: Dict[str, float] = {}
        for q in qs:
            key = f"p{q:g}_latency_ms"
            out[key] = round(percentile(values, q) * 1e3, 3) if values else 0.0
        return out

    def window_qps(self, now: Optional[float] = None) -> float:
        """Throughput over the window span; ``0.0`` with <2 samples.

        With ``now`` given, the span runs from the oldest sample to
        ``now`` (rate *including* the idle tail); otherwise from oldest
        to newest sample.
        """
        with self._lock:
            if len(self._samples) < 2:
                return 0.0
            oldest = self._samples[0][0]
            newest = self._samples[-1][0] if now is None else now
            span = max(newest - oldest, 1e-9)
            count = len(self._samples)
        return count / span
