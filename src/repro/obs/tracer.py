"""Nested-span tracer with :mod:`contextvars` propagation.

The tracer is a process-global singleton selected with
:func:`set_tracer` / :func:`use_tracer`; instrumented code asks for it
via :func:`get_tracer` at call time, so enabling tracing never requires
threading a handle through APIs.  The *current* span, however, lives in
a :class:`contextvars.ContextVar`: every asyncio task and every
``contextvars.copy_context().run(...)`` callback sees its own parent
chain, which is what lets spans opened inside the serve micro-batcher's
executor thread nest under the batch that scheduled them.

By default the global tracer is the shared :data:`NULL_TRACER`, whose
``span``/``add`` methods are no-ops returning a reusable context
manager — the disabled hot path costs one module-dict lookup plus a
``with`` statement, measured and pinned in
``benchmarks/test_obs_overhead.py``.  Instrumentation never touches any
RNG, so results are bit-identical whether tracing is on or off.

Process-pool workers cannot share the parent's tracer memory; they run
a private :class:`Tracer` seeded with the parent's ``trace_id`` and the
scheduling span's id, dump their spans to a per-shard JSONL file, and
the parent merges the shards back with :meth:`Tracer.ingest` (see
``repro.parallel.executor``).
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "current_span_id",
    "current_trace_id",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]

# The open span for the *current* context (asyncio task, copied context in
# an executor thread, or plain thread).  Each thread starts from an empty
# context, so spans opened on different threads form independent chains
# unless the caller explicitly copies its context across.
_CURRENT_SPAN: "contextvars.ContextVar[Optional[_SpanHandle]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


@dataclass
class Span:
    """One finished (or in-flight) timed operation."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    started_unix: float
    duration_s: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started_unix": self.started_unix,
            "duration_s": self.duration_s,
        }
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "Span":
        return cls(
            name=payload["name"],
            trace_id=payload["trace_id"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            started_unix=float(payload.get("started_unix", 0.0)),
            duration_s=float(payload.get("duration_s", 0.0)),
            counters=dict(payload.get("counters", {})),
            attrs=dict(payload.get("attrs", {})),
        )


class _SpanHandle:
    """Context manager owning one open :class:`Span`."""

    __slots__ = ("span", "_tracer", "_token", "_start")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self.span = span
        self._tracer = tracer
        self._token: Optional[contextvars.Token] = None
        self._start = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._token = _CURRENT_SPAN.set(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.duration_s = time.perf_counter() - self._start
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        if self._token is not None:
            try:
                _CURRENT_SPAN.reset(self._token)
            except ValueError:  # pragma: no cover - exited from a foreign context
                _CURRENT_SPAN.set(None)
        self._tracer._record(self.span)
        return False

    def add(self, name: str, value: Union[int, float] = 1) -> None:
        """Increment a counter on this span."""
        counters = self.span.counters
        counters[name] = counters.get(name, 0) + value

    def set(self, name: str, value: Any) -> None:
        """Attach a key/value attribute to this span."""
        self.span.attrs[name] = value


class _NullSpanHandle:
    """Reusable no-op stand-in for :class:`_SpanHandle`."""

    __slots__ = ()
    span = None

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, name: str, value: Union[int, float] = 1) -> None:
        pass

    def set(self, name: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpanHandle()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    A single shared instance (:data:`NULL_TRACER`) is the process
    default, so instrumented code pays only ``get_tracer().span(...)``
    on a reusable object — no allocation, no locking, no RNG.
    """

    enabled = False
    trace_id = ""

    def span(self, name: str, **attrs: Any) -> _NullSpanHandle:
        return _NULL_SPAN

    def add(self, name: str, value: Union[int, float] = 1) -> None:
        pass

    @property
    def spans(self) -> List[Span]:
        return []


NULL_TRACER = NullTracer()


class Tracer:
    """Collects finished spans in memory; thread-safe.

    Parameters
    ----------
    trace_id:
        Inherited when a worker process continues a parent's trace;
        freshly generated otherwise.
    parent_span_id:
        Default parent for root spans opened under this tracer —
        used by process-pool shards so their chunk spans nest under
        the scheduling span in the parent process.
    max_spans:
        Bounded retention; spans beyond the cap are counted in
        :attr:`dropped` instead of growing memory without limit.
    """

    enabled = True

    def __init__(
        self,
        trace_id: Optional[str] = None,
        parent_span_id: Optional[str] = None,
        max_spans: int = 100_000,
    ) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.parent_span_id = parent_span_id
        self.max_spans = int(max_spans)
        self.dropped = 0
        self._prefix = uuid.uuid4().hex[:8]
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self._spans: List[Span] = []

    # -- span lifecycle -------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        parent = _CURRENT_SPAN.get()
        parent_id = parent.span.span_id if parent is not None else self.parent_span_id
        span = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=f"{self._prefix}-{next(self._seq):x}",
            parent_id=parent_id,
            started_unix=time.time(),
            attrs=dict(attrs) if attrs else {},
        )
        return _SpanHandle(self, span)

    def add(self, name: str, value: Union[int, float] = 1) -> None:
        """Increment a counter on the current context's open span."""
        handle = _CURRENT_SPAN.get()
        if handle is not None:
            handle.add(name, value)

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(span)

    # -- inspection / merge --------------------------------------------
    @property
    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def ingest(self, spans: Iterable[Span]) -> int:
        """Merge spans from another tracer (e.g. a worker shard)."""
        merged = 0
        with self._lock:
            for span in spans:
                if len(self._spans) >= self.max_spans:
                    self.dropped += 1
                    continue
                self._spans.append(span)
                merged += 1
        return merged

    # -- persistence ----------------------------------------------------
    def dump_jsonl(self, path: str) -> str:
        """Write one span per line; returns ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.to_json_dict(), sort_keys=True) + "\n")
        return path

    @staticmethod
    def load_jsonl(path: str) -> List[Span]:
        spans: List[Span] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    spans.append(Span.from_json_dict(json.loads(line)))
        return spans


_ACTIVE: Union[Tracer, NullTracer] = NULL_TRACER


def get_tracer() -> Union[Tracer, NullTracer]:
    """The process-global tracer (the shared no-op one by default)."""
    return _ACTIVE


def set_tracer(tracer: Optional[Union[Tracer, NullTracer]]) -> Union[Tracer, NullTracer]:
    """Install ``tracer`` globally (``None`` restores the null tracer)."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER
    return _ACTIVE


@contextmanager
def use_tracer(tracer: Optional[Union[Tracer, NullTracer]]) -> Iterator[Union[Tracer, NullTracer]]:
    """Scoped :func:`set_tracer`; restores the previous tracer on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


def current_trace_id() -> Optional[str]:
    """Trace id of the active tracer, ``None`` when tracing is off."""
    return _ACTIVE.trace_id if _ACTIVE.enabled else None


def current_span_id() -> Optional[str]:
    """Span id of the innermost open span in this context, if any."""
    handle = _CURRENT_SPAN.get()
    if handle is not None and handle.span is not None:
        return handle.span.span_id
    if isinstance(_ACTIVE, Tracer):
        return _ACTIVE.parent_span_id
    return None
