"""Observability: tracing, shared latency stats, provenance, Prometheus.

Zero-dependency (stdlib + numpy) instrumentation threaded through every
execution surface of the project — batch ``fit_detect``, the sharded
``ParallelExecutor``, streaming ticks and the asyncio serving layer:

* :class:`Tracer` / :func:`use_tracer` — nested spans with counters,
  propagated via :mod:`contextvars`; JSONL dump/load; the default
  :data:`NULL_TRACER` keeps disabled hot paths bit-identical and
  effectively free (pinned ≤2% in ``benchmarks/test_obs_overhead.py``).
* :mod:`repro.obs.stats` — the one latency window / percentile / qps
  implementation shared by serve metrics and stream replay summaries.
* :mod:`repro.obs.provenance` — append-only per-response provenance log
  and the digest-replay verifier.
* :func:`render_prometheus` — text exposition of the ``/metrics``
  snapshot.
* :mod:`repro.obs.logging` — stdlib logging with trace-id correlation.
* ``python -m repro.obs`` — ``summarize`` / ``diff`` traces, ``verify``
  provenance logs.
"""

from repro.obs.logging import TraceContextFilter, get_logger, setup_logging
from repro.obs.prometheus import render_prometheus
from repro.obs.provenance import (
    PROVENANCE_SCHEMA_VERSION,
    ProvenanceLog,
    VerificationResult,
    build_record,
    canonical_json,
    read_log,
    score_digest,
    verify_log,
    verify_record,
)
from repro.obs.stats import LatencyWindow, percentile
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_span_id,
    current_trace_id,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "LatencyWindow",
    "NULL_TRACER",
    "NullTracer",
    "PROVENANCE_SCHEMA_VERSION",
    "ProvenanceLog",
    "Span",
    "TraceContextFilter",
    "Tracer",
    "VerificationResult",
    "build_record",
    "canonical_json",
    "current_span_id",
    "current_trace_id",
    "get_logger",
    "get_tracer",
    "percentile",
    "read_log",
    "render_prometheus",
    "score_digest",
    "set_tracer",
    "setup_logging",
    "use_tracer",
    "verify_log",
    "verify_record",
]
