"""Append-only provenance log for served detections, plus a replay verifier.

Every record ties one response to the exact inputs that produced it:

* ``model`` / ``version`` — which registry entry scored it,
* ``config_hash`` — :meth:`TPGrGADConfig.content_hash` of that entry,
* ``graph_fingerprint`` — :meth:`Graph.fingerprint` of the scored graph,
* ``score_digest`` — blake2b over the canonical JSON of
  ``result.to_json_dict()``.

Because ``detect_only`` is deterministic given (artifact, graph), a
logged response can be *replayed*: :func:`verify_record` re-runs the
detection against the artifact and checks the digest bit-for-bit.  With
``include_graph`` the graph itself is embedded in the record, making the
log self-contained; otherwise the verifier needs the graph supplied (or
looked up by fingerprint via :func:`verify_log`'s ``graphs`` mapping).

Records are JSON lines; :class:`ProvenanceLog` only ever appends, under
a lock, flushing per record so a crash loses at most the in-flight line.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.tracer import current_span_id, current_trace_id
from repro.persist.serialize import to_native

__all__ = [
    "PROVENANCE_SCHEMA_VERSION",
    "ProvenanceLog",
    "VerificationResult",
    "build_record",
    "canonical_json",
    "read_log",
    "score_digest",
    "verify_log",
    "verify_record",
]

PROVENANCE_SCHEMA_VERSION = 1


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: native types, sorted keys, no whitespace."""
    return json.dumps(to_native(payload), sort_keys=True, separators=(",", ":"))


def score_digest(result_json: Dict[str, Any]) -> str:
    """blake2b-16 over the canonical JSON of a result's wire form."""
    return hashlib.blake2b(canonical_json(result_json).encode("utf-8"), digest_size=16).hexdigest()


def build_record(
    *,
    model: str,
    version: int,
    config_hash: str,
    graph_fingerprint: str,
    result_json: Dict[str, Any],
    mode: str = "detect_only",
    threshold: Optional[float] = None,
    digest: Optional[str] = None,
    graph: Optional[Any] = None,
) -> Dict[str, Any]:
    """Assemble one provenance record for a served response.

    ``digest`` lets batch callers that scored one graph for several
    duplicate requests hash the result once; ``graph`` (a
    :class:`repro.graph.Graph`) embeds the full graph for self-contained
    replay.
    """
    record: Dict[str, Any] = {
        "schema": PROVENANCE_SCHEMA_VERSION,
        "record_id": uuid.uuid4().hex[:16],
        "unix_time": time.time(),
        "trace_id": current_trace_id(),
        "span_id": current_span_id(),
        "model": model,
        "version": int(version),
        "config_hash": config_hash,
        "graph_fingerprint": graph_fingerprint,
        "mode": mode,
        "threshold": threshold,
        "n_candidates": len(result_json.get("scores", [])),
        "n_anomalous": len(result_json.get("anomalous_groups", [])),
        "score_digest": digest if digest is not None else score_digest(result_json),
    }
    if graph is not None:
        record["graph"] = graph.to_json_dict()
    return record


class ProvenanceLog:
    """Thread-safe append-only JSONL writer."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")
        self._appended = 0

    def append(self, record: Dict[str, Any]) -> Dict[str, Any]:
        line = json.dumps(to_native(record), sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            self._appended += 1
        return record

    @property
    def appended(self) -> int:
        with self._lock:
            return self._appended

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "ProvenanceLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def read_log(path: str) -> List[Dict[str, Any]]:
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


@dataclass
class VerificationResult:
    """Outcome of replaying one provenance record."""

    record_id: str
    ok: bool
    reason: str = ""
    replayed_digest: str = ""

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        suffix = f" ({self.reason})" if self.reason else ""
        return f"{self.record_id}: {status}{suffix}"


def _fail(record: Dict[str, Any], reason: str) -> VerificationResult:
    return VerificationResult(record_id=record.get("record_id", "?"), ok=False, reason=reason)


def verify_record(
    record: Dict[str, Any],
    artifact_path: str,
    graph: Optional[Any] = None,
    detector: Optional[Any] = None,
) -> VerificationResult:
    """Replay one record against a saved artifact and compare digests.

    The graph comes from ``graph=`` or, failing that, the record's own
    embedded copy.  ``detector`` lets :func:`verify_log` amortize the
    artifact load across records; when given it must be the detector
    loaded from ``artifact_path``.
    """
    from repro.core import TPGrGAD
    from repro.graph import Graph

    if graph is None:
        if "graph" not in record:
            return _fail(record, "no embedded graph; pass graph= or log with include_graph")
        graph = Graph.from_json_dict(record["graph"])
    if graph.fingerprint() != record["graph_fingerprint"]:
        return _fail(record, "graph fingerprint mismatch")

    if detector is None:
        detector = TPGrGAD.load(artifact_path)
    if detector.config.content_hash() != record["config_hash"]:
        return _fail(record, "artifact config_hash mismatch")

    threshold = record.get("threshold")
    mode = record.get("mode", "detect_only")
    if mode == "fit_detect":
        result = TPGrGAD(detector.config).fit_detect(graph, threshold=threshold)
    else:
        result = detector.detect_only(graph, threshold=threshold)
    replayed = score_digest(result.to_json_dict())
    if replayed != record["score_digest"]:
        return VerificationResult(
            record_id=record.get("record_id", "?"),
            ok=False,
            reason="score digest mismatch",
            replayed_digest=replayed,
        )
    return VerificationResult(record_id=record.get("record_id", "?"), ok=True, replayed_digest=replayed)


def verify_log(
    log_path: str,
    artifact_path: str,
    graphs: Optional[Dict[str, Any]] = None,
    records: Optional[Iterable[Dict[str, Any]]] = None,
) -> List[VerificationResult]:
    """Replay every record in a log (``graphs`` keyed by fingerprint)."""
    from repro.core import TPGrGAD

    detector = TPGrGAD.load(artifact_path)
    results: List[VerificationResult] = []
    for record in records if records is not None else read_log(log_path):
        graph = (graphs or {}).get(record.get("graph_fingerprint"))
        results.append(verify_record(record, artifact_path, graph=graph, detector=detector))
    return results
