"""Structured stdlib logging with trace-id correlation.

:func:`setup_logging` configures the ``repro`` logger hierarchy with a
single stream handler whose formatter includes a ``trace_id`` field;
:class:`TraceContextFilter` resolves it from the active tracer at emit
time, so any log line written inside a traced operation carries the id
needed to find the matching spans in a JSONL trace dump (``-`` when
tracing is off).  CLIs (``repro.serve``, ``repro.parallel``,
``repro.stream``) use this instead of bare prints for operational
events; data output (tables, per-graph result lines) stays on stdout.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional, Union

from repro.obs.tracer import current_span_id, current_trace_id

__all__ = ["TraceContextFilter", "get_logger", "setup_logging"]

LOG_FORMAT = "%(asctime)s %(levelname)s %(name)s [trace=%(trace_id)s] %(message)s"
_ROOT_LOGGER = "repro"


class TraceContextFilter(logging.Filter):
    """Injects ``trace_id`` / ``span_id`` fields into every record."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.trace_id = current_trace_id() or "-"
        record.span_id = current_span_id() or "-"
        return True


def setup_logging(
    level: Union[int, str] = logging.INFO,
    stream: Optional[IO[str]] = None,
    fmt: str = LOG_FORMAT,
) -> logging.Logger:
    """Configure the ``repro`` logger; idempotent, returns the logger.

    Repeated calls replace the previously installed handler (so tests
    can redirect ``stream``) without stacking duplicates.
    """
    logger = logging.getLogger(_ROOT_LOGGER)
    logger.setLevel(level)
    logger.propagate = False
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    handler.setFormatter(logging.Formatter(fmt))
    handler.addFilter(TraceContextFilter())
    logger.addHandler(handler)
    return logger


def get_logger(name: str) -> logging.Logger:
    """A child of the ``repro`` logger (``repro.<name>`` unless given fully)."""
    if name == _ROOT_LOGGER or name.startswith(_ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_LOGGER}.{name}")
