"""Trace/provenance tooling: ``python -m repro.obs <command>``.

* ``summarize TRACE.jsonl`` — per-stage time breakdown of one trace:
  span count, total/mean/p95 duration, share of root wall time, and
  aggregated counters.
* ``diff A.jsonl B.jsonl`` — stage-by-stage comparison of two traces
  for regression triage (new/vanished stages, total-time deltas).
* ``verify --log provenance.jsonl --artifact DIR`` — replay every
  logged response against the artifact and check score digests
  bit-for-bit (see :mod:`repro.obs.provenance`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Sequence

from repro.obs.provenance import read_log, verify_log
from repro.obs.stats import percentile
from repro.obs.tracer import Span, Tracer

__all__ = ["build_parser", "diff_summaries", "main", "render_diff", "render_summary", "summarize_spans"]


def summarize_spans(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    """Aggregate spans by name; rows sorted by total time, descending."""
    known = {span.span_id for span in spans}
    root_wall = sum(
        span.duration_s for span in spans if span.parent_id is None or span.parent_id not in known
    )
    by_name: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        row = by_name.setdefault(
            span.name, {"name": span.name, "count": 0, "durations": [], "counters": {}}
        )
        row["count"] += 1
        row["durations"].append(span.duration_s)
        for key, value in span.counters.items():
            row["counters"][key] = row["counters"].get(key, 0) + value
    rows = []
    for row in by_name.values():
        durations = row.pop("durations")
        total = sum(durations)
        rows.append(
            {
                "name": row["name"],
                "count": row["count"],
                "total_s": total,
                "mean_ms": (total / len(durations)) * 1e3 if durations else 0.0,
                "p95_ms": percentile(durations, 95) * 1e3,
                "share_pct": (total / root_wall * 100.0) if root_wall > 0 else 0.0,
                "counters": row["counters"],
            }
        )
    rows.sort(key=lambda r: r["total_s"], reverse=True)
    return rows


def render_summary(rows: Sequence[Dict[str, Any]], trace_id: str = "") -> str:
    header = f"{'span':<28} {'count':>6} {'total_s':>9} {'mean_ms':>9} {'p95_ms':>9} {'share%':>7}  counters"
    lines = [f"trace {trace_id}" if trace_id else "trace", header, "-" * len(header)]
    for row in rows:
        counters = " ".join(f"{k}={v:g}" for k, v in sorted(row["counters"].items()))
        lines.append(
            f"{row['name']:<28} {row['count']:>6} {row['total_s']:>9.3f} "
            f"{row['mean_ms']:>9.2f} {row['p95_ms']:>9.2f} {row['share_pct']:>6.1f}%  {counters}"
        )
    return "\n".join(lines)


def diff_summaries(
    a_rows: Sequence[Dict[str, Any]], b_rows: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Stage-level deltas between two summaries (B relative to A)."""
    a_by = {row["name"]: row for row in a_rows}
    b_by = {row["name"]: row for row in b_rows}
    out = []
    for name in sorted(set(a_by) | set(b_by)):
        a = a_by.get(name)
        b = b_by.get(name)
        a_total = a["total_s"] if a else 0.0
        b_total = b["total_s"] if b else 0.0
        delta = b_total - a_total
        out.append(
            {
                "name": name,
                "a_total_s": a_total,
                "b_total_s": b_total,
                "delta_s": delta,
                "delta_pct": (delta / a_total * 100.0) if a_total > 0 else float("inf"),
                "a_count": a["count"] if a else 0,
                "b_count": b["count"] if b else 0,
                "status": "only-in-b" if a is None else ("only-in-a" if b is None else "both"),
            }
        )
    out.sort(key=lambda r: abs(r["delta_s"]), reverse=True)
    return out


def render_diff(rows: Sequence[Dict[str, Any]]) -> str:
    header = f"{'span':<28} {'a_total_s':>10} {'b_total_s':>10} {'delta_s':>9} {'delta%':>8} {'a#':>5} {'b#':>5}  note"
    lines = [header, "-" * len(header)]
    for row in rows:
        pct = f"{row['delta_pct']:+7.1f}%" if row["delta_pct"] != float("inf") else "     new"
        note = "" if row["status"] == "both" else row["status"]
        lines.append(
            f"{row['name']:<28} {row['a_total_s']:>10.3f} {row['b_total_s']:>10.3f} "
            f"{row['delta_s']:>+9.3f} {pct} {row['a_count']:>5} {row['b_count']:>5}  {note}"
        )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect JSONL traces and verify provenance logs.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    summarize = commands.add_parser("summarize", help="per-stage time breakdown of a trace")
    summarize.add_argument("trace", help="JSONL trace file (Tracer.dump_jsonl)")

    diff = commands.add_parser("diff", help="compare two traces stage by stage")
    diff.add_argument("trace_a", help="baseline trace")
    diff.add_argument("trace_b", help="candidate trace")

    verify = commands.add_parser("verify", help="replay a provenance log against an artifact")
    verify.add_argument("--log", required=True, help="provenance JSONL file")
    verify.add_argument("--artifact", required=True, help="pipeline artifact directory")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "summarize":
        spans = Tracer.load_jsonl(args.trace)
        trace_id = spans[0].trace_id if spans else ""
        print(render_summary(summarize_spans(spans), trace_id=trace_id))
        print(f"{len(spans)} spans")
        return 0
    if args.command == "diff":
        a = summarize_spans(Tracer.load_jsonl(args.trace_a))
        b = summarize_spans(Tracer.load_jsonl(args.trace_b))
        print(render_diff(diff_summaries(a, b)))
        return 0
    records = read_log(args.log)
    results = verify_log(args.log, args.artifact, records=records)
    failures = [result for result in results if not result.ok]
    for result in results:
        print(result.describe())
    print(f"{len(results) - len(failures)}/{len(results)} records verified")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
