"""Prometheus text exposition (version 0.0.4) for the ``/metrics`` snapshot.

Renders the same dict :meth:`ScoringServer._metrics_payload` serves as
JSON, so the two formats can never drift: scalar counters become
``repro_<name>`` samples, ``responses_by_status`` and
``batch_size_histogram`` become labelled families, and the per-model
section becomes ``repro_model_*{model="..."}`` gauges plus a
``repro_model_info`` series carrying version/config labels.  Zero
dependencies — just string assembly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

__all__ = ["CONTENT_TYPE", "render_prometheus"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

# Scalar snapshot keys ending in _total are monotonically increasing.
_COUNTER_SUFFIX = "_total"


def _escape_label(value: Any) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: Any) -> str:
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return repr(number)


class _Writer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self._typed: set = set()

    def sample(
        self,
        name: str,
        value: Any,
        labels: Optional[Mapping[str, Any]] = None,
        kind: str = "gauge",
        help_text: str = "",
    ) -> None:
        if name not in self._typed:
            self._typed.add(name)
            if help_text:
                self.lines.append(f"# HELP {name} {help_text}")
            self.lines.append(f"# TYPE {name} {kind}")
        label_str = ""
        if labels:
            inner = ",".join(f'{key}="{_escape_label(val)}"' for key, val in labels.items())
            label_str = "{" + inner + "}"
        self.lines.append(f"{name}{label_str} {_format_value(value)}")

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """Turn the ``/metrics`` JSON payload into exposition text."""
    writer = _Writer()

    for key, value in snapshot.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        kind = "counter" if key.endswith(_COUNTER_SUFFIX) else "gauge"
        writer.sample(f"repro_{key}", value, kind=kind)

    for status, count in sorted((snapshot.get("responses_by_status") or {}).items()):
        writer.sample(
            "repro_responses_by_status_total",
            count,
            labels={"status": status},
            kind="counter",
            help_text="HTTP responses by status code.",
        )

    for size, count in sorted((snapshot.get("batch_size_histogram") or {}).items()):
        writer.sample(
            "repro_batch_size_count",
            count,
            labels={"size": size},
            kind="counter",
            help_text="Micro-batches by batch size.",
        )

    queue = snapshot.get("queue") or {}
    for key, value in queue.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            writer.sample(f"repro_queue_{key}", value)

    jobs = snapshot.get("jobs") or {}
    for key, value in jobs.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            kind = "counter" if key.endswith(_COUNTER_SUFFIX) else "gauge"
            writer.sample(f"repro_jobs_{key}", value, kind=kind)
    for state, count in sorted((jobs.get("queue_depth") or {}).items()):
        writer.sample(
            "repro_jobs_queue_depth",
            count,
            labels={"state": state},
            help_text="Durable job store depth by state.",
        )
    for tenant, counters in sorted((jobs.get("tenants") or {}).items()):
        for key, value in sorted(counters.items()):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                kind = "counter" if key.endswith(_COUNTER_SUFFIX) else "gauge"
                writer.sample(
                    f"repro_jobs_tenant_{key}",
                    value,
                    labels={"tenant": tenant},
                    kind=kind,
                    help_text="Per-tenant async job activity.",
                )

    for model, info in sorted((snapshot.get("models") or {}).items()):
        labels = {"model": model}
        writer.sample(
            "repro_model_info",
            1,
            labels={
                "model": model,
                "version": info.get("version", 0),
                "config_hash": str(info.get("config_hash", ""))[:12],
            },
            help_text="Static info labels per registered model.",
        )
        for key in ("version", "swap_count", "requests_served", "tape_nodes_total", "cache_evictions"):
            if key in info:
                writer.sample(f"repro_model_{key}", info[key], labels=labels)
        fit_cache = info.get("fit_cache") or {}
        for key in ("hits", "misses", "evictions", "currsize"):
            if key in fit_cache:
                writer.sample(f"repro_model_fit_cache_{key}", fit_cache[key], labels=labels)

    return writer.render()
