"""Topology Pattern-based Graph Contrastive Learning (TPGCL, Sec. V-D).

TPGCL turns candidate groups into embeddings that carry topology-pattern
information.  For every candidate group a *positive* view (PPA) and a
*negative* view (PBA) are generated; a shared GCN group encoder embeds all
views, and the training objective (Eqn. 8) minimises the MINE estimate of
the mutual information between positive and negative view embeddings.
"""

from repro.gcl.encoder import GroupEncoder
from repro.gcl.mine import MINEStatisticsNetwork, mine_mutual_information
from repro.gcl.tpgcl import TPGCL, TPGCLConfig, TPGCLTrainingResult

__all__ = [
    "GroupEncoder",
    "MINEStatisticsNetwork",
    "mine_mutual_information",
    "TPGCL",
    "TPGCLConfig",
    "TPGCLTrainingResult",
]
