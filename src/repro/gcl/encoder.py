"""Group encoder: a GCN over the group's induced subgraph plus mean readout.

The paper uses a 2-layer GCN (Sec. VII-A4) shared across all candidate
groups and views; a permutation-invariant mean readout turns node
embeddings into a single group embedding of dimension 64.

Two execution strategies produce the same embeddings:

* the looped path (:meth:`GroupEncoder.forward` per subgraph) — the
  reference, bit-reproducible against the seed implementation;
* the batched path (:meth:`GroupEncoder.encode_batch` with
  ``batched=True``) — packs the whole batch into one block-diagonal
  sparse graph, so both convolutions run as a single SpMM over all nodes
  and the mean readout becomes one :func:`~repro.tensor.functional.segment_mean`
  product.  Because per-component symmetric normalisation equals the
  normalisation of the disjoint union, the batched forward is
  mathematically identical (it differs only by BLAS summation order, so
  it is opt-in and the float64 default stays on the looped path).
"""

from __future__ import annotations

from typing import List

import numpy as np
import scipy.sparse as sp

from repro.graph import Graph, normalized_adjacency
from repro.nn import GCNConv, Module
from repro.tensor import Tensor
from repro.tensor.functional import segment_mean


# Below this node count the constant overhead of CSR construction and
# sparse-dense products outweighs the dense n² work they avoid; candidate
# groups are usually far smaller, so this keeps the common case fast while
# large subgraphs still propagate sparsely.
_SPARSE_PROPAGATION_MIN_NODES = 256


class GroupEncoder(Module):
    """Shared GCN encoder mapping a (small) group graph to one embedding row."""

    def __init__(
        self,
        n_features: int,
        hidden_dim: int = 64,
        embedding_dim: int = 64,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.conv_1 = GCNConv(n_features, hidden_dim, rng, activation="relu")
        self.conv_2 = GCNConv(hidden_dim, embedding_dim, rng, activation=None)
        self.embedding_dim = embedding_dim

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the encoder weights (features are cast to match)."""
        return self.conv_1.linear.weight.data.dtype

    def forward(self, group_graph: Graph) -> Tensor:
        """Embed one group graph; returns a ``(1, embedding_dim)`` tensor."""
        propagation = normalized_adjacency(
            group_graph, sparse=group_graph.n_nodes >= _SPARSE_PROPAGATION_MIN_NODES
        )
        features = Tensor(np.asarray(group_graph.features, dtype=self.dtype))
        hidden = self.conv_1(features, propagation)
        node_embeddings = self.conv_2(hidden, propagation)
        return node_embeddings.mean(axis=0, keepdims=True)

    def encode_batch(self, group_graphs: List[Graph], batched: bool = False) -> Tensor:
        """Embed a list of group graphs into an ``(m, embedding_dim)`` tensor.

        With ``batched=False`` (default) each subgraph runs through
        :meth:`forward` and the rows are concatenated — the reference path.
        With ``batched=True`` the batch runs as one block-diagonal forward.
        """
        if not group_graphs:
            raise ValueError("encode_batch received no group graphs")
        if batched and len(group_graphs) > 1:
            return self._encode_batch_blockdiag(group_graphs)
        rows = [self.forward(graph) for graph in group_graphs]
        return Tensor.concatenate(rows, axis=0)

    def _encode_batch_blockdiag(self, group_graphs: List[Graph]) -> Tensor:
        """One SpMM-based forward over the disjoint union of the batch.

        The symmetric GCN normalisation of a disconnected graph decomposes
        per component, so ``block_diag(Â₁, …, Âₘ)`` is exactly the
        normalised adjacency of the union graph and each subgraph's
        messages never leak into another's rows.
        """
        dtype = self.dtype
        # Small blocks are normalised densely — for a ~10-node subgraph the
        # dense D^{-1/2}(A+I)D^{-1/2} is far cheaper than CSR construction —
        # and sp.block_diag assembles mixed dense/sparse blocks into one CSR.
        blocks = [
            normalized_adjacency(
                graph, sparse=graph.n_nodes >= _SPARSE_PROPAGATION_MIN_NODES
            )
            for graph in group_graphs
        ]
        propagation = sp.block_diag(blocks, format="csr")
        features = Tensor(
            np.concatenate(
                [np.asarray(graph.features, dtype=dtype) for graph in group_graphs], axis=0
            )
        )
        hidden = self.conv_1(features, propagation)
        node_embeddings = self.conv_2(hidden, propagation)
        return segment_mean(node_embeddings, [graph.n_nodes for graph in group_graphs])
