"""Group encoder: a GCN over the group's induced subgraph plus mean readout.

The paper uses a 2-layer GCN (Sec. VII-A4) shared across all candidate
groups and views; a permutation-invariant mean readout turns node
embeddings into a single group embedding of dimension 64.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graph import Graph, normalized_adjacency
from repro.nn import GCNConv, Module
from repro.tensor import Tensor


# Below this node count the constant overhead of CSR construction and
# sparse-dense products outweighs the dense n² work they avoid; candidate
# groups are usually far smaller, so this keeps the common case fast while
# large subgraphs still propagate sparsely.
_SPARSE_PROPAGATION_MIN_NODES = 256


class GroupEncoder(Module):
    """Shared GCN encoder mapping a (small) group graph to one embedding row."""

    def __init__(
        self,
        n_features: int,
        hidden_dim: int = 64,
        embedding_dim: int = 64,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.conv_1 = GCNConv(n_features, hidden_dim, rng, activation="relu")
        self.conv_2 = GCNConv(hidden_dim, embedding_dim, rng, activation=None)
        self.embedding_dim = embedding_dim

    def forward(self, group_graph: Graph) -> Tensor:
        """Embed one group graph; returns a ``(1, embedding_dim)`` tensor."""
        propagation = normalized_adjacency(
            group_graph, sparse=group_graph.n_nodes >= _SPARSE_PROPAGATION_MIN_NODES
        )
        features = Tensor(group_graph.features)
        hidden = self.conv_1(features, propagation)
        node_embeddings = self.conv_2(hidden, propagation)
        return node_embeddings.mean(axis=0, keepdims=True)

    def encode_batch(self, group_graphs: List[Graph]) -> Tensor:
        """Embed a list of group graphs into an ``(m, embedding_dim)`` tensor."""
        if not group_graphs:
            raise ValueError("encode_batch received no group graphs")
        rows = [self.forward(graph) for graph in group_graphs]
        return Tensor.concatenate(rows, axis=0)
