"""MINE: Mutual Information Neural Estimation (Belghazi et al., 2018).

The statistics network Φ is an MLP over concatenated embedding pairs.  The
Donsker-Varadhan bound estimates the mutual information between the
positive-view and negative-view embedding distributions:

    I(Zp; Zn) >= E_joint[Φ(zp_i, zn_i)] - log E_marginal[exp Φ(zp_i, zn_j)]

TPGCL *minimises* this quantity (Eqn. 8 of the paper), pushing the encoder
to share as little information as possible between views that preserve and
views that break the group's topology patterns.
"""

from __future__ import annotations

import numpy as np

from repro.nn import MLP, Module
from repro.tensor import Tensor


class MINEStatisticsNetwork(Module):
    """The trainable estimator Φ of Eqn. (8), implemented as an MLP."""

    def __init__(self, embedding_dim: int, hidden_dim: int = 64, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.mlp = MLP([2 * embedding_dim, hidden_dim, 1], rng, activation="relu")

    def forward(self, z_a: Tensor, z_b: Tensor) -> Tensor:
        """Score pairs ``(z_a[i], z_b[i])``; both inputs are ``(k, d)`` tensors."""
        return self.mlp(Tensor.concatenate([z_a, z_b], axis=1))


def mine_mutual_information(
    statistics_network: MINEStatisticsNetwork,
    positive_embeddings: Tensor,
    negative_embeddings: Tensor,
    clamp: float = 20.0,
) -> Tensor:
    """Donsker-Varadhan MI estimate between paired embedding sets.

    Parameters
    ----------
    statistics_network:
        The Φ network.
    positive_embeddings, negative_embeddings:
        ``(m, d)`` tensors; row ``i`` of each comes from the same candidate
        group (the joint distribution), while cross-row pairs provide the
        product-of-marginals samples.
    clamp:
        Bound on Φ outputs before exponentiation for numerical stability.

    Returns
    -------
    Tensor
        Scalar MI estimate (can be negative early in training).
    """
    m = positive_embeddings.shape[0]
    if negative_embeddings.shape[0] != m:
        raise ValueError("positive and negative embedding batches must have equal size")
    if m < 2:
        raise ValueError("MINE needs at least two pairs to form marginal samples")

    # Joint samples: matching rows (cp_i, cn_i).
    joint_scores = statistics_network(positive_embeddings, negative_embeddings).clip(-clamp, clamp)
    joint_term = joint_scores.mean()

    # Marginal samples: all mismatched row pairs (cp_i, cn_j), i != j.
    row_index = np.repeat(np.arange(m), m)
    column_index = np.tile(np.arange(m), m)
    off_diagonal = row_index != column_index
    row_index, column_index = row_index[off_diagonal], column_index[off_diagonal]

    marginal_scores = statistics_network(
        positive_embeddings[row_index], negative_embeddings[column_index]
    ).clip(-clamp, clamp)
    # log E[exp Φ] with the log-sum-exp trick for stability.
    max_score = Tensor(np.array(marginal_scores.numpy().max()))
    marginal_term = ((marginal_scores - max_score).exp().mean()).log() + max_score

    return joint_term - marginal_term
