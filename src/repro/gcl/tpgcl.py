"""The TPGCL trainer (Sec. V-D, Eqn. 8).

Given candidate groups sampled from a graph, TPGCL:

1. extracts each group's induced subgraph,
2. generates a positive view with PPA and a negative view with PBA (other
   augmentations can be plugged in for the Fig. 6 ablation),
3. embeds all views with a shared :class:`~repro.gcl.encoder.GroupEncoder`,
4. minimises the MINE estimate of the mutual information between positive
   and negative view embeddings (Eqn. 8),
5. afterwards produces an embedding per candidate group, to be scored by an
   unsupervised outlier detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.augment import Augmentation, PatternBreakingAugmentation, PatternPreservingAugmentation
from repro.gcl.encoder import GroupEncoder
from repro.gcl.mine import MINEStatisticsNetwork, mine_mutual_information
from repro.graph import Graph, Group
from repro.nn import Adam, EarlyStopping
from repro.obs.tracer import get_tracer
from repro.seeding import resolve_seed
from repro.tensor import default_dtype, no_grad, tape_node_count


@dataclass
class TPGCLConfig:
    """TPGCL hyperparameters.

    The defaults follow Sec. VII-A4: a 2-layer GCN encoder with 64-d output
    embeddings; Adam; views regenerated every ``view_refresh_every`` epochs
    so the stochastic parts of PPA/PBA (cycle node choices) are resampled.

    Fast-training-engine knobs: ``dtype`` selects the training precision
    (``"float64"`` is the bit-reproducible reference, ``"float32"`` the
    fast mode); ``batch_views`` packs each view batch into one
    block-diagonal sparse graph so encoding runs as a single SpMM forward
    instead of a per-subgraph Python loop (mathematically identical,
    differs only by BLAS summation order — hence opt-in);
    ``patience``/``min_delta`` stop training early once the epoch loss
    plateaus (``patience = 0`` disables).
    """

    hidden_dim: int = 64
    embedding_dim: int = 64
    epochs: int = 30
    batch_size: int = 32
    learning_rate: float = 0.005
    weight_decay: float = 0.0
    view_refresh_every: int = 10
    positive_augmentation: str = "PPA"
    negative_augmentation: str = "PBA"
    dtype: str = "float64"
    batch_views: bool = False
    patience: int = 0
    min_delta: float = 0.0
    # None means "unset": standalone use resolves to 0, while a parent
    # TPGrGADConfig fills it with a stream derived from its master seed.
    seed: Optional[int] = None


@dataclass
class TPGCLTrainingResult:
    """Per-epoch loss (the minimised MI estimate) recorded during training."""

    losses: List[float] = field(default_factory=list)
    early_stopped: bool = False

    @property
    def final_loss(self) -> Optional[float]:
        return self.losses[-1] if self.losses else None

    @property
    def epochs_run(self) -> int:
        return len(self.losses)


class TPGCL:
    """Topology Pattern-based Graph Contrastive Learning.

    Examples
    --------
    >>> from repro.datasets import make_example_graph
    >>> from repro.graph import Group
    >>> graph = make_example_graph()
    >>> groups = [graph.groups[0], Group.from_nodes(range(5))]
    >>> model = TPGCL(TPGCLConfig(epochs=2, batch_size=2))
    >>> embeddings = model.fit(graph, groups).embed_groups(graph, groups)
    >>> embeddings.shape
    (2, 64)
    """

    def __init__(self, config: Optional[TPGCLConfig] = None) -> None:
        self.config = config or TPGCLConfig()
        self.encoder: Optional[GroupEncoder] = None
        self.statistics_network: Optional[MINEStatisticsNetwork] = None
        self.training_result = TPGCLTrainingResult()
        self._rng = np.random.default_rng(resolve_seed(self.config.seed))

    # ------------------------------------------------------------------
    # Augmentation resolution
    # ------------------------------------------------------------------
    def _augmentations(self) -> Tuple[Augmentation, Augmentation]:
        from repro.augment import get_augmentation

        config = self.config
        positive = (
            PatternPreservingAugmentation()
            if config.positive_augmentation.upper() == "PPA"
            else get_augmentation(config.positive_augmentation)
        )
        negative = (
            PatternBreakingAugmentation()
            if config.negative_augmentation.upper() == "PBA"
            else get_augmentation(config.negative_augmentation)
        )
        return positive, negative

    # ------------------------------------------------------------------
    # View generation
    # ------------------------------------------------------------------
    def _group_subgraphs(self, graph: Graph, groups: Sequence[Group]) -> List[Graph]:
        return [graph.group_subgraph(group) for group in groups]

    def _generate_views(self, subgraphs: Sequence[Graph]) -> Tuple[List[Graph], List[Graph]]:
        positive_augmentation, negative_augmentation = self._augmentations()
        positive_views = [positive_augmentation(sub, self._rng) for sub in subgraphs]
        negative_views = [negative_augmentation(sub, self._rng) for sub in subgraphs]
        return positive_views, negative_views

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, graph: Graph, groups: Sequence[Group]) -> "TPGCL":
        """Train the encoder and Φ on the candidate groups of ``graph``."""
        groups = list(groups)
        if len(groups) < 2:
            raise ValueError("TPGCL needs at least two candidate groups")
        config = self.config
        tracer = get_tracer()

        with tracer.span("tpgcl.fit") as fit_span:
            tape_before = tape_node_count()
            parameter_rng = np.random.default_rng(resolve_seed(config.seed))
            with default_dtype(np.dtype(config.dtype)):
                self.encoder = GroupEncoder(
                    graph.n_features, config.hidden_dim, config.embedding_dim, rng=parameter_rng
                )
                self.statistics_network = MINEStatisticsNetwork(
                    config.embedding_dim, config.hidden_dim, rng=parameter_rng
                )
                optimizer = Adam(
                    self.encoder.parameters() + self.statistics_network.parameters(),
                    lr=config.learning_rate,
                    weight_decay=config.weight_decay,
                )

                subgraphs = self._group_subgraphs(graph, groups)
                with tracer.span("tpgcl.augment") as view_span:
                    positive_views, negative_views = self._generate_views(subgraphs)
                    view_span.add("n_views", 2 * len(subgraphs))

                self.training_result = TPGCLTrainingResult()
                stopper = EarlyStopping(config.patience, config.min_delta)
                indices = np.arange(len(groups))
                for epoch in range(config.epochs):
                    if epoch > 0 and config.view_refresh_every > 0 and epoch % config.view_refresh_every == 0:
                        with tracer.span("tpgcl.augment") as view_span:
                            positive_views, negative_views = self._generate_views(subgraphs)
                            view_span.add("n_views", 2 * len(subgraphs))

                    with tracer.span("tpgcl.epoch") as epoch_span:
                        self._rng.shuffle(indices)
                        batch_size = min(config.batch_size, len(groups))
                        epoch_losses = []
                        for start in range(0, len(indices), batch_size):
                            batch = indices[start : start + batch_size]
                            if len(batch) < 2:
                                continue
                            optimizer.zero_grad()
                            positive_batch = self.encoder.encode_batch(
                                [positive_views[i] for i in batch], batched=config.batch_views
                            )
                            negative_batch = self.encoder.encode_batch(
                                [negative_views[i] for i in batch], batched=config.batch_views
                            )
                            # Eqn. (8): minimise the estimated MI between view embeddings.
                            loss = mine_mutual_information(self.statistics_network, positive_batch, negative_batch)
                            loss.backward()
                            optimizer.step()
                            epoch_losses.append(loss.item())
                            fit_span.add("optimizer_steps")
                        if epoch_losses:
                            epoch_loss = float(np.mean(epoch_losses))
                            self.training_result.losses.append(epoch_loss)
                            if tracer.enabled:
                                epoch_span.set("loss", epoch_loss)
                            if stopper.should_stop(epoch_loss):
                                self.training_result.early_stopped = True
                                break
            if tracer.enabled:
                fit_span.add("tape_node_count", tape_node_count() - tape_before)
                fit_span.set("epochs_run", self.training_result.epochs_run)
                fit_span.set("early_stopped", self.training_result.early_stopped)
        return self

    # ------------------------------------------------------------------
    # Warm start / persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Encoder (and, when present, MINE network) parameters.

        Keys are prefixed ``encoder.`` / ``statistics_network.`` so both
        sub-models round-trip through one flat mapping (the ``.npz`` layout
        of the artifact store).
        """
        if self.encoder is None:
            raise RuntimeError("call fit() before exporting state")
        state = {f"encoder.{k}": v for k, v in self.encoder.state_dict().items()}
        if self.statistics_network is not None:
            state.update(
                {f"statistics_network.{k}": v for k, v in self.statistics_network.state_dict().items()}
            )
        return state

    def warm_start(self, n_features: int, state: dict) -> "TPGCL":
        """Rebuild the fitted encoder (and MINE net) from :meth:`state_dict`.

        After this call :meth:`embed_groups` works without any training —
        the warm-start path of ``TPGrGAD.detect_only``.
        """
        config = self.config
        rng = np.random.default_rng(resolve_seed(config.seed))
        with default_dtype(np.dtype(config.dtype)):
            self.encoder = GroupEncoder(
                n_features, config.hidden_dim, config.embedding_dim, rng=rng
            )
            self.encoder.load_state_dict(
                {k[len("encoder."):]: v for k, v in state.items() if k.startswith("encoder.")}
            )
            stats_state = {
                k[len("statistics_network."):]: v
                for k, v in state.items()
                if k.startswith("statistics_network.")
            }
            if stats_state:
                self.statistics_network = MINEStatisticsNetwork(
                    config.embedding_dim, config.hidden_dim, rng=rng
                )
                self.statistics_network.load_state_dict(stats_state)
        return self

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def embed_groups(self, graph: Graph, groups: Sequence[Group]) -> np.ndarray:
        """Embeddings of the (unaugmented) candidate groups, ``(m, d)`` array."""
        if self.encoder is None:
            raise RuntimeError("call fit() before embedding groups")
        subgraphs = self._group_subgraphs(graph, list(groups))
        with no_grad():
            return self.encoder.encode_batch(subgraphs, batched=self.config.batch_views).numpy()
