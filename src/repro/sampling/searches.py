"""Pattern searches used by candidate-group sampling (Alg. 1, lines 5-10).

The paper uses Bellman-Ford for path search, BFS for tree search and the
Birmelé et al. cycle listing algorithm.  On unweighted graphs Bellman-Ford
and BFS return identical shortest paths, so BFS is used for both with the
same asymptotic cost O(|V| + |E|); cycle search enumerates cycles through a
given node with a depth-bounded DFS, which matches the bounded listing the
paper relies on (financial cycles of interest are short).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.graph import Graph, Group


def path_search(graph: Graph, source: int, target: int, max_length: Optional[int] = None) -> Optional[Group]:
    """Shortest path between two anchors as a candidate group.

    Returns None when the anchors are disconnected (or further apart than
    ``max_length`` hops) or when the path is trivial (identical anchors or a
    single edge shared by both anchors is still returned as a 2-node group).
    """
    path = graph.shortest_path(int(source), int(target), cutoff=max_length)
    if path is None or len(path) < 2:
        return None
    return Group.from_path(path)


def tree_search(graph: Graph, root: int, other: int, depth: int = 2, max_nodes: int = 30) -> Optional[Group]:
    """Bounded-depth BFS tree rooted at ``root``, biased to reach ``other``.

    The tree collects the BFS neighbourhood of ``root`` up to ``depth`` hops
    (capped at ``max_nodes`` nodes).  If ``other`` lies inside the collected
    ball it is guaranteed to be included, which reproduces the paper's
    "hierarchical structures between anchor nodes v and µ".
    """
    parents = graph.bfs_tree(int(root), depth)
    if len(parents) < 2:
        return None

    # Keep closest nodes first so truncation preserves the tree property.
    ordering: List[int] = []
    frontier = [int(root)]
    seen = {int(root)}
    while frontier and len(ordering) < max_nodes:
        next_frontier = []
        for node in frontier:
            ordering.append(node)
            if len(ordering) >= max_nodes:
                break
            for child, parent in parents.items():
                if parent == node and child not in seen and child != parent:
                    seen.add(child)
                    next_frontier.append(child)
        frontier = next_frontier

    kept = set(ordering)
    if int(other) in parents:
        kept.add(int(other))
        # Walk other's ancestry so the tree stays connected.
        cursor = int(other)
        while cursor != parents[cursor]:
            cursor = parents[cursor]
            kept.add(cursor)

    edges = {(parents[n], n) for n in kept if parents[n] != n and parents[n] in kept}
    if len(kept) < 2:
        return None
    return Group(nodes=frozenset(kept), edges=frozenset(edges), label="tree")


def cycle_search(
    graph: Graph,
    node: int,
    max_cycle_length: int = 8,
    max_cycles: int = 5,
) -> List[Group]:
    """Cycles passing through ``node`` (depth-bounded DFS enumeration).

    Returns up to ``max_cycles`` distinct simple cycles of length at most
    ``max_cycle_length`` containing ``node``.
    """
    node = int(node)
    cycles: List[Group] = []
    found: Set[frozenset] = set()

    def dfs(current: int, path: List[int], visited: Set[int]) -> None:
        if len(cycles) >= max_cycles:
            return
        if len(path) > max_cycle_length:
            return
        for neighbor in graph.neighbors(current):
            if neighbor == node and len(path) >= 3:
                signature = frozenset(path)
                if signature not in found:
                    found.add(signature)
                    cycles.append(Group.from_cycle(list(path)))
                    if len(cycles) >= max_cycles:
                        return
            elif neighbor not in visited and neighbor > node:
                # Only expand through higher-numbered nodes so each cycle is
                # enumerated once (canonical smallest-node representation).
                visited.add(neighbor)
                path.append(neighbor)
                dfs(neighbor, path, visited)
                path.pop()
                visited.discard(neighbor)

    dfs(node, [node], {node})
    return cycles


def merge_groups(groups: List[Group]) -> List[Group]:
    """Drop exact duplicates (same node set) while preserving order."""
    seen: Set[Tuple[int, ...]] = set()
    unique: List[Group] = []
    for group in groups:
        key = group.node_tuple()
        if key in seen:
            continue
        seen.add(key)
        unique.append(group)
    return unique
