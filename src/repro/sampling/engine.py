"""Vectorized multi-source search engine behind Algorithm 1.

The seed implementation answered every anchor pair with its own Python
BFS/DFS (:mod:`repro.sampling.searches`).  The engine instead runs **one
batched multi-source BFS** from all anchors over the CSR adjacency
(:meth:`repro.graph.Graph.multi_source_bfs`) and answers every query from
the resulting distance/parent/discovery-order forest:

* :meth:`MultiSourceSearchEngine.path_group` reconstructs the shortest
  path ``u -> v`` by walking parent pointers — tie-breaking is identical
  to :meth:`Graph.shortest_path` because the batched BFS discovers nodes
  in the same (level, parent discovery index, node id) order.
* :meth:`MultiSourceSearchEngine.tree_group` reads the depth-``t`` BFS
  tree of the root straight from the same forest (``dist <= t`` is the
  depth-``t`` frontier union) and keeps the first ``max_nodes`` nodes in
  discovery order — exactly what the seed ``tree_search`` materialised
  with its per-call ``bfs_tree`` plus ordering walk.
* :meth:`MultiSourceSearchEngine.cycle_groups` runs the seed's canonical
  bounded DFS, but prunes every branch that provably cannot close a short
  cycle using the precomputed anchor distances: a node at distance ``d``
  from the anchor can only lie on a cycle of at least ``len(path) + d``
  nodes, so branches violating the length bound are skipped without
  changing which cycles are found or their enumeration order.

Node-set (and edge-set) parity with the seed searches is pinned by
``tests/test_sampler_parity.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graph import Graph, Group


class MultiSourceSearchEngine:
    """Answer path/tree/cycle queries for a fixed anchor set from one BFS.

    Parameters
    ----------
    graph:
        The graph to search.
    anchors:
        Anchor nodes; one BFS forest is grown per (distinct position in
        the) anchor list.  Duplicate anchors are harmless — they map to
        the first matching BFS row.
    max_depth:
        Hop bound for the batched BFS.  Must cover every query the engine
        will serve: at least ``max_path_length`` for paths, ``tree_depth``
        for trees and ``max_cycle_length`` for the cycle pruning bound.
        ``None`` explores exhaustively.
    """

    def __init__(self, graph: Graph, anchors: Sequence[int], max_depth: Optional[int] = None) -> None:
        self.graph = graph
        self.anchors = [int(a) for a in anchors]
        self.max_depth = max_depth
        self._row: Dict[int, int] = {}
        for index, anchor in enumerate(self.anchors):
            self._row.setdefault(anchor, index)
        self.bfs = graph.multi_source_bfs(self.anchors, depth=max_depth)
        # The base BFS tree of a root depends only on (root, depth,
        # max_nodes); anchor pairs share roots, so memoize it per root.
        self._tree_base: Dict[Tuple[int, int, int], Optional[Tuple[Set[int], Group]]] = {}

    def _row_of(self, node: int) -> int:
        """BFS row of an anchor, with a clear error for non-anchors."""
        row = self._row.get(node)
        if row is None:
            raise ValueError(f"node {node} is not one of this engine's anchors")
        return row

    def distances(self, source: int) -> np.ndarray:
        """Hop distances from one engine source to every node (-1 unreached).

        Read-only view into the BFS forest; the streaming subsystem uses it
        to pair provisional anchors with their nearest scored anchors.
        """
        return self.bfs.dist[self._row_of(int(source))]

    # ------------------------------------------------------------------
    # Path search
    # ------------------------------------------------------------------
    def path_group(self, source: int, target: int, max_length: Optional[int] = None) -> Optional[Group]:
        """Shortest-path candidate group, matching ``searches.path_search``."""
        source, target = int(source), int(target)
        if source == target:
            return None
        row = self._row_of(source)
        hops = int(self.bfs.dist[row, target])
        if hops < 0 or (max_length is not None and hops > max_length):
            return None
        return Group.from_path(self.bfs.path(row, target))

    # ------------------------------------------------------------------
    # Tree search
    # ------------------------------------------------------------------
    def _tree_edges(self, parent_row: np.ndarray, kept: Set[int]) -> Set[Tuple[int, int]]:
        """BFS-tree edges internal to ``kept``.

        ``kept`` is always closed under BFS parents here (a parent is
        discovered before its child, and the ancestry walk below adds whole
        chains), so every non-root member contributes its parent edge —
        matching the seed's ``parents[n] in kept`` filter.
        """
        return {(int(parent_row[n]), n) for n in kept if int(parent_row[n]) != n}

    def _tree_base_group(self, root: int, depth: int, max_nodes: int) -> Optional[Tuple[Set[int], Group]]:
        """The depth-bounded BFS tree of ``root``, truncated to ``max_nodes``.

        Returns ``(kept node set, base group)`` — the ``tree_search``
        result before the far anchor's ancestry is grafted in — or None
        when fewer than two nodes are reachable.
        """
        key = (root, depth, max_nodes)
        if key not in self._tree_base:
            row = self._row_of(root)
            dist_row = self.bfs.dist[row]
            within = (dist_row >= 0) & (dist_row <= depth)
            nodes = np.flatnonzero(within)
            if nodes.size < 2:
                self._tree_base[key] = None
            else:
                closest_first = nodes[np.argsort(self.bfs.order[row][nodes])]
                kept = {int(n) for n in closest_first[:max_nodes]}
                edges = self._tree_edges(self.bfs.parent[row], kept)
                group = Group(nodes=frozenset(kept), edges=frozenset(edges), label="tree")
                self._tree_base[key] = (kept, group)
        return self._tree_base[key]

    def tree_group(self, root: int, other: int, depth: int = 2, max_nodes: int = 30) -> Optional[Group]:
        """BFS-tree candidate group, matching ``searches.tree_search``."""
        root, other = int(root), int(other)
        base = self._tree_base_group(root, depth, max_nodes)
        if base is None:
            return None
        base_kept, base_group = base

        row = self._row_of(root)
        other_dist = int(self.bfs.dist[row, other])
        if not (0 <= other_dist <= depth) or other in base_kept:
            # ``other`` is unreachable (no graft) or already kept — and its
            # ancestors are then kept too, since kept is the discovery-order
            # prefix and parents precede children.  Either way: base tree.
            return base_group

        parent_row = self.bfs.parent[row]
        kept = set(base_kept)
        kept.add(other)
        cursor = other
        while int(parent_row[cursor]) != cursor:
            cursor = int(parent_row[cursor])
            kept.add(cursor)
        return Group(
            nodes=frozenset(kept),
            edges=frozenset(self._tree_edges(parent_row, kept)),
            label="tree",
        )

    # ------------------------------------------------------------------
    # Cycle search
    # ------------------------------------------------------------------
    def cycle_groups(self, node: int, max_cycle_length: int = 8, max_cycles: int = 5) -> List[Group]:
        """Cycle candidate groups, matching ``searches.cycle_search``.

        The DFS explores the same canonical (higher-numbered-nodes-only)
        search tree as the seed in the same neighbour order; the distance
        table merely prunes branches that cannot reach back to ``node``
        within the length bound, which keeps enumeration order intact.
        """
        node = int(node)
        dist_row = self.bfs.dist[self._row_of(node)]
        graph = self.graph
        cycles: List[Group] = []
        found: Set[frozenset] = set()

        def dfs(current: int, path: List[int], visited: Set[int]) -> None:
            if len(cycles) >= max_cycles:
                return
            if len(path) > max_cycle_length:
                return
            length = len(path)
            for neighbor in graph.neighbors(current):
                if neighbor == node and length >= 3:
                    signature = frozenset(path)
                    if signature not in found:
                        found.add(signature)
                        cycles.append(Group.from_cycle(list(path)))
                        if len(cycles) >= max_cycles:
                            return
                elif neighbor not in visited and neighbor > node:
                    # A cycle through the current path and this neighbour
                    # needs >= length + dist(anchor, neighbour) nodes.
                    hops_back = dist_row[neighbor]
                    if hops_back < 0 or length + hops_back > max_cycle_length:
                        continue
                    visited.add(neighbor)
                    path.append(neighbor)
                    dfs(neighbor, path, visited)
                    path.pop()
                    visited.discard(neighbor)

        dfs(node, [node], {node})
        return cycles
