"""Candidate group sampler — Algorithm 1 of the paper.

For every pair of anchor nodes a path and a tree search are run; for every
single anchor a cycle search is run.  The resulting groups (deduplicated by
node set, size-bounded) are the candidate groups handed to TPGCL.

Two execution strategies produce identical candidates (pinned by
``tests/test_sampler_parity.py``):

* ``SamplerConfig.vectorized = True`` (default) — all anchor pairs are
  answered from one batched multi-source BFS via
  :class:`repro.sampling.engine.MultiSourceSearchEngine`.
* ``SamplerConfig.vectorized = False`` — the seed per-pair Python searches
  of :mod:`repro.sampling.searches`, kept as the parity oracle and the
  benchmark baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph import Graph, Group
from repro.sampling.engine import MultiSourceSearchEngine
from repro.sampling.searches import cycle_search, merge_groups, path_search, tree_search


@dataclass
class SamplerConfig:
    """Candidate-group sampling hyperparameters.

    ``tree_depth`` is the ``t`` hyperparameter of Alg. 1; the size bounds
    keep candidate groups in the range where group-level anomalies live
    (tiny 1-node "groups" and giant hairballs are both uninformative).
    ``vectorized`` selects the batched multi-source search engine over the
    per-pair reference searches; both return identical candidates.
    """

    tree_depth: int = 2
    max_path_length: int = 12
    max_group_size: int = 40
    min_group_size: int = 2
    max_cycle_length: int = 8
    max_cycles_per_anchor: int = 3
    max_anchor_pairs: int = 400
    max_candidates: int = 300
    seed: int = 0
    vectorized: bool = True


class CandidateGroupSampler:
    """Sample candidate anomaly groups from anchor nodes (Algorithm 1).

    The sampler owns one random stream, created lazily from
    ``config.seed`` and **advanced across calls**: the first
    :meth:`sample` call reproduces the historical single-call behaviour
    exactly, while repeated calls (e.g. over a batch of graphs) draw fresh
    pair/candidate subsamples instead of silently reusing the first
    call's indices.  Callers that need full control can thread an explicit
    ``rng`` through instead.
    """

    def __init__(self, config: Optional[SamplerConfig] = None) -> None:
        self.config = config or SamplerConfig()
        self._rng: Optional[np.random.Generator] = None

    @property
    def rng(self) -> np.random.Generator:
        """The sampler's persistent random stream (lazily seeded)."""
        if self._rng is None:
            self._rng = np.random.default_rng(self.config.seed)
        return self._rng

    def reset_rng(self, seed: Optional[int] = None) -> None:
        """Rewind the persistent stream (to ``seed`` or ``config.seed``)."""
        self._rng = np.random.default_rng(self.config.seed if seed is None else seed)

    # ------------------------------------------------------------------
    def sample(
        self,
        graph: Graph,
        anchor_nodes: Sequence[int],
        rng: Optional[np.random.Generator] = None,
    ) -> List[Group]:
        """Return the candidate group set ``CG`` for the given anchors.

        Anchor pairs are enumerated in score order (the caller passes anchors
        sorted by decreasing anomaly score); if the quadratic pair count
        exceeds ``max_anchor_pairs`` a uniformly random subset of pairs is
        used instead, keeping the stage near-linear as argued in the paper's
        complexity analysis.  ``rng`` overrides the sampler's persistent
        stream for this call only.
        """
        config = self.config
        anchors = [int(a) for a in anchor_nodes]
        if not anchors:
            return []
        rng = self.rng if rng is None else rng

        pairs = [(u, v) for i, u in enumerate(anchors) for v in anchors[i + 1:]]
        if len(pairs) > config.max_anchor_pairs:
            chosen = rng.choice(len(pairs), size=config.max_anchor_pairs, replace=False)
            pairs = [pairs[i] for i in chosen]

        if config.vectorized:
            candidates = self._collect_vectorized(graph, anchors, pairs)
        else:
            candidates = self._collect_per_pair(graph, anchors, pairs)

        candidates = [
            group
            for group in candidates
            if config.min_group_size <= len(group) <= config.max_group_size
        ]
        candidates = merge_groups(candidates)

        if len(candidates) > config.max_candidates:
            chosen = rng.choice(len(candidates), size=config.max_candidates, replace=False)
            candidates = [candidates[i] for i in sorted(chosen)]
        return candidates

    # ------------------------------------------------------------------
    def _collect_vectorized(
        self, graph: Graph, anchors: List[int], pairs: List[Tuple[int, int]]
    ) -> List[Group]:
        """One batched BFS from all anchors answers every search."""
        config = self.config
        if config.max_path_length is None:
            depth: Optional[int] = None
        else:
            depth = max(config.max_path_length, config.tree_depth, config.max_cycle_length)
        engine = MultiSourceSearchEngine(graph, anchors, max_depth=depth)

        candidates: List[Group] = []
        for u, v in pairs:
            path_group = engine.path_group(u, v, max_length=config.max_path_length)
            if path_group is not None:
                candidates.append(path_group)
            tree_group = engine.tree_group(u, v, depth=config.tree_depth, max_nodes=config.max_group_size)
            if tree_group is not None:
                candidates.append(tree_group)
        for anchor in anchors:
            candidates.extend(
                engine.cycle_groups(
                    anchor,
                    max_cycle_length=config.max_cycle_length,
                    max_cycles=config.max_cycles_per_anchor,
                )
            )
        return candidates

    def _collect_per_pair(
        self, graph: Graph, anchors: List[int], pairs: List[Tuple[int, int]]
    ) -> List[Group]:
        """The seed per-pair searches (parity oracle / benchmark baseline)."""
        config = self.config
        candidates: List[Group] = []
        for u, v in pairs:
            path_group = path_search(graph, u, v, max_length=config.max_path_length)
            if path_group is not None:
                candidates.append(path_group)
            tree_group = tree_search(graph, u, v, depth=config.tree_depth, max_nodes=config.max_group_size)
            if tree_group is not None:
                candidates.append(tree_group)
        for anchor in anchors:
            candidates.extend(
                cycle_search(
                    graph,
                    anchor,
                    max_cycle_length=config.max_cycle_length,
                    max_cycles=config.max_cycles_per_anchor,
                )
            )
        return candidates

    # ------------------------------------------------------------------
    def sample_with_scores(
        self,
        graph: Graph,
        anchor_nodes: Sequence[int],
        node_scores: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> List[Group]:
        """Like :meth:`sample` but attaches the mean anchor score of each group.

        Useful for baselines that score groups by aggregating node scores.
        """
        node_scores = np.asarray(node_scores, dtype=np.float64)
        groups = self.sample(graph, anchor_nodes, rng=rng)
        return [group.with_score(float(node_scores[list(group.nodes)].mean())) for group in groups]
