"""Candidate group sampler — Algorithm 1 of the paper.

For every pair of anchor nodes a path and a tree search are run; for every
single anchor a cycle search is run.  The resulting groups (deduplicated by
node set, size-bounded) are the candidate groups handed to TPGCL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.graph import Graph, Group
from repro.sampling.searches import cycle_search, merge_groups, path_search, tree_search


@dataclass
class SamplerConfig:
    """Candidate-group sampling hyperparameters.

    ``tree_depth`` is the ``t`` hyperparameter of Alg. 1; the size bounds
    keep candidate groups in the range where group-level anomalies live
    (tiny 1-node "groups" and giant hairballs are both uninformative).
    """

    tree_depth: int = 2
    max_path_length: int = 12
    max_group_size: int = 40
    min_group_size: int = 2
    max_cycle_length: int = 8
    max_cycles_per_anchor: int = 3
    max_anchor_pairs: int = 400
    max_candidates: int = 300
    seed: int = 0


class CandidateGroupSampler:
    """Sample candidate anomaly groups from anchor nodes (Algorithm 1)."""

    def __init__(self, config: Optional[SamplerConfig] = None) -> None:
        self.config = config or SamplerConfig()

    def sample(self, graph: Graph, anchor_nodes: Sequence[int]) -> List[Group]:
        """Return the candidate group set ``CG`` for the given anchors.

        Anchor pairs are enumerated in score order (the caller passes anchors
        sorted by decreasing anomaly score); if the quadratic pair count
        exceeds ``max_anchor_pairs`` a uniformly random subset of pairs is
        used instead, keeping the stage near-linear as argued in the paper's
        complexity analysis.
        """
        config = self.config
        anchors = [int(a) for a in anchor_nodes]
        if not anchors:
            return []
        rng = np.random.default_rng(config.seed)

        pairs = [(u, v) for i, u in enumerate(anchors) for v in anchors[i + 1:]]
        if len(pairs) > config.max_anchor_pairs:
            chosen = rng.choice(len(pairs), size=config.max_anchor_pairs, replace=False)
            pairs = [pairs[i] for i in chosen]

        candidates: List[Group] = []
        for u, v in pairs:
            path_group = path_search(graph, u, v, max_length=config.max_path_length)
            if path_group is not None:
                candidates.append(path_group)
            tree_group = tree_search(graph, u, v, depth=config.tree_depth, max_nodes=config.max_group_size)
            if tree_group is not None:
                candidates.append(tree_group)

        for anchor in anchors:
            candidates.extend(
                cycle_search(
                    graph,
                    anchor,
                    max_cycle_length=config.max_cycle_length,
                    max_cycles=config.max_cycles_per_anchor,
                )
            )

        candidates = [
            group
            for group in candidates
            if config.min_group_size <= len(group) <= config.max_group_size
        ]
        candidates = merge_groups(candidates)

        if len(candidates) > config.max_candidates:
            chosen = rng.choice(len(candidates), size=config.max_candidates, replace=False)
            candidates = [candidates[i] for i in sorted(chosen)]
        return candidates

    def sample_with_scores(self, graph: Graph, anchor_nodes: Sequence[int], node_scores: np.ndarray) -> List[Group]:
        """Like :meth:`sample` but attaches the mean anchor score of each group.

        Useful for baselines that score groups by aggregating node scores.
        """
        node_scores = np.asarray(node_scores, dtype=np.float64)
        groups = self.sample(graph, anchor_nodes)
        return [group.with_score(float(node_scores[list(group.nodes)].mean())) for group in groups]
