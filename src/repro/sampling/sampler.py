"""Candidate group sampler — Algorithm 1 of the paper.

For every pair of anchor nodes a path and a tree search are run; for every
single anchor a cycle search is run.  The resulting groups (deduplicated by
node set, size-bounded) are the candidate groups handed to TPGCL.

Two execution strategies produce identical candidates (pinned by
``tests/test_sampler_parity.py``):

* ``SamplerConfig.vectorized = True`` (default) — all anchor pairs are
  answered from one batched multi-source BFS via
  :class:`repro.sampling.engine.MultiSourceSearchEngine`.
* ``SamplerConfig.vectorized = False`` — the seed per-pair Python searches
  of :mod:`repro.sampling.searches`, kept as the parity oracle and the
  benchmark baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph import Graph, Group
from repro.sampling.engine import MultiSourceSearchEngine
from repro.sampling.searches import cycle_search, merge_groups, path_search, tree_search
from repro.seeding import resolve_seed


@dataclass
class SamplerConfig:
    """Candidate-group sampling hyperparameters.

    ``tree_depth`` is the ``t`` hyperparameter of Alg. 1; the size bounds
    keep candidate groups in the range where group-level anomalies live
    (tiny 1-node "groups" and giant hairballs are both uninformative).
    ``vectorized`` selects the batched multi-source search engine over the
    per-pair reference searches; both return identical candidates.
    """

    tree_depth: int = 2
    max_path_length: int = 12
    max_group_size: int = 40
    min_group_size: int = 2
    max_cycle_length: int = 8
    max_cycles_per_anchor: int = 3
    max_anchor_pairs: int = 400
    max_candidates: int = 300
    # None means "unset": standalone use resolves to 0, while a parent
    # TPGrGADConfig fills it with a stream derived from its master seed.
    seed: Optional[int] = None
    vectorized: bool = True

    @property
    def search_depth(self) -> Optional[int]:
        """Hop radius a single search can explore from its anchor.

        This is the engine's BFS depth bound and, equally, the *dirty-ball*
        radius of the streaming subsystem: a change further than this many
        hops from an anchor cannot alter any of that anchor's searches.
        ``None`` (unbounded path search) means searches are only limited by
        connectivity.
        """
        if self.max_path_length is None:
            return None
        return max(self.max_path_length, self.tree_depth, self.max_cycle_length)


@dataclass
class SampleCollection:
    """Raw per-pair / per-anchor search results, before filter + merge + cap.

    ``pair_groups`` maps each anchor pair ``(u, v)`` to its
    ``(path_group, tree_group)`` results (either may be None);
    ``anchor_cycles`` maps each anchor to its cycle groups.  The incremental
    detector keeps one of these per refit and patches only the dirty
    entries; :meth:`ordered_candidates` linearises the collection in exactly
    the order the one-shot sampler emits candidates, so
    ``finalize(collection.ordered_candidates(...))`` reproduces
    :meth:`CandidateGroupSampler.sample` bit for bit.
    """

    pair_groups: Dict[Tuple[int, int], Tuple[Optional[Group], Optional[Group]]] = field(
        default_factory=dict
    )
    anchor_cycles: Dict[int, List[Group]] = field(default_factory=dict)

    def ordered_candidates(
        self, pairs: Sequence[Tuple[int, int]], anchors: Sequence[int]
    ) -> List[Group]:
        """Candidates in canonical order: per-pair path/tree, then cycles."""
        ordered: List[Group] = []
        for pair in pairs:
            path_group, tree_group = self.pair_groups[pair]
            if path_group is not None:
                ordered.append(path_group)
            if tree_group is not None:
                ordered.append(tree_group)
        for anchor in anchors:
            ordered.extend(self.anchor_cycles[anchor])
        return ordered


class CandidateGroupSampler:
    """Sample candidate anomaly groups from anchor nodes (Algorithm 1).

    The sampler owns one random stream, created lazily from
    ``config.seed`` and **advanced across calls**: the first
    :meth:`sample` call reproduces the historical single-call behaviour
    exactly, while repeated calls (e.g. over a batch of graphs) draw fresh
    pair/candidate subsamples instead of silently reusing the first
    call's indices.  Callers that need full control can thread an explicit
    ``rng`` through instead.
    """

    def __init__(self, config: Optional[SamplerConfig] = None) -> None:
        self.config = config or SamplerConfig()
        self._rng: Optional[np.random.Generator] = None

    @property
    def rng(self) -> np.random.Generator:
        """The sampler's persistent random stream (lazily seeded)."""
        if self._rng is None:
            self._rng = np.random.default_rng(resolve_seed(self.config.seed))
        return self._rng

    def reset_rng(self, seed: Optional[int] = None) -> None:
        """Rewind the persistent stream (to ``seed`` or ``config.seed``)."""
        self._rng = np.random.default_rng(
            resolve_seed(self.config.seed) if seed is None else seed
        )

    # ------------------------------------------------------------------
    def sample(
        self,
        graph: Graph,
        anchor_nodes: Sequence[int],
        rng: Optional[np.random.Generator] = None,
    ) -> List[Group]:
        """Return the candidate group set ``CG`` for the given anchors.

        Anchor pairs are enumerated in score order (the caller passes anchors
        sorted by decreasing anomaly score); if the quadratic pair count
        exceeds ``max_anchor_pairs`` a uniformly random subset of pairs is
        used instead, keeping the stage near-linear as argued in the paper's
        complexity analysis.  ``rng`` overrides the sampler's persistent
        stream for this call only.
        """
        anchors = [int(a) for a in anchor_nodes]
        if not anchors:
            return []
        rng = self.rng if rng is None else rng

        pairs = self.propose_pairs(anchors, rng)
        collection = self.collect(graph, anchors, pairs)
        return self.finalize(collection.ordered_candidates(pairs, anchors), rng)

    # ------------------------------------------------------------------
    # Structured stages (sample == propose_pairs -> collect -> finalize;
    # the streaming subsystem calls them individually so it can reuse the
    # unchanged parts of a previous collection).
    # ------------------------------------------------------------------
    def propose_pairs(
        self, anchors: Sequence[int], rng: Optional[np.random.Generator] = None
    ) -> List[Tuple[int, int]]:
        """Enumerate (and, over budget, subsample) the anchor pairs to search."""
        config = self.config
        rng = self.rng if rng is None else rng
        anchors = [int(a) for a in anchors]
        pairs = [(u, v) for i, u in enumerate(anchors) for v in anchors[i + 1:]]
        if len(pairs) > config.max_anchor_pairs:
            chosen = rng.choice(len(pairs), size=config.max_anchor_pairs, replace=False)
            pairs = [pairs[i] for i in chosen]
        return pairs

    def collect(
        self, graph: Graph, anchors: Sequence[int], pairs: Sequence[Tuple[int, int]]
    ) -> SampleCollection:
        """Run every pair / cycle search, keeping the per-query structure."""
        if self.config.vectorized:
            return self._collect_vectorized(graph, list(anchors), list(pairs))
        return self._collect_per_pair(graph, list(anchors), list(pairs))

    def finalize(
        self, candidates: Sequence[Group], rng: Optional[np.random.Generator] = None
    ) -> List[Group]:
        """Size-filter, dedupe and cap an ordered raw candidate list."""
        config = self.config
        rng = self.rng if rng is None else rng
        kept = [
            group
            for group in candidates
            if config.min_group_size <= len(group) <= config.max_group_size
        ]
        kept = merge_groups(kept)
        if len(kept) > config.max_candidates:
            chosen = rng.choice(len(kept), size=config.max_candidates, replace=False)
            kept = [kept[i] for i in sorted(chosen)]
        return kept

    # ------------------------------------------------------------------
    def _collect_vectorized(
        self, graph: Graph, anchors: List[int], pairs: List[Tuple[int, int]]
    ) -> SampleCollection:
        """One batched BFS from all anchors answers every search."""
        config = self.config
        engine = MultiSourceSearchEngine(graph, anchors, max_depth=config.search_depth)

        collection = SampleCollection()
        for u, v in pairs:
            path_group = engine.path_group(u, v, max_length=config.max_path_length)
            tree_group = engine.tree_group(u, v, depth=config.tree_depth, max_nodes=config.max_group_size)
            collection.pair_groups[(u, v)] = (path_group, tree_group)
        for anchor in anchors:
            collection.anchor_cycles[anchor] = engine.cycle_groups(
                anchor,
                max_cycle_length=config.max_cycle_length,
                max_cycles=config.max_cycles_per_anchor,
            )
        return collection

    def _collect_per_pair(
        self, graph: Graph, anchors: List[int], pairs: List[Tuple[int, int]]
    ) -> SampleCollection:
        """The seed per-pair searches (parity oracle / benchmark baseline)."""
        config = self.config
        collection = SampleCollection()
        for u, v in pairs:
            path_group = path_search(graph, u, v, max_length=config.max_path_length)
            tree_group = tree_search(graph, u, v, depth=config.tree_depth, max_nodes=config.max_group_size)
            collection.pair_groups[(u, v)] = (path_group, tree_group)
        for anchor in anchors:
            collection.anchor_cycles[anchor] = cycle_search(
                graph,
                anchor,
                max_cycle_length=config.max_cycle_length,
                max_cycles=config.max_cycles_per_anchor,
            )
        return collection

    # ------------------------------------------------------------------
    def sample_with_scores(
        self,
        graph: Graph,
        anchor_nodes: Sequence[int],
        node_scores: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> List[Group]:
        """Like :meth:`sample` but attaches the mean anchor score of each group.

        Useful for baselines that score groups by aggregating node scores.
        """
        node_scores = np.asarray(node_scores, dtype=np.float64)
        groups = self.sample(graph, anchor_nodes, rng=rng)
        return [group.with_score(float(node_scores[list(group.nodes)].mean())) for group in groups]
