"""Candidate group sampling (Algorithm 1 of the paper).

Starting from the anchor nodes produced by MH-GAE, three pattern searches
are run for every (ordered) pair of anchors:

* **path search** — shortest path between the two anchors,
* **tree search** — a bounded-depth BFS tree rooted between them,
* **cycle search** — cycles through each anchor node.

The union of the discovered node sets forms the candidate groups fed into
TPGCL.  Overlapping / repeated groups are kept intentionally (the paper
notes they act as natural data augmentation), but exact duplicates are
deduplicated to bound the contrastive batch size.

By default all searches are answered by the vectorized
:class:`MultiSourceSearchEngine` (one batched BFS from every anchor);
the per-pair reference searches remain available as the parity oracle.
"""

from repro.sampling.searches import path_search, tree_search, cycle_search
from repro.sampling.engine import MultiSourceSearchEngine
from repro.sampling.sampler import CandidateGroupSampler, SampleCollection, SamplerConfig

__all__ = [
    "path_search",
    "tree_search",
    "cycle_search",
    "MultiSourceSearchEngine",
    "CandidateGroupSampler",
    "SampleCollection",
    "SamplerConfig",
]
