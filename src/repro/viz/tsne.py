"""A compact exact t-SNE implementation (van der Maaten & Hinton, 2008).

Used by the Figure 7 experiment to project TPGCL group embeddings to 2-D.
The implementation is the classic O(n²) exact variant, which is more than
fast enough for the few hundred candidate groups produced per dataset.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist


def _binary_search_perplexity(distances: np.ndarray, perplexity: float, tol: float = 1e-4, max_iter: int = 50) -> np.ndarray:
    """Row-wise conditional probabilities with the requested perplexity."""
    n = distances.shape[0]
    target_entropy = np.log(perplexity)
    probabilities = np.zeros_like(distances)
    for i in range(n):
        beta_low, beta_high = -np.inf, np.inf
        beta = 1.0
        row = distances[i].copy()
        row[i] = np.inf
        for _ in range(max_iter):
            exponent = np.exp(-row * beta)
            exponent[i] = 0.0
            total = exponent.sum()
            if total <= 0:
                p_row = np.zeros_like(row)
                entropy = 0.0
            else:
                p_row = exponent / total
                nonzero = p_row > 0
                entropy = -np.sum(p_row[nonzero] * np.log(p_row[nonzero]))
            difference = entropy - target_entropy
            if abs(difference) < tol:
                break
            if difference > 0:
                beta_low = beta
                beta = beta * 2.0 if beta_high == np.inf else (beta + beta_high) / 2.0
            else:
                beta_high = beta
                beta = beta / 2.0 if beta_low == -np.inf else (beta + beta_low) / 2.0
        probabilities[i] = p_row
    return probabilities


def tsne(
    X: np.ndarray,
    n_components: int = 2,
    perplexity: float = 15.0,
    n_iterations: int = 300,
    learning_rate: float = 100.0,
    seed: int = 0,
) -> np.ndarray:
    """Project ``X`` to ``n_components`` dimensions with exact t-SNE.

    Parameters
    ----------
    X:
        ``(n, d)`` data matrix.
    perplexity:
        Effective number of neighbours; clipped to ``(n - 1) / 3``.
    n_iterations:
        Gradient-descent iterations (with momentum and early exaggeration).
    """
    X = np.asarray(X, dtype=np.float64)
    n = X.shape[0]
    if n < 3:
        raise ValueError("t-SNE needs at least three samples")
    rng = np.random.default_rng(seed)
    perplexity = min(perplexity, max(2.0, (n - 1) / 3.0))

    squared_distances = cdist(X, X, metric="sqeuclidean")
    conditional = _binary_search_perplexity(squared_distances, perplexity)
    joint = (conditional + conditional.T) / (2.0 * n)
    joint = np.maximum(joint, 1e-12)

    embedding = rng.normal(scale=1e-2, size=(n, n_components))
    velocity = np.zeros_like(embedding)
    exaggeration = 4.0
    momentum = 0.5

    for iteration in range(n_iterations):
        if iteration == 50:
            exaggeration = 1.0
        if iteration == 100:
            momentum = 0.8
        low_dim_sq = cdist(embedding, embedding, metric="sqeuclidean")
        student = 1.0 / (1.0 + low_dim_sq)
        np.fill_diagonal(student, 0.0)
        q = np.maximum(student / student.sum(), 1e-12)

        difference = (exaggeration * joint - q) * student
        gradient = 4.0 * (np.diag(difference.sum(axis=1)) - difference) @ embedding

        velocity = momentum * velocity - learning_rate * gradient
        embedding = embedding + velocity
        embedding = embedding - embedding.mean(axis=0)
    return embedding
