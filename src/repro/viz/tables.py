"""ASCII rendering of tables, heatmaps and bar charts for the experiment CLI."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of rows as a fixed-width ASCII table."""
    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(format_row([str(h) for h in headers]))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in rendered)
    return "\n".join(lines)


def format_heatmap(
    matrix: np.ndarray,
    row_labels: Sequence[str],
    column_labels: Sequence[str],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a small matrix (e.g. the Fig. 6 augmentation grid) as text."""
    matrix = np.asarray(matrix, dtype=np.float64)
    rows = [[label] + [float(v) for v in matrix[index]] for index, label in enumerate(row_labels)]
    return format_table([""] + list(column_labels), rows, title=title, float_format=float_format)


def format_bar_chart(
    values: Mapping[str, float],
    title: Optional[str] = None,
    width: int = 40,
) -> str:
    """Horizontal ASCII bar chart (used for the Fig. 5 group-size comparison)."""
    if not values:
        return title or ""
    maximum = max(values.values()) or 1.0
    label_width = max(len(label) for label in values)
    lines: List[str] = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(1, int(round(width * value / maximum))) if value > 0 else ""
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.2f}")
    return "\n".join(lines)


def dict_rows(records: Sequence[Dict[str, object]], columns: Sequence[str]) -> List[List[object]]:
    """Project a list of dictionaries onto a fixed column order."""
    return [[record.get(column, "") for column in columns] for record in records]
