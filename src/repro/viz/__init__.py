"""Visualisation helpers: t-SNE embeddings and ASCII tables/heatmaps.

The experiment harness is terminal-first: figures are emitted as data
series plus ASCII renderings so they can be inspected without matplotlib
(which is not available in the offline environment).
"""

from repro.viz.tsne import tsne
from repro.viz.tables import format_table, format_heatmap, format_bar_chart

__all__ = ["tsne", "format_table", "format_heatmap", "format_bar_chart"]
