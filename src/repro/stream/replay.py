"""Event-stream replay: micro-batching queue, driver and counters.

:class:`ReplayDriver` feeds an event stream (any iterable of
:class:`GraphDelta`) through an :class:`IncrementalTPGrGAD`.  Events pass
through a :class:`MicroBatchQueue` — a bounded queue that coalesces
consecutive deltas into one *tick* — so a bursty producer does not force
one detector pass per edge.  Per tick the driver records latency, dirty
statistics and reuse counters; :meth:`ReplayDriver.run` returns a
:class:`ReplaySummary` with throughput (events/sec), p50/p95 tick
latency, refit/incremental split and (when the stream declares a burst
group) the detection lag in ticks.

``python -m repro.stream`` is the CLI front end; the pinned performance
numbers live in ``benchmarks/test_stream_replay.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.config import TPGrGADConfig
from repro.core.result import GroupDetectionResult
from repro.graph import Graph, Group
from repro.stream.delta import GraphDelta
from repro.stream.incremental import IncrementalTPGrGAD, StreamConfig, TickReport


class MicroBatchQueue:
    """Bounded queue that coalesces pushed deltas into tick-sized batches.

    ``max_events_per_tick`` is the coalescing width: :meth:`pop_tick`
    merges up to that many queued deltas into one :class:`GraphDelta`.
    ``capacity`` bounds the number of *queued* events; a push beyond it
    signals backpressure by returning False (the replay driver responds
    by draining a tick first — a real ingestion loop would block).
    """

    def __init__(self, capacity: int = 1024, max_events_per_tick: int = 32) -> None:
        if capacity < 1 or max_events_per_tick < 1:
            raise ValueError("capacity and max_events_per_tick must be positive")
        self.capacity = capacity
        self.max_events_per_tick = max_events_per_tick
        self._queue: List[GraphDelta] = []

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    def push(self, delta: GraphDelta) -> bool:
        """Enqueue one event; False signals backpressure (queue full)."""
        if self.full:
            return False
        self._queue.append(delta)
        return True

    def pop_tick(self) -> Optional[GraphDelta]:
        """Merge and return the next tick's worth of events (None if idle)."""
        if not self._queue:
            return None
        batch = self._queue[: self.max_events_per_tick]
        del self._queue[: self.max_events_per_tick]
        return GraphDelta.merge(batch)


@dataclass
class ReplaySummary:
    """Counters and latencies of one replay run.

    Latency statistics are reported **per tick mode**: refit ticks run the
    full training pipeline and sit orders of magnitude above incremental
    ticks, so mixing both into one percentile makes neither number
    meaningful (a single refit in six ticks drags p95 from milliseconds
    to seconds).  Throughput is measured over *processing* time — the
    seconds actually spent inside tick handling plus the flush — never
    over ambient wall clock that includes producing the events.
    """

    name: str
    n_events: int
    n_ticks: int
    total_seconds: float
    tick_seconds: List[float]
    n_refits: int
    n_incremental: int
    refit_seconds: float
    incremental_seconds: float
    pair_hits: int
    pair_misses: int
    embed_hits: int
    embed_misses: int
    detection_tick: Optional[int] = None
    burst_tick: Optional[int] = None
    final_result: Optional[GroupDetectionResult] = None
    ticks: List[TickReport] = field(default_factory=list)
    tick_modes: List[str] = field(default_factory=list)
    tick_event_counts: List[int] = field(default_factory=list)
    finalize_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Throughput
    # ------------------------------------------------------------------
    @property
    def processing_seconds(self) -> float:
        """Seconds spent handling events: all ticks plus the flush refit."""
        return float(sum(self.tick_seconds)) + self.finalize_seconds

    @property
    def events_per_second(self) -> float:
        """End-to-end throughput over processing time (refits included)."""
        seconds = self.processing_seconds
        return self.n_events / seconds if seconds > 0 else float("inf")

    @property
    def incremental_events_per_second(self) -> float:
        """Steady-state throughput: events absorbed by incremental ticks
        divided by incremental processing time (0.0 when no incremental
        tick ran)."""
        if self.incremental_seconds <= 0:
            return 0.0
        events = sum(
            count
            for count, mode in zip(self.tick_event_counts, self.tick_modes)
            if mode == "incremental"
        )
        return events / self.incremental_seconds

    # ------------------------------------------------------------------
    # Per-mode latency splits
    # ------------------------------------------------------------------
    def _mode_seconds(self, mode: str) -> List[float]:
        return [s for s, m in zip(self.tick_seconds, self.tick_modes) if m == mode]

    @property
    def incremental_tick_seconds(self) -> List[float]:
        return self._mode_seconds("incremental")

    @property
    def refit_tick_seconds(self) -> List[float]:
        return self._mode_seconds("refit")

    @staticmethod
    def _percentile(values: List[float], q: float) -> float:
        # Shared with ServerMetrics so replay and serve report identical
        # percentile math (guarded by tests/test_obs.py).
        from repro.obs.stats import percentile

        return percentile(values, q)

    @property
    def p50_latency(self) -> float:
        """All-ticks p50 (kept for continuity; prefer the per-mode splits)."""
        return self._percentile(self.tick_seconds, 50)

    @property
    def p95_latency(self) -> float:
        """All-ticks p95 (kept for continuity; prefer the per-mode splits)."""
        return self._percentile(self.tick_seconds, 95)

    @property
    def p50_incremental_latency(self) -> float:
        return self._percentile(self.incremental_tick_seconds, 50)

    @property
    def p95_incremental_latency(self) -> float:
        return self._percentile(self.incremental_tick_seconds, 95)

    @property
    def p50_refit_latency(self) -> float:
        return self._percentile(self.refit_tick_seconds, 50)

    @property
    def p95_refit_latency(self) -> float:
        return self._percentile(self.refit_tick_seconds, 95)

    @property
    def detection_lag(self) -> Optional[int]:
        """Ticks between the burst and its first detection (None: not seen)."""
        if self.detection_tick is None or self.burst_tick is None:
            return None
        return self.detection_tick - self.burst_tick

    def to_json_dict(self) -> Dict:
        """JSON-serialisable summary (the ``BENCH_stream.json`` schema)."""
        from repro.persist import to_native

        return to_native(
            {
                "name": self.name,
                "n_events": self.n_events,
                "n_ticks": self.n_ticks,
                "total_seconds": round(self.total_seconds, 4),
                "processing_seconds": round(self.processing_seconds, 4),
                "finalize_seconds": round(self.finalize_seconds, 4),
                "events_per_second": round(self.events_per_second, 2),
                "incremental_events_per_second": round(self.incremental_events_per_second, 2),
                "p50_tick_latency_seconds": round(self.p50_latency, 4),
                "p95_tick_latency_seconds": round(self.p95_latency, 4),
                "p50_incremental_tick_latency_seconds": round(self.p50_incremental_latency, 4),
                "p95_incremental_tick_latency_seconds": round(self.p95_incremental_latency, 4),
                "p50_refit_tick_latency_seconds": round(self.p50_refit_latency, 4),
                "p95_refit_tick_latency_seconds": round(self.p95_refit_latency, 4),
                "n_refits": self.n_refits,
                "n_incremental_ticks": self.n_incremental,
                "refit_seconds": round(self.refit_seconds, 4),
                "incremental_seconds": round(self.incremental_seconds, 4),
                "pair_cache_hits": self.pair_hits,
                "pair_cache_misses": self.pair_misses,
                "embedding_cache_hits": self.embed_hits,
                "embedding_cache_misses": self.embed_misses,
                "burst_tick": self.burst_tick,
                "detection_tick": self.detection_tick,
                "detection_lag_ticks": self.detection_lag,
            }
        )

    def render(self) -> str:
        """Human-readable one-screen summary."""
        lines = [
            f"replay '{self.name}': {self.n_events} events in {self.n_ticks} ticks "
            f"({self.processing_seconds:.2f}s processing, {self.events_per_second:.1f} events/s "
            f"overall, {self.incremental_events_per_second:.1f} events/s incremental)",
            f"  incremental tick latency: p50 {self.p50_incremental_latency * 1e3:.1f}ms  "
            f"p95 {self.p95_incremental_latency * 1e3:.1f}ms",
            f"  refit tick latency:       p50 {self.p50_refit_latency * 1e3:.1f}ms  "
            f"p95 {self.p95_refit_latency * 1e3:.1f}ms",
            f"  ticks: {self.n_incremental} incremental ({self.incremental_seconds:.2f}s) "
            f"+ {self.n_refits} refits ({self.refit_seconds:.2f}s) "
            f"+ flush ({self.finalize_seconds:.2f}s)",
            f"  pair cache: {self.pair_hits} hits / {self.pair_misses} misses; "
            f"embedding cache: {self.embed_hits} hits / {self.embed_misses} misses",
        ]
        if self.burst_tick is not None:
            if self.detection_tick is not None:
                lines.append(
                    f"  burst at tick {self.burst_tick}: detected at tick "
                    f"{self.detection_tick} (lag {self.detection_lag})"
                )
            else:
                lines.append(f"  burst at tick {self.burst_tick}: NOT detected")
        return "\n".join(lines)


def group_detected(result: GroupDetectionResult, target: Group, min_jaccard: float = 0.3) -> bool:
    """Whether any flagged group overlaps ``target`` by at least ``min_jaccard``."""
    return any(target.jaccard(group) >= min_jaccard for group in result.anomalous_groups)


class ReplayDriver:
    """Drive an incremental detector over an event stream."""

    def __init__(
        self,
        base_graph: Graph,
        config: Optional[TPGrGADConfig] = None,
        stream_config: Optional[StreamConfig] = None,
        queue: Optional[MicroBatchQueue] = None,
        artifact: Optional[str] = None,
    ) -> None:
        self.detector = IncrementalTPGrGAD(base_graph, config, stream_config, artifact=artifact)
        # Not ``queue or ...``: an empty MicroBatchQueue is falsy (__len__).
        self.queue = queue if queue is not None else MicroBatchQueue()

    @classmethod
    def for_stream(
        cls,
        stream,
        config: Optional[TPGrGADConfig] = None,
        stream_config: Optional[StreamConfig] = None,
        artifact: Optional[str] = None,
    ) -> "ReplayDriver":
        """A driver wired for an :class:`~repro.datasets.stream.EventStream`.

        One queued event per stream tick delta (``max_events_per_tick=1``)
        so detection lag is reported in stream-tick units — the single
        home of that contract, shared by :func:`replay_event_stream` and
        the ``python -m repro.stream`` CLI.
        """
        return cls(
            stream.base,
            config,
            stream_config,
            MicroBatchQueue(max_events_per_tick=1),
            artifact=artifact,
        )

    def run_stream(self, stream, finalize: bool = True) -> ReplaySummary:
        """Replay an ``EventStream``'s deltas with its burst metadata wired in."""
        return self.run(
            stream.deltas,
            watch_group=stream.burst_group,
            burst_tick=stream.burst_tick,
            finalize=finalize,
            name=stream.name,
        )

    def run(
        self,
        events: Iterable[GraphDelta],
        watch_group: Optional[Group] = None,
        burst_tick: Optional[int] = None,
        min_jaccard: float = 0.3,
        finalize: bool = True,
        name: str = "stream",
    ) -> ReplaySummary:
        """Replay ``events`` through the detector and summarise the run.

        ``watch_group`` (stream node ids) turns on detection-lag tracking:
        the summary records the first tick whose flagged groups overlap it
        by ``min_jaccard``.  ``finalize=True`` flushes the stream with a
        final refit so the last result exactly matches the batch pipeline
        on the final snapshot.
        """
        detector = self.detector
        ticks: List[TickReport] = []
        tick_event_counts: List[int] = []
        n_events = 0
        detection_tick: Optional[int] = None
        start = time.perf_counter()

        def drain() -> None:
            nonlocal detection_tick
            queued_before = len(self.queue)
            tick = self.queue.pop_tick()
            if tick is None:
                return
            # Empty ticks are still driven through the detector so tick
            # indices stay aligned with the event stream's own tick grid
            # (detection lag is reported in those units).
            report = detector.update(tick)
            ticks.append(report)
            tick_event_counts.append(queued_before - len(self.queue))
            if (
                watch_group is not None
                and detection_tick is None
                and group_detected(report.result, watch_group, min_jaccard)
            ):
                detection_tick = len(ticks) - 1

        for event in events:
            n_events += 1
            while not self.queue.push(event):
                drain()
            while len(self.queue) >= self.queue.max_events_per_tick:
                drain()
        while len(self.queue):
            drain()

        refit_seconds = sum(t.seconds for t in ticks if t.mode == "refit")
        incremental_seconds = sum(t.seconds for t in ticks if t.mode == "incremental")
        finalize_start = time.perf_counter()
        final_result = detector.finalize() if finalize else detector.result
        finalize_seconds = time.perf_counter() - finalize_start
        if (
            watch_group is not None
            and detection_tick is None
            and finalize
            and group_detected(final_result, watch_group, min_jaccard)
        ):
            detection_tick = len(ticks)  # only the flush refit saw it
        total = time.perf_counter() - start

        cache_info = detector.cache_info()
        return ReplaySummary(
            name=name,
            n_events=n_events,
            n_ticks=len(ticks),
            total_seconds=total,
            tick_seconds=[t.seconds for t in ticks],
            n_refits=sum(1 for t in ticks if t.mode == "refit"),
            n_incremental=sum(1 for t in ticks if t.mode == "incremental"),
            refit_seconds=refit_seconds,
            incremental_seconds=incremental_seconds,
            pair_hits=cache_info["pair_hits"],
            pair_misses=cache_info["pair_misses"],
            embed_hits=cache_info["embed_hits"],
            embed_misses=cache_info["embed_misses"],
            detection_tick=detection_tick,
            burst_tick=burst_tick,
            final_result=final_result,
            ticks=ticks,
            tick_modes=[t.mode for t in ticks],
            tick_event_counts=tick_event_counts,
            finalize_seconds=finalize_seconds,
        )


def replay_event_stream(
    stream,
    config: Optional[TPGrGADConfig] = None,
    stream_config: Optional[StreamConfig] = None,
    queue: Optional[MicroBatchQueue] = None,
    finalize: bool = True,
    artifact: Optional[str] = None,
) -> ReplaySummary:
    """Convenience wrapper: replay a :class:`repro.datasets.stream.EventStream`.

    One queued event per stream tick delta; the default queue keeps that
    1:1 mapping (``max_events_per_tick=1``) so detection lag is reported
    in stream-tick units.  ``artifact`` warm-starts the detector from a
    saved pipeline instead of an initial training refit.
    """
    if queue is None:
        driver = ReplayDriver.for_stream(stream, config, stream_config, artifact=artifact)
    else:
        driver = ReplayDriver(stream.base, config, stream_config, queue, artifact=artifact)
    return driver.run_stream(stream, finalize=finalize)


def write_summary_json(path: str, summaries: Sequence[ReplaySummary], extra: Optional[Dict] = None) -> None:
    """Write replay summaries (plus optional extra metrics) as JSON.

    Everything passes through :func:`repro.persist.to_native` (via
    :func:`repro.persist.dump_json`), so numpy scalars (a ``np.float64``
    speedup, say) serialize as native numbers instead of crashing
    ``json.dump``.
    """
    from repro.persist import dump_json

    payload: Dict = {"replays": [s.to_json_dict() for s in summaries]}
    if extra:
        payload.update(extra)
    dump_json(path, payload)
