"""Event-stream replay: micro-batching queue, driver and counters.

:class:`ReplayDriver` feeds an event stream (any iterable of
:class:`GraphDelta`) through an :class:`IncrementalTPGrGAD`.  Events pass
through a :class:`MicroBatchQueue` — a bounded queue that coalesces
consecutive deltas into one *tick* — so a bursty producer does not force
one detector pass per edge.  Per tick the driver records latency, dirty
statistics and reuse counters; :meth:`ReplayDriver.run` returns a
:class:`ReplaySummary` with throughput (events/sec), p50/p95 tick
latency, refit/incremental split and (when the stream declares a burst
group) the detection lag in ticks.

``python -m repro.stream`` is the CLI front end; the pinned performance
numbers live in ``benchmarks/test_stream_replay.py``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.config import TPGrGADConfig
from repro.core.result import GroupDetectionResult
from repro.graph import Graph, Group
from repro.stream.delta import GraphDelta
from repro.stream.incremental import IncrementalTPGrGAD, StreamConfig, TickReport


class MicroBatchQueue:
    """Bounded queue that coalesces pushed deltas into tick-sized batches.

    ``max_events_per_tick`` is the coalescing width: :meth:`pop_tick`
    merges up to that many queued deltas into one :class:`GraphDelta`.
    ``capacity`` bounds the number of *queued* events; a push beyond it
    signals backpressure by returning False (the replay driver responds
    by draining a tick first — a real ingestion loop would block).
    """

    def __init__(self, capacity: int = 1024, max_events_per_tick: int = 32) -> None:
        if capacity < 1 or max_events_per_tick < 1:
            raise ValueError("capacity and max_events_per_tick must be positive")
        self.capacity = capacity
        self.max_events_per_tick = max_events_per_tick
        self._queue: List[GraphDelta] = []

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    def push(self, delta: GraphDelta) -> bool:
        """Enqueue one event; False signals backpressure (queue full)."""
        if self.full:
            return False
        self._queue.append(delta)
        return True

    def pop_tick(self) -> Optional[GraphDelta]:
        """Merge and return the next tick's worth of events (None if idle)."""
        if not self._queue:
            return None
        batch = self._queue[: self.max_events_per_tick]
        del self._queue[: self.max_events_per_tick]
        return GraphDelta.merge(batch)


@dataclass
class ReplaySummary:
    """Counters and latencies of one replay run."""

    name: str
    n_events: int
    n_ticks: int
    total_seconds: float
    tick_seconds: List[float]
    n_refits: int
    n_incremental: int
    refit_seconds: float
    incremental_seconds: float
    pair_hits: int
    pair_misses: int
    embed_hits: int
    embed_misses: int
    detection_tick: Optional[int] = None
    burst_tick: Optional[int] = None
    final_result: Optional[GroupDetectionResult] = None
    ticks: List[TickReport] = field(default_factory=list)

    @property
    def events_per_second(self) -> float:
        return self.n_events / self.total_seconds if self.total_seconds > 0 else float("inf")

    @property
    def p50_latency(self) -> float:
        return float(np.percentile(self.tick_seconds, 50)) if self.tick_seconds else 0.0

    @property
    def p95_latency(self) -> float:
        return float(np.percentile(self.tick_seconds, 95)) if self.tick_seconds else 0.0

    @property
    def detection_lag(self) -> Optional[int]:
        """Ticks between the burst and its first detection (None: not seen)."""
        if self.detection_tick is None or self.burst_tick is None:
            return None
        return self.detection_tick - self.burst_tick

    def to_json_dict(self) -> Dict:
        """JSON-serialisable summary (the ``BENCH_stream.json`` schema)."""
        return {
            "name": self.name,
            "n_events": self.n_events,
            "n_ticks": self.n_ticks,
            "total_seconds": round(self.total_seconds, 4),
            "events_per_second": round(self.events_per_second, 2),
            "p50_tick_latency_seconds": round(self.p50_latency, 4),
            "p95_tick_latency_seconds": round(self.p95_latency, 4),
            "n_refits": self.n_refits,
            "n_incremental_ticks": self.n_incremental,
            "refit_seconds": round(self.refit_seconds, 4),
            "incremental_seconds": round(self.incremental_seconds, 4),
            "pair_cache_hits": self.pair_hits,
            "pair_cache_misses": self.pair_misses,
            "embedding_cache_hits": self.embed_hits,
            "embedding_cache_misses": self.embed_misses,
            "burst_tick": self.burst_tick,
            "detection_tick": self.detection_tick,
            "detection_lag_ticks": self.detection_lag,
        }

    def render(self) -> str:
        """Human-readable one-screen summary."""
        lines = [
            f"replay '{self.name}': {self.n_events} events in {self.n_ticks} ticks "
            f"({self.total_seconds:.2f}s, {self.events_per_second:.1f} events/s)",
            f"  tick latency: p50 {self.p50_latency * 1e3:.1f}ms  p95 {self.p95_latency * 1e3:.1f}ms",
            f"  ticks: {self.n_incremental} incremental ({self.incremental_seconds:.2f}s) "
            f"+ {self.n_refits} refits ({self.refit_seconds:.2f}s)",
            f"  pair cache: {self.pair_hits} hits / {self.pair_misses} misses; "
            f"embedding cache: {self.embed_hits} hits / {self.embed_misses} misses",
        ]
        if self.burst_tick is not None:
            if self.detection_tick is not None:
                lines.append(
                    f"  burst at tick {self.burst_tick}: detected at tick "
                    f"{self.detection_tick} (lag {self.detection_lag})"
                )
            else:
                lines.append(f"  burst at tick {self.burst_tick}: NOT detected")
        return "\n".join(lines)


def group_detected(result: GroupDetectionResult, target: Group, min_jaccard: float = 0.3) -> bool:
    """Whether any flagged group overlaps ``target`` by at least ``min_jaccard``."""
    return any(target.jaccard(group) >= min_jaccard for group in result.anomalous_groups)


class ReplayDriver:
    """Drive an incremental detector over an event stream."""

    def __init__(
        self,
        base_graph: Graph,
        config: Optional[TPGrGADConfig] = None,
        stream_config: Optional[StreamConfig] = None,
        queue: Optional[MicroBatchQueue] = None,
    ) -> None:
        self.detector = IncrementalTPGrGAD(base_graph, config, stream_config)
        # Not ``queue or ...``: an empty MicroBatchQueue is falsy (__len__).
        self.queue = queue if queue is not None else MicroBatchQueue()

    def run(
        self,
        events: Iterable[GraphDelta],
        watch_group: Optional[Group] = None,
        burst_tick: Optional[int] = None,
        min_jaccard: float = 0.3,
        finalize: bool = True,
        name: str = "stream",
    ) -> ReplaySummary:
        """Replay ``events`` through the detector and summarise the run.

        ``watch_group`` (stream node ids) turns on detection-lag tracking:
        the summary records the first tick whose flagged groups overlap it
        by ``min_jaccard``.  ``finalize=True`` flushes the stream with a
        final refit so the last result exactly matches the batch pipeline
        on the final snapshot.
        """
        detector = self.detector
        ticks: List[TickReport] = []
        n_events = 0
        detection_tick: Optional[int] = None
        start = time.perf_counter()

        def drain() -> None:
            nonlocal detection_tick
            tick = self.queue.pop_tick()
            if tick is None:
                return
            # Empty ticks are still driven through the detector so tick
            # indices stay aligned with the event stream's own tick grid
            # (detection lag is reported in those units).
            report = detector.update(tick)
            ticks.append(report)
            if (
                watch_group is not None
                and detection_tick is None
                and group_detected(report.result, watch_group, min_jaccard)
            ):
                detection_tick = len(ticks) - 1

        for event in events:
            n_events += 1
            while not self.queue.push(event):
                drain()
            while len(self.queue) >= self.queue.max_events_per_tick:
                drain()
        while len(self.queue):
            drain()

        refit_seconds = sum(t.seconds for t in ticks if t.mode == "refit")
        incremental_seconds = sum(t.seconds for t in ticks if t.mode == "incremental")
        final_result = detector.finalize() if finalize else detector.result
        if (
            watch_group is not None
            and detection_tick is None
            and finalize
            and group_detected(final_result, watch_group, min_jaccard)
        ):
            detection_tick = len(ticks)  # only the flush refit saw it
        total = time.perf_counter() - start

        return ReplaySummary(
            name=name,
            n_events=n_events,
            n_ticks=len(ticks),
            total_seconds=total,
            tick_seconds=[t.seconds for t in ticks],
            n_refits=sum(1 for t in ticks if t.mode == "refit"),
            n_incremental=sum(1 for t in ticks if t.mode == "incremental"),
            refit_seconds=refit_seconds,
            incremental_seconds=incremental_seconds,
            pair_hits=detector.pair_hits,
            pair_misses=detector.pair_misses,
            embed_hits=detector.embed_hits,
            embed_misses=detector.embed_misses,
            detection_tick=detection_tick,
            burst_tick=burst_tick,
            final_result=final_result,
            ticks=ticks,
        )


def replay_event_stream(
    stream,
    config: Optional[TPGrGADConfig] = None,
    stream_config: Optional[StreamConfig] = None,
    queue: Optional[MicroBatchQueue] = None,
    finalize: bool = True,
) -> ReplaySummary:
    """Convenience wrapper: replay a :class:`repro.datasets.stream.EventStream`.

    One queued event per stream tick delta; the default queue keeps that
    1:1 mapping (``max_events_per_tick=1``) so detection lag is reported
    in stream-tick units.
    """
    if queue is None:
        queue = MicroBatchQueue(max_events_per_tick=1)
    driver = ReplayDriver(stream.base, config, stream_config, queue)
    return driver.run(
        stream.deltas,
        watch_group=stream.burst_group,
        burst_tick=stream.burst_tick,
        finalize=finalize,
        name=stream.name,
    )


def write_summary_json(path: str, summaries: Sequence[ReplaySummary], extra: Optional[Dict] = None) -> None:
    """Write replay summaries (plus optional extra metrics) as JSON."""
    payload: Dict = {"replays": [s.to_json_dict() for s in summaries]}
    if extra:
        payload.update(extra)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
