"""Streaming detection subsystem: online TP-GrGAD over graph deltas.

Layers (bottom up):

* :mod:`repro.stream.delta` — :class:`GraphDelta` batches and the
  :class:`StreamingGraph` that applies them with sorted-merge edge-index
  updates, incremental CSR refresh and a rolling content fingerprint.
* :mod:`repro.stream.incremental` — :class:`IncrementalTPGrGAD`, the
  dirty-region re-scoring detector with drift-budget refits.
* :mod:`repro.stream.replay` — the micro-batching replay driver,
  latency/throughput counters and the ``python -m repro.stream`` CLI.

Event-stream views of the generated datasets live in
:mod:`repro.datasets.stream`.
"""

from repro.stream.delta import DeltaReport, GraphDelta, StreamingGraph, content_fingerprint
from repro.stream.incremental import IncrementalTPGrGAD, StreamConfig, TickReport
from repro.stream.replay import (
    MicroBatchQueue,
    ReplayDriver,
    ReplaySummary,
    group_detected,
    replay_event_stream,
    write_summary_json,
)

__all__ = [
    "DeltaReport",
    "GraphDelta",
    "StreamingGraph",
    "content_fingerprint",
    "IncrementalTPGrGAD",
    "StreamConfig",
    "TickReport",
    "MicroBatchQueue",
    "ReplayDriver",
    "ReplaySummary",
    "group_detected",
    "replay_event_stream",
    "write_summary_json",
]
