"""Incremental TP-GrGAD: dirty-region re-scoring over a graph stream.

:class:`IncrementalTPGrGAD` wraps the batched pipeline of
:class:`repro.core.TPGrGAD` and keeps its three stage outputs alive
between deltas:

* **Stage 1 (anchors)** is the expensive trained part (MH-GAE).  It is
  refit only when the *drift budget* is exceeded — the fraction of the
  graph dirtied since the last refit — or on every tick under
  ``refit_policy="always"`` (the exact-parity oracle mode).  Between
  refits the anchor set is frozen; optionally, freshly arrived nodes are
  promoted to *provisional* anchors so a burst planted mid-stream can be
  sampled before the next refit.
* **Stage 2 (candidate sampling)** is maintained exactly.  All of
  Algorithm 1's searches from an anchor ``a`` explore at most
  ``SamplerConfig.search_depth`` hops, so after a delta only anchors
  inside the **dirty ball** — the ``search_depth``-hop ball around the
  touched nodes (:meth:`Graph.k_hop_ball`, the union of the
  :meth:`Graph.multi_source_bfs` balls) — can see any changed edge.
  Their cached per-pair / per-cycle results are recomputed from one
  batched BFS over just those sources; everything else is reused
  verbatim.  Because deltas are add-only, a clean anchor's cached result
  equals a fresh recomputation bit for bit (proved in DESIGN.md,
  tested in ``tests/test_stream.py``).
* **Stage 3 (discrimination)** re-embeds only candidate groups whose
  member nodes were touched (a group's TPGCL embedding depends only on
  its induced subgraph), with the encoder trained at the last refit, and
  re-runs the cheap outlier detector over all group embeddings.

``finalize()`` forces a refit when anything changed since the last one,
so the stream's final answer is *identical* to running the batch
``fit_detect`` on the final snapshot — the parity contract pinned by
``benchmarks/test_stream_replay.py``.
"""

from __future__ import annotations

import copy
import os
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.config import TPGrGADConfig
from repro.core.pipeline import TPGrGAD
from repro.core.result import GroupDetectionResult
from repro.obs.tracer import get_tracer
from repro.gcl import TPGCL
from repro.graph import Graph, Group
from repro.sampling import CandidateGroupSampler, MultiSourceSearchEngine, SampleCollection
from repro.seeding import resolve_seed
from repro.stream.delta import DeltaReport, GraphDelta, StreamingGraph


@dataclass
class StreamConfig:
    """Knobs of the incremental detector.

    Attributes
    ----------
    refit_policy:
        ``"budget"`` (default) refits the trained stages when the dirty
        fraction exceeds ``drift_budget``; ``"always"`` refits on every
        tick (exact batch parity, the oracle mode); ``"never"`` only
        refits when :meth:`IncrementalTPGrGAD.finalize` is called.
    drift_budget:
        Fraction of nodes allowed to change (arrive, gain an edge, have
        features rewritten) since the last refit before a full one is
        forced.
    dirty_depth:
        Hop radius of the dirty ball; defaults to the sampler's
        ``search_depth`` (the invalidation-exactness bound — do not lower
        it unless you accept stale candidates).
    promote_new_nodes:
        Between refits, treat freshly arrived nodes as provisional
        anchors (paired with their nearest scored anchors) so anomalies
        planted mid-stream are sampled before the next refit.  A stream-
        only augmentation: refits discard provisional anchors.
    max_provisional_anchors:
        Most-recent cap on the provisional anchor set.
    provisional_pair_budget:
        How many nearest scored anchors each provisional anchor is paired
        with.
    threshold:
        Optional fixed score threshold τ; ``None`` re-derives the
        ``1 - contamination`` quantile every tick, like the batch
        pipeline.
    """

    refit_policy: str = "budget"
    drift_budget: float = 0.25
    dirty_depth: Optional[int] = None
    promote_new_nodes: bool = True
    max_provisional_anchors: int = 16
    provisional_pair_budget: int = 8
    threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.refit_policy not in ("budget", "always", "never"):
            raise ValueError("refit_policy must be 'budget', 'always' or 'never'")
        if not 0.0 < self.drift_budget <= 1.0:
            raise ValueError("drift_budget must be in (0, 1]")


@dataclass
class TickReport:
    """Everything one :meth:`IncrementalTPGrGAD.update` did."""

    version: int
    mode: str                      # "refit" | "incremental"
    seconds: float
    n_touched: int
    dirty_ball: int                # nodes in this tick's dirty ball
    dirty_fraction: float          # accumulated dirty fraction since last refit
    n_dirty_anchors: int
    pairs_reused: int
    pairs_recomputed: int
    cycles_reused: int
    cycles_recomputed: int
    embeddings_reused: int
    embeddings_recomputed: int
    result: GroupDetectionResult


class IncrementalTPGrGAD:
    """Online TP-GrGAD over a delta stream (see module docstring)."""

    def __init__(
        self,
        base_graph: Graph,
        config: Optional[TPGrGADConfig] = None,
        stream_config: Optional[StreamConfig] = None,
        artifact: Optional[str] = None,
    ) -> None:
        if artifact is not None:
            # Warm start from a saved model artifact (see repro.persist) or
            # an already-fitted TPGrGAD: the initial detection state comes
            # from the trained weights via detect_only-style scoring
            # instead of a full training refit — a restarted stream process
            # resumes serving in seconds.  The artifact's config is used
            # unless the caller overrides it; an override applies to warm
            # scoring too.  A shape-incompatible override fails loudly at
            # state load; an override that keeps shapes but changes model
            # semantics (MH-GAE target, feature scaling, ...) scores the
            # warm period with weights trained under the artifact's
            # settings — warm results are approximate by contract either
            # way, and the first refit adopts the override fully.
            if isinstance(artifact, (str, os.PathLike)):
                self.detector = TPGrGAD.load(artifact)
            else:
                # Don't adopt the caller's detector object: stream refits
                # rebind its models and a config override must not leak
                # back into the caller's instance.
                self.detector = copy.copy(artifact)
            if config is not None:
                self.detector.config = config
                if self.detector._warm_state is not None:
                    warm = copy.copy(self.detector._warm_state)
                    warm.config = config
                    self.detector._warm_state = warm
        else:
            self.detector = TPGrGAD(config)
        self.config = self.detector.config
        self.stream_config = stream_config or StreamConfig()
        self.streaming = StreamingGraph(base_graph)

        # Lifetime counters (reported by the replay driver).
        self.n_refits = 0
        self.n_warm_starts = 0
        self.n_incremental_ticks = 0
        self.pair_hits = 0
        self.pair_misses = 0
        self.embed_hits = 0
        self.embed_misses = 0

        # Per-refit-generation state.
        self._anchors: List[int] = []
        self._pairs: List[Tuple[int, int]] = []
        self._collection = SampleCollection()
        self._provisional: List[int] = []
        self._provisional_pairs: Dict[int, List[Tuple[int, int]]] = {}
        self._embed_rows: Dict[Tuple[int, ...], np.ndarray] = {}
        self._tpgcl: Optional[TPGCL] = None
        self._node_scores: Optional[np.ndarray] = None
        self._dirty_mask = np.zeros(base_graph.n_nodes, dtype=bool)
        self._dirty_since_refit = False
        self._result: Optional[GroupDetectionResult] = None

        if artifact is not None:
            self._warm_start(self.graph)
        else:
            self._refit(self.graph)

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The current snapshot."""
        return self.streaming.graph

    def cache_info(self) -> Dict[str, int]:
        """Reuse-cache statistics: pair and embedding hits/misses.

        The public read surface for the replay driver and operational
        metrics — the streaming analogue of
        :meth:`repro.core.TPGrGAD.cache_info`, so monitoring code never
        reaches into per-generation private state.
        """
        return {
            "pair_hits": self.pair_hits,
            "pair_misses": self.pair_misses,
            "embed_hits": self.embed_hits,
            "embed_misses": self.embed_misses,
        }

    @property
    def result(self) -> GroupDetectionResult:
        """The most recent detection result (refit or incremental)."""
        assert self._result is not None
        return self._result

    @property
    def dirty_fraction(self) -> float:
        """Accumulated dirty fraction of the graph since the last refit."""
        return float(self._dirty_mask.sum()) / float(self.graph.n_nodes)

    def _search_depth(self) -> Optional[int]:
        if self.stream_config.dirty_depth is not None:
            return self.stream_config.dirty_depth
        return self.config.sampler.search_depth

    # ------------------------------------------------------------------
    # Full refit (the batch pipeline, stage structure retained)
    # ------------------------------------------------------------------
    def _refit(self, graph: Graph) -> TickReport:
        """Run the full three-stage pipeline and rebuild all cached state.

        Mirrors :meth:`TPGrGAD.fit_detect` call for call (same fresh
        seeded models, same rng streams), so the produced result is
        bit-identical to the batch pipeline on this snapshot — pinned by
        ``tests/test_stream.py::test_always_policy_matches_batch``.
        """
        start = time.perf_counter()
        detector = self.detector
        config = self.config
        detector._graph = graph

        anchor_array = detector.locate_anchors(graph)
        node_scores = detector.mhgae.score_nodes() if detector.mhgae else None
        anchors = [int(a) for a in anchor_array]

        sampler = CandidateGroupSampler(config.sampler)
        pairs = sampler.propose_pairs(anchors)
        collection = sampler.collect(graph, anchors, pairs)
        candidates = sampler.finalize(collection.ordered_candidates(pairs, anchors))

        detector.tpgcl = None  # mirror _run_stages: only set when TPGCL runs
        embeddings: Optional[np.ndarray] = None
        if candidates:
            embeddings = detector._embed_candidates(graph, candidates)

        result = self._scored_result(
            graph, candidates, embeddings, np.asarray(anchors, dtype=int), node_scores
        )
        self._install_generation(
            graph, anchors, pairs, collection, candidates, embeddings,
            node_scores, result, dirty_since_refit=False,
        )
        self.n_refits += 1

        return TickReport(
            version=self.streaming.version,
            mode="refit",
            seconds=time.perf_counter() - start,
            n_touched=0,
            dirty_ball=0,
            dirty_fraction=0.0,
            n_dirty_anchors=len(anchors),
            pairs_reused=0,
            pairs_recomputed=len(pairs),
            cycles_reused=0,
            cycles_recomputed=len(anchors),
            embeddings_reused=0,
            embeddings_recomputed=len(candidates),
            result=result,
        )

    # ------------------------------------------------------------------
    # Warm start from a loaded artifact (no training)
    # ------------------------------------------------------------------
    def _warm_start(self, graph: Graph) -> TickReport:
        """Build the initial detection state from loaded artifact weights.

        Mirrors :meth:`_refit`'s state installation but scores with the
        artifact's trained MH-GAE / TPGCL instead of training fresh ones —
        the same semantics as ``TPGrGAD.detect_only``.  The result is not
        batch-parity on this snapshot (the weights were trained on the
        artifact's fitted graph); the first budget-triggered or flush
        refit restores exact parity.
        """
        from repro.gae import select_anchor_nodes
        from repro.persist import PipelineState

        start = time.perf_counter()
        detector = self.detector
        config = self.config
        # Loaded artifacts carry their state; a fitted in-memory detector
        # passed as `artifact=` exports its live models instead (the same
        # fallback TPGrGAD.detect_only uses).
        state = detector._warm_state
        if state is None:
            state = PipelineState.from_fitted(detector)
        detector._graph = graph

        detector.mhgae = state.bind_mhgae(graph)
        node_scores = detector.mhgae.score_nodes()
        anchors = [
            int(a)
            for a in select_anchor_nodes(
                node_scores, fraction=config.anchor_fraction, maximum=config.max_anchors
            )
        ]

        sampler = CandidateGroupSampler(config.sampler)
        pairs = sampler.propose_pairs(anchors)
        collection = sampler.collect(graph, anchors, pairs)
        candidates = sampler.finalize(collection.ordered_candidates(pairs, anchors))

        detector.tpgcl, embeddings = detector._warm_embed(state, graph, candidates)

        result = self._scored_result(
            graph, candidates, embeddings, np.asarray(anchors, dtype=int), node_scores
        )
        # dirty_since_refit deliberately True: the warm result is an
        # approximation, so finalize() must still run one true refit to
        # restore batch parity.
        self._install_generation(
            graph, anchors, pairs, collection, candidates, embeddings,
            node_scores, result, dirty_since_refit=True,
        )
        self.n_warm_starts += 1

        return TickReport(
            version=self.streaming.version,
            mode="warm",
            seconds=time.perf_counter() - start,
            n_touched=0,
            dirty_ball=0,
            dirty_fraction=0.0,
            n_dirty_anchors=len(anchors),
            pairs_reused=0,
            pairs_recomputed=len(pairs),
            cycles_reused=0,
            cycles_recomputed=len(anchors),
            embeddings_reused=0,
            embeddings_recomputed=len(candidates),
            result=result,
        )

    # ------------------------------------------------------------------
    # Per-generation cached state (shared tail of _refit / _warm_start)
    # ------------------------------------------------------------------
    def _install_generation(
        self,
        graph: Graph,
        anchors: List[int],
        pairs: List[Tuple[int, int]],
        collection: SampleCollection,
        candidates: List[Group],
        embeddings: Optional[np.ndarray],
        node_scores: Optional[np.ndarray],
        result: GroupDetectionResult,
        dirty_since_refit: bool,
    ) -> None:
        """Replace all cached per-generation state in one place."""
        self._anchors = anchors
        self._pairs = pairs
        self._collection = collection
        self._provisional = []
        self._provisional_pairs = {}
        self._tpgcl = self.detector.tpgcl
        self._node_scores = node_scores
        self._embed_rows = (
            {group.node_tuple(): embeddings[i] for i, group in enumerate(candidates)}
            if embeddings is not None
            else {}
        )
        self._dirty_mask = np.zeros(graph.n_nodes, dtype=bool)
        self._dirty_since_refit = dirty_since_refit
        self._result = result

    # ------------------------------------------------------------------
    # Shared stage-3 tail
    # ------------------------------------------------------------------
    def _scored_result(
        self,
        graph: Graph,
        candidates: List[Group],
        embeddings: Optional[np.ndarray],
        anchor_nodes: np.ndarray,
        node_scores: Optional[np.ndarray],
    ) -> GroupDetectionResult:
        """Outlier-score an embedding matrix into a result (τ as in batch)."""
        padded_scores = self._padded_node_scores(node_scores, graph.n_nodes)
        if not candidates or embeddings is None:
            return GroupDetectionResult(
                candidate_groups=[],
                scores=np.array([]),
                threshold=0.0,
                anomalous_groups=[],
                anchor_nodes=np.asarray(anchor_nodes, dtype=int).copy(),
                node_scores=padded_scores,
            )
        scores = self.detector._score_embeddings(embeddings)
        threshold = self.stream_config.threshold
        if threshold is None:
            threshold = float(np.quantile(scores, 1.0 - self.config.contamination))
        anomalous = [
            group.with_score(float(score))
            for group, score in zip(candidates, scores)
            if score >= threshold
        ]
        return GroupDetectionResult(
            candidate_groups=list(candidates),
            scores=scores,
            threshold=float(threshold),
            anomalous_groups=anomalous,
            anchor_nodes=np.asarray(anchor_nodes, dtype=int).copy(),
            embeddings=embeddings.copy(),
            node_scores=padded_scores,
        )

    @staticmethod
    def _padded_node_scores(node_scores: Optional[np.ndarray], n_nodes: int) -> Optional[np.ndarray]:
        """Stage-1 scores padded with NaN for nodes arrived since the refit."""
        if node_scores is None:
            return None
        if node_scores.shape[0] == n_nodes:
            return node_scores.copy()
        padded = np.full(n_nodes, np.nan)
        padded[: node_scores.shape[0]] = node_scores
        return padded

    # ------------------------------------------------------------------
    # The streaming entry point
    # ------------------------------------------------------------------
    def update(self, delta: GraphDelta) -> TickReport:
        """Apply one delta and bring the detection result up to date."""
        tracer = get_tracer()
        with tracer.span("stream.tick") as span:
            tick = self._update(delta)
            if tracer.enabled:
                span.set("version", tick.version)
                span.set("mode", tick.mode)
                span.set("policy", self.stream_config.refit_policy)
                span.set("dirty_fraction", round(tick.dirty_fraction, 6))
                span.add("n_touched", tick.n_touched)
                span.add("pairs_reused", tick.pairs_reused)
                span.add("pairs_recomputed", tick.pairs_recomputed)
                span.add("embeddings_reused", tick.embeddings_reused)
                span.add("embeddings_recomputed", tick.embeddings_recomputed)
            return tick

    def _update(self, delta: GraphDelta) -> TickReport:
        start = time.perf_counter()
        report = self.streaming.apply(delta)
        graph = self.graph
        if report.touched_nodes.size:
            # (Duplicate-only / empty deltas change nothing; don't let them
            # force a flush refit from finalize().)
            self._dirty_since_refit = True

        # Drift accounting counts nodes that actually *changed* (arrived,
        # gained an edge, had features rewritten) — not the much larger
        # invalidation ball, which on small-world graphs quickly covers
        # everything without the trained models having drifted much.
        grown = np.zeros(graph.n_nodes, dtype=bool)
        grown[: self._dirty_mask.shape[0]] = self._dirty_mask
        grown[report.touched_nodes] = True
        self._dirty_mask = grown
        dirty_fraction = self.dirty_fraction

        policy = self.stream_config.refit_policy
        if policy == "always" or (policy == "budget" and dirty_fraction > self.stream_config.drift_budget):
            tick = self._refit(graph)
            return replace(
                tick,
                seconds=time.perf_counter() - start,
                n_touched=int(report.touched_nodes.shape[0]),
                dirty_fraction=dirty_fraction,
            )

        # The dirty ball is only needed (and only paid for) on the
        # incremental path; topology changes invalidate searches, feature-
        # only changes don't (paths/trees/cycles are purely structural).
        ball = graph.k_hop_ball(report.touched_topology, self._search_depth())
        return self._incremental_tick(graph, report, ball, dirty_fraction, start)

    # ------------------------------------------------------------------
    def _incremental_tick(
        self,
        graph: Graph,
        report: DeltaReport,
        ball: np.ndarray,
        dirty_fraction: float,
        start: float,
    ) -> TickReport:
        config = self.config
        sampler_config = config.sampler
        ball_set: Set[int] = set(int(n) for n in ball)
        touched_set: Set[int] = set(int(n) for n in report.touched_nodes)

        # ---- which sources must be re-searched -------------------------
        new_provisional: List[int] = []
        if self.stream_config.promote_new_nodes and report.n_new_nodes:
            new_provisional = list(range(graph.n_nodes - report.n_new_nodes, graph.n_nodes))
            self._provisional.extend(new_provisional)
            dropped = self._provisional[: -self.stream_config.max_provisional_anchors]
            self._provisional = self._provisional[-self.stream_config.max_provisional_anchors:]
            for node in dropped:
                for pair in self._provisional_pairs.pop(node, []):
                    self._collection.pair_groups.pop(pair, None)
                self._collection.anchor_cycles.pop(node, None)
            new_provisional = [p for p in new_provisional if p in set(self._provisional)]

        new_set = set(new_provisional)
        dirty_anchors = [a for a in self._anchors if a in ball_set]
        dirty_provisional = [p for p in self._provisional if p in ball_set and p not in new_set]
        sources = list(dict.fromkeys(dirty_anchors + dirty_provisional + new_provisional))
        engine: Optional[MultiSourceSearchEngine] = None
        if sources:
            engine = MultiSourceSearchEngine(graph, sources, max_depth=self._search_depth())

        # ---- stage 2: patch the collection -----------------------------
        pairs_recomputed = 0
        dirty_set = set(dirty_anchors) | set(dirty_provisional)
        for pair in self._pairs:
            if pair[0] in dirty_set:
                self._collection.pair_groups[pair] = self._search_pair(engine, pair)
                pairs_recomputed += 1
        for provisional in self._provisional:
            if provisional in new_provisional:
                self._provisional_pairs[provisional] = self._nearest_anchor_pairs(engine, provisional)
            if provisional in dirty_set or provisional in new_provisional:
                for pair in self._provisional_pairs.get(provisional, []):
                    self._collection.pair_groups[pair] = self._search_pair(engine, pair)
                    pairs_recomputed += 1

        cycles_recomputed = 0
        for source in sources:
            self._collection.anchor_cycles[source] = engine.cycle_groups(
                source,
                max_cycle_length=sampler_config.max_cycle_length,
                max_cycles=sampler_config.max_cycles_per_anchor,
            )
            cycles_recomputed += 1

        all_pairs = list(self._pairs)
        for provisional in self._provisional:
            all_pairs.extend(self._provisional_pairs.get(provisional, []))
        all_anchors = self._anchors + self._provisional
        pairs_reused = len(all_pairs) - pairs_recomputed
        cycles_reused = len(all_anchors) - cycles_recomputed
        self.pair_hits += pairs_reused
        self.pair_misses += pairs_recomputed

        sampler = CandidateGroupSampler(sampler_config)
        # Deterministic per-tick stream for the (rarely hit) candidate cap.
        cap_rng = np.random.default_rng(
            (resolve_seed(sampler_config.seed), self.streaming.version)
        )
        candidates = sampler.finalize(
            self._collection.ordered_candidates(all_pairs, all_anchors), rng=cap_rng
        )

        # ---- stage 3: re-embed touched groups, re-score everything ------
        # Drop every cached row whose group intersects the touched nodes —
        # including rows of groups *not* in the current candidate list, so a
        # group that leaves and later re-enters can never resurrect a row
        # computed against a pre-touch subgraph.
        if touched_set:
            for key in [k for k in self._embed_rows if touched_set.intersection(k)]:
                del self._embed_rows[key]
        embeddings: Optional[np.ndarray] = None
        embeddings_recomputed = 0
        if candidates:
            stale = [
                group for group in candidates if group.node_tuple() not in self._embed_rows
            ]
            embeddings_recomputed = len(stale)
            if stale:
                mean_rows = np.vstack(
                    [graph.features[list(group.nodes)].mean(axis=0) for group in stale]
                )
                if self._tpgcl is not None:
                    contrastive = self._tpgcl.embed_groups(graph, stale)
                    rows = np.hstack([contrastive, mean_rows])
                else:
                    rows = mean_rows
                for group, row in zip(stale, rows):
                    self._embed_rows[group.node_tuple()] = row
            embeddings = np.vstack([self._embed_rows[g.node_tuple()] for g in candidates])
        embeddings_reused = len(candidates) - embeddings_recomputed
        self.embed_hits += embeddings_reused
        self.embed_misses += embeddings_recomputed

        result = self._scored_result(
            graph,
            candidates,
            embeddings,
            np.asarray(all_anchors, dtype=int),
            self._node_scores,
        )
        self._result = result
        self.n_incremental_ticks += 1

        return TickReport(
            version=self.streaming.version,
            mode="incremental",
            seconds=time.perf_counter() - start,
            n_touched=int(report.touched_nodes.shape[0]),
            dirty_ball=int(ball.shape[0]),
            dirty_fraction=dirty_fraction,
            n_dirty_anchors=len(dirty_anchors),
            pairs_reused=pairs_reused,
            pairs_recomputed=pairs_recomputed,
            cycles_reused=cycles_reused,
            cycles_recomputed=cycles_recomputed,
            embeddings_reused=embeddings_reused,
            embeddings_recomputed=embeddings_recomputed,
            result=result,
        )

    # ------------------------------------------------------------------
    def _search_pair(
        self, engine: Optional[MultiSourceSearchEngine], pair: Tuple[int, int]
    ) -> Tuple[Optional[Group], Optional[Group]]:
        assert engine is not None, "a dirty pair implies a dirty source"
        config = self.config.sampler
        u, v = pair
        path_group = engine.path_group(u, v, max_length=config.max_path_length)
        tree_group = engine.tree_group(u, v, depth=config.tree_depth, max_nodes=config.max_group_size)
        return (path_group, tree_group)

    def _nearest_anchor_pairs(
        self, engine: Optional[MultiSourceSearchEngine], provisional: int
    ) -> List[Tuple[int, int]]:
        """Pair a provisional anchor with its nearest reachable scored anchors.

        The provisional node is the *source* of each pair, so one BFS row
        answers all of its searches — scored anchors never become engine
        sources on account of a provisional pairing.
        """
        assert engine is not None
        budget = self.stream_config.provisional_pair_budget
        if budget <= 0 or not self._anchors:
            return []
        dist_row = engine.distances(provisional)
        reachable = [(int(dist_row[a]), i, a) for i, a in enumerate(self._anchors) if dist_row[a] >= 0]
        reachable.sort()
        return [(provisional, a) for _, _, a in reachable[:budget]]

    # ------------------------------------------------------------------
    def finalize(self) -> GroupDetectionResult:
        """Flush the stream: refit if anything changed since the last refit.

        After this call the result is exactly ``TPGrGAD(config).fit_detect``
        on the final snapshot.
        """
        tracer = get_tracer()
        with tracer.span("stream.finalize") as span:
            refit = self._dirty_since_refit
            if refit:
                self._refit(self.graph)
            if tracer.enabled:
                span.set("refit", refit)
            return self.result

    def update_all(self, deltas: Sequence[GraphDelta]) -> List[TickReport]:
        """Apply a sequence of deltas, one tick each."""
        return [self.update(delta) for delta in deltas]
