"""Graph deltas and the :class:`StreamingGraph` that applies them.

The batch pipeline sees a :class:`~repro.graph.Graph` as an immutable
snapshot.  Streaming workloads — transaction feeds, phishing reports —
instead produce a sequence of **deltas**: batches of appended nodes, new
edges and in-place feature updates.  This module provides

* :class:`GraphDelta` — one immutable batch of such events,
* :class:`StreamingGraph` — a snapshot holder that applies deltas with a
  sorted-merge into the canonical edge index (``O(E + E_new log E)``), an
  incremental per-row CSR refresh (no global re-sort) and an incrementally
  maintained content fingerprint (``O(|delta|)`` per tick).

Replaying any delta sequence yields a graph *identical* — edge index,
features, CSR adjacency and fingerprint — to building the final graph in
one shot with :meth:`Graph.add_nodes_and_edges`; this equivalence is
property-tested in ``tests/test_stream.py``.  Deltas are add-only (nodes
and edges are never removed), matching the append-only ``Graph`` API and
the monotone arrival semantics of transaction logs; that monotonicity is
what makes the dirty-region invalidation rule of
:mod:`repro.stream.incremental` exact.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph import Graph
from repro.graph.graph import _as_edge_array

_NO_NODES = np.zeros((0, 0), dtype=np.float64)
_NO_EDGES = np.zeros((0, 2), dtype=np.int64)
_NO_IDS = np.zeros(0, dtype=np.int64)


def _hash64(*parts: bytes) -> int:
    """64-bit blake2b of the concatenated parts (building block of the
    order-independent rolling fingerprint)."""
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        digest.update(part)
    return int.from_bytes(digest.digest(), "little")


@dataclass(frozen=True)
class GraphDelta:
    """One immutable batch of stream events applied on top of a snapshot.

    Attributes
    ----------
    new_node_features:
        ``(k, d)`` feature rows of appended nodes; they receive ids
        ``n_nodes .. n_nodes + k - 1`` at apply time.
    new_edges:
        ``(m, 2)`` edges among old and freshly appended nodes.  Self loops
        and already-present edges are ignored at apply time, exactly as
        :meth:`Graph.add_nodes_and_edges` would.
    feature_update_nodes / feature_update_values:
        ``(r,)`` node ids and ``(r, d)`` replacement feature rows, applied
        after nodes and edges (so a delta may update a node it just added).

    Use :meth:`make` to build one from loose Python data.
    """

    new_node_features: np.ndarray = field(default_factory=lambda: _NO_NODES)
    new_edges: np.ndarray = field(default_factory=lambda: _NO_EDGES)
    feature_update_nodes: np.ndarray = field(default_factory=lambda: _NO_IDS)
    feature_update_values: np.ndarray = field(default_factory=lambda: _NO_NODES)

    def __post_init__(self) -> None:
        nodes = np.atleast_2d(np.asarray(self.new_node_features, dtype=np.float64))
        edges = _as_edge_array(self.new_edges)
        update_nodes = np.asarray(self.feature_update_nodes, dtype=np.int64).reshape(-1)
        update_values = np.atleast_2d(np.asarray(self.feature_update_values, dtype=np.float64))
        if nodes.size == 0:
            nodes = _NO_NODES
        if update_nodes.size == 0:
            update_nodes, update_values = _NO_IDS, _NO_NODES
        if update_nodes.shape[0] != update_values.shape[0]:
            raise ValueError("one feature row per updated node is required")
        if update_nodes.size and np.unique(update_nodes).size != update_nodes.size:
            # Keep the last update per node (numpy fancy assignment would do
            # the same; deduping here keeps the rolling fingerprint exact).
            _, last_pos = np.unique(update_nodes[::-1], return_index=True)
            keep = np.sort(update_nodes.size - 1 - last_pos)
            update_nodes = update_nodes[keep]
            update_values = update_values[keep]
        for name, value, original in (
            ("new_node_features", nodes, self.new_node_features),
            ("new_edges", edges, self.new_edges),
            ("feature_update_nodes", update_nodes, self.feature_update_nodes),
            ("feature_update_values", update_values, self.feature_update_values),
        ):
            if value is original and value.size:
                # The coercion above aliased the caller's array; freezing it
                # in place would poison a buffer the caller may still write
                # (the module-level empty sentinels are exempt).
                value = value.copy()
            value.setflags(write=False)
            object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    @classmethod
    def make(
        cls,
        edges: Optional[Iterable[Tuple[int, int]]] = None,
        node_features: Optional[np.ndarray] = None,
        feature_updates: Optional[Tuple[Sequence[int], np.ndarray]] = None,
    ) -> "GraphDelta":
        """Convenience constructor from loose event data."""
        update_nodes, update_values = feature_updates if feature_updates else ((), _NO_NODES)
        return cls(
            new_node_features=node_features if node_features is not None else _NO_NODES,
            new_edges=_as_edge_array(edges) if edges is not None else _NO_EDGES,
            feature_update_nodes=np.asarray(list(update_nodes), dtype=np.int64),
            feature_update_values=update_values,
        )

    @classmethod
    def merge(cls, deltas: Sequence["GraphDelta"]) -> "GraphDelta":
        """Coalesce consecutive deltas into one equivalent batch.

        Node ids are absolute (relative to the snapshot the *first* delta
        applies to), so concatenating node batches preserves every id a
        later delta refers to.  Feature updates are composed left to right:
        the last update of a node wins.  Applying the merged delta equals
        applying the sequence one by one (property-tested).
        """
        deltas = [d for d in deltas if not d.is_empty]
        if not deltas:
            return cls()
        if len(deltas) == 1:
            return deltas[0]
        node_batches = [d.new_node_features for d in deltas if d.n_new_nodes]
        update_nodes = np.concatenate([d.feature_update_nodes for d in deltas])
        if update_nodes.size:
            update_values = np.vstack(
                [d.feature_update_values for d in deltas if d.n_feature_updates]
            )
            # keep the LAST update per node, in first-update order
            last = {int(node): row for node, row in zip(update_nodes, update_values)}
            seen = set()
            ordered = [n for n in update_nodes.tolist() if not (n in seen or seen.add(n))]
            update_nodes = np.asarray(ordered, dtype=np.int64)
            update_values = np.vstack([last[n] for n in ordered]) if ordered else _NO_NODES
        else:
            update_values = _NO_NODES
        return cls(
            new_node_features=np.vstack(node_batches) if node_batches else _NO_NODES,
            new_edges=np.vstack([d.new_edges for d in deltas]),
            feature_update_nodes=update_nodes,
            feature_update_values=update_values,
        )

    # ------------------------------------------------------------------
    @property
    def n_new_nodes(self) -> int:
        return self.new_node_features.shape[0] if self.new_node_features.size else 0

    @property
    def n_new_edges(self) -> int:
        return self.new_edges.shape[0]

    @property
    def n_feature_updates(self) -> int:
        return self.feature_update_nodes.shape[0]

    @property
    def is_empty(self) -> bool:
        return not (self.n_new_nodes or self.n_new_edges or self.n_feature_updates)

    def touched_nodes(self, n_nodes_before: int) -> np.ndarray:
        """Node ids this delta *references*, given the pre-apply node count.

        Covers appended nodes, both endpoints of every new edge and every
        feature-updated node; sorted and unique.  Conservative: endpoints
        of edges that turn out to be duplicates still appear here — the
        :class:`DeltaReport` returned by :meth:`StreamingGraph.apply`
        carries the precise post-dedup sets the dirty-region logic uses.
        """
        parts = [
            np.arange(n_nodes_before, n_nodes_before + self.n_new_nodes, dtype=np.int64),
            self.new_edges.reshape(-1),
            self.feature_update_nodes,
        ]
        return np.unique(np.concatenate(parts))


def content_fingerprint(graph: Graph) -> str:
    """Order-independent content hash of ``(n_nodes, edges, features)``.

    Unlike :meth:`Graph.fingerprint` (a sequential blake2b over the full
    arrays, ``O(E + n·d)`` per call) this hash is a modular *sum* of
    per-edge and per-feature-row 64-bit hashes, so a
    :class:`StreamingGraph` can maintain it in ``O(|delta|)`` per tick.
    Additive mixing trades a little collision resistance for
    updatability — fine for cache invalidation, not for content
    addressing; the pipeline's stage cache keeps using
    :meth:`Graph.fingerprint`.
    """
    edge_acc = int(_edge_hashes(graph.edge_index.T).sum(dtype=np.uint64))
    feature_acc = int(
        sum(_row_hash(i, graph.features[i]) for i in range(graph.n_nodes)) % _MOD
    )
    return _mix_fingerprint(graph.n_nodes, edge_acc, feature_acc)


_MOD = 2 ** 64


def _edge_hashes(edges: np.ndarray) -> np.ndarray:
    """One 64-bit hash per ``(u, v)`` row."""
    if edges.size == 0:
        return np.zeros(0, dtype=np.uint64)
    return np.fromiter(
        (_hash64(np.int64(u).tobytes(), np.int64(v).tobytes()) for u, v in edges),
        dtype=np.uint64,
        count=edges.shape[0],
    )


def _row_hash(node: int, row: np.ndarray) -> int:
    return _hash64(np.int64(node).tobytes(), np.ascontiguousarray(row, dtype=np.float64).tobytes())


def _mix_fingerprint(n_nodes: int, edge_acc: int, feature_acc: int) -> str:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.int64(n_nodes).tobytes())
    digest.update(np.uint64(edge_acc).tobytes())
    digest.update(np.uint64(feature_acc).tobytes())
    return digest.hexdigest()


@dataclass
class DeltaReport:
    """What one :meth:`StreamingGraph.apply` actually changed.

    Both node sets are *post-dedup*: endpoints of edges that were already
    present (or self loops) do not appear, so re-delivered events — common
    under at-least-once feeds — dirty nothing and cannot creep the drift
    budget toward a refit of an unchanged graph.
    """

    version: int
    n_new_nodes: int
    n_new_edges: int            # edges actually inserted (dupes / self loops dropped)
    n_feature_updates: int
    touched_nodes: np.ndarray   # sorted ids that actually changed (any event kind)
    touched_topology: np.ndarray  # sorted ids whose *edges* changed (new nodes + inserted-edge endpoints)


class StreamingGraph:
    """A graph snapshot that grows by :class:`GraphDelta` batches.

    Each :meth:`apply` produces a fresh immutable :class:`Graph` (downstream
    code keeps its value semantics and older snapshots stay valid), but the
    expensive derived state is carried over incrementally:

    * the canonical edge index is extended by a **sorted merge** — binary
      search positions for the (deduplicated) new edge keys, one
      ``np.insert`` — instead of re-sorting all ``E`` edges;
    * the cached CSR adjacency is rebuilt by merging the new directed
      edges into the existing row-major index stream (again positions via
      binary search + one insert), so no global lexsort runs;
    * an order-independent content fingerprint (:func:`content_fingerprint`)
      is updated from the delta alone.
    """

    def __init__(self, base: Graph) -> None:
        self._graph = base
        self.version = 0
        self._edge_acc = int(_edge_hashes(base.edge_index.T).sum(dtype=np.uint64))
        self._feature_acc = int(
            sum(_row_hash(i, base.features[i]) for i in range(base.n_nodes)) % _MOD
        )

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The current snapshot."""
        return self._graph

    def fingerprint(self) -> str:
        """Incrementally maintained :func:`content_fingerprint` of the snapshot."""
        return _mix_fingerprint(self._graph.n_nodes, self._edge_acc, self._feature_acc)

    # ------------------------------------------------------------------
    def apply(self, delta: GraphDelta) -> DeltaReport:
        """Apply one delta; returns a report with the touched node ids."""
        graph = self._graph
        n_old = graph.n_nodes
        n_new_nodes = delta.n_new_nodes
        n_total = n_old + n_new_nodes

        if n_new_nodes and delta.new_node_features.shape[1] != graph.n_features:
            raise ValueError(
                f"delta node features have {delta.new_node_features.shape[1]} columns; "
                f"graph has {graph.n_features}"
            )

        # --- features: append new rows, then apply in-place updates --------
        feature_acc = self._feature_acc
        if n_new_nodes or delta.n_feature_updates:
            features = np.vstack([graph.features, delta.new_node_features]) \
                if n_new_nodes else graph.features.copy()
            for offset in range(n_new_nodes):
                feature_acc += _row_hash(n_old + offset, features[n_old + offset])
            update_nodes = delta.feature_update_nodes
            if update_nodes.size:
                if update_nodes.min() < 0 or update_nodes.max() >= n_total:
                    raise ValueError(f"feature update out of range for {n_total} nodes")
                if delta.feature_update_values.shape[1] != graph.n_features:
                    raise ValueError("feature update rows must match the graph feature dimension")
                for node in update_nodes:
                    feature_acc -= _row_hash(int(node), features[int(node)])
                features[update_nodes] = delta.feature_update_values
                for node in update_nodes:
                    feature_acc += _row_hash(int(node), features[int(node)])
            feature_acc %= _MOD
        else:
            features = graph.features

        # --- edges: canonicalize the batch, sorted-merge into the index ---
        new_edges = delta.new_edges
        if new_edges.size:
            out_of_range = (new_edges < 0) | (new_edges >= n_total)
            if out_of_range.any():
                u, v = new_edges[out_of_range.any(axis=1)][0]
                raise ValueError(f"delta edge ({u}, {v}) out of range for {n_total} nodes")
        old_index = graph.edge_index
        # Old keys are sorted for free: columns are lexicographic and
        # v < n_total, so u * n_total + v preserves the order.
        old_keys = old_index[0] * np.int64(n_total) + old_index[1]
        if new_edges.size:
            lo = new_edges.min(axis=1)
            hi = new_edges.max(axis=1)
            keep = lo != hi
            batch_keys = np.unique(lo[keep] * np.int64(n_total) + hi[keep])
            positions = np.searchsorted(old_keys, batch_keys)
            hit = np.zeros(batch_keys.shape[0], dtype=bool)
            inside = positions < old_keys.shape[0]
            hit[inside] = old_keys[positions[inside]] == batch_keys[inside]
            fresh_keys = batch_keys[~hit]
            merged_keys = np.insert(old_keys, positions[~hit], fresh_keys)
        else:
            fresh_keys = np.zeros(0, dtype=np.int64)
            merged_keys = old_keys  # fresh array from the key arithmetic above
        edge_index = np.vstack([merged_keys // n_total, merged_keys % n_total])

        adjacency = self._merged_adjacency(n_old, n_total, fresh_keys)

        fresh_edge_hashes = _edge_hashes(
            np.stack([fresh_keys // n_total, fresh_keys % n_total], axis=1)
        )
        self._edge_acc = (self._edge_acc + int(fresh_edge_hashes.sum(dtype=np.uint64))) % _MOD
        self._feature_acc = feature_acc
        self._graph = Graph.from_canonical(
            n_total,
            edge_index,
            features,
            groups=graph.groups,
            name=graph.name,
            adjacency=adjacency,
        )
        self.version += 1
        appended = np.arange(n_old, n_total, dtype=np.int64)
        touched_topology = np.unique(
            np.concatenate([appended, fresh_keys // n_total, fresh_keys % n_total])
        )
        touched_nodes = np.unique(
            np.concatenate([touched_topology, delta.feature_update_nodes])
        )
        return DeltaReport(
            version=self.version,
            n_new_nodes=n_new_nodes,
            n_new_edges=int(fresh_keys.shape[0]),
            n_feature_updates=delta.n_feature_updates,
            touched_nodes=touched_nodes,
            touched_topology=touched_topology,
        )

    def apply_all(self, deltas: Iterable[GraphDelta]) -> List[DeltaReport]:
        """Apply a sequence of deltas, returning one report per delta."""
        return [self.apply(delta) for delta in deltas]

    # ------------------------------------------------------------------
    def _merged_adjacency(
        self, n_old: int, n_total: int, fresh_keys: np.ndarray
    ) -> Optional[sp.csr_matrix]:
        """Merge the fresh edges into the cached CSR without a global sort.

        The CSR index stream of a canonical adjacency, read row by row, is
        exactly the sorted array of directed keys ``row * n + col``; new
        directed edges are merged into it with binary-searched positions
        and one ``np.insert`` — ``O(E + E_new log E)``, same recipe as the
        edge index.  Returns None (stay lazy) when the current snapshot
        never materialised its adjacency.
        """
        cached = self._graph._adjacency_cache
        if cached is None:
            return None
        old_directed = (
            np.repeat(np.arange(n_old, dtype=np.int64), np.diff(cached.indptr))
            * np.int64(n_total)
            + cached.indices
        )
        u, v = fresh_keys // n_total, fresh_keys % n_total
        fresh_directed = np.sort(np.concatenate([u * np.int64(n_total) + v, v * np.int64(n_total) + u]))
        merged = np.insert(old_directed, np.searchsorted(old_directed, fresh_directed), fresh_directed)
        rows = (merged // n_total).astype(np.int64)
        cols = merged % n_total
        indptr = np.zeros(n_total + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n_total), out=indptr[1:])
        matrix = sp.csr_matrix(
            (np.ones(cols.shape[0], dtype=np.float64), cols, indptr), shape=(n_total, n_total)
        )
        matrix.sort_indices()  # already sorted per row; this just sets the flag
        return matrix
