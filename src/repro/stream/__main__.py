"""Command-line replay driver: ``python -m repro.stream [options]``.

Replays a generated dataset as a transaction stream through the
incremental detector and prints throughput / latency / cache counters.
``--compare-refit`` additionally replays the same stream with
``refit_policy="always"`` (the batch pipeline every tick) and reports the
incremental-vs-refit speedup; ``--json`` dumps the summaries in the
``BENCH_stream.json`` schema consumed by CI.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

import numpy as np

from repro.core import TPGrGADConfig
from repro.datasets.stream import make_burst_stream, make_event_stream
from repro.gae import MHGAEConfig
from repro.gcl import TPGCLConfig
from repro.obs.logging import get_logger, setup_logging
from repro.sampling import SamplerConfig
from repro.stream.incremental import StreamConfig
from repro.stream.replay import ReplayDriver, replay_event_stream, write_summary_json

log = get_logger("stream")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.stream",
        description="Replay a dataset as a transaction stream through incremental TP-GrGAD.",
    )
    parser.add_argument("--dataset", default="simml", help="dataset name (see repro.datasets)")
    parser.add_argument("--scale", type=float, default=0.3, help="dataset scale vs published size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ticks", type=int, default=10, help="number of stream ticks")
    parser.add_argument("--base-fraction", type=float, default=0.8,
                        help="share of background edges already present in the base snapshot")
    parser.add_argument("--burst", action="store_true",
                        help="plant the largest anomaly group mid-stream and measure detection lag")
    parser.add_argument("--policy", choices=["budget", "always", "never"], default="budget")
    parser.add_argument("--drift-budget", type=float, default=0.25)
    parser.add_argument("--mhgae-epochs", type=int, default=25)
    parser.add_argument("--tpgcl-epochs", type=int, default=6)
    parser.add_argument("--no-finalize", action="store_true",
                        help="skip the final flush refit (final result stays incremental)")
    parser.add_argument("--compare-refit", action="store_true",
                        help="also replay with refit_policy=always and report the speedup")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the summaries as JSON (BENCH_stream.json schema)")
    parser.add_argument("--artifact", metavar="PATH", default=None,
                        help="warm-start the detector from a saved pipeline artifact "
                             "(repro.persist) instead of an initial training refit")
    parser.add_argument("--save-artifact", metavar="PATH", default=None,
                        help="save the detector's fitted pipeline as an artifact after the replay")
    return parser


def pipeline_config(args: argparse.Namespace) -> TPGrGADConfig:
    return TPGrGADConfig(
        mhgae=MHGAEConfig(epochs=args.mhgae_epochs, hidden_dim=32, embedding_dim=16),
        sampler=SamplerConfig(max_candidates=150, max_anchor_pairs=200),
        tpgcl=TPGCLConfig(epochs=args.tpgcl_epochs, hidden_dim=32, embedding_dim=32, batch_size=24),
        max_anchors=30,
        seed=args.seed,
    )


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging()
    maker = make_burst_stream if args.burst else make_event_stream
    stream = maker(
        dataset=args.dataset,
        scale=args.scale,
        seed=args.seed,
        n_ticks=args.ticks,
        base_edge_fraction=args.base_fraction,
    )
    log.info(
        "stream '%s': base %d nodes / %d edges -> final %d nodes / %d edges over %d ticks",
        stream.name, stream.base.n_nodes, stream.base.n_edges,
        stream.final.n_nodes, stream.final.n_edges, stream.n_ticks,
    )

    config = None if args.artifact else pipeline_config(args)
    if args.artifact:
        log.info(
            "using pipeline config stored in artifact '%s' "
            "(--mhgae-epochs/--tpgcl-epochs and the pipeline seed are taken "
            "from the artifact, not the CLI flags)",
            args.artifact,
        )
    stream_config = StreamConfig(refit_policy=args.policy, drift_budget=args.drift_budget)
    driver = ReplayDriver.for_stream(stream, config, stream_config, artifact=args.artifact)
    summary = driver.run_stream(stream, finalize=not args.no_finalize)
    print(summary.render())
    summaries = [summary]

    if args.save_artifact:
        # After a refit (mid-stream or the flush) the driver's inner
        # pipeline holds the models that scored the final snapshot —
        # persist exactly those.  If no refit ever ran (e.g. --artifact
        # with --no-finalize), save() re-exports the loaded state; say so
        # instead of claiming a fresh fit.
        path = driver.detector.detector.save(args.save_artifact)
        if driver.detector.n_refits > 0:
            log.info("saved fitted pipeline artifact to %s", path)
        else:
            log.info("re-exported loaded artifact state to %s (no refit ran this replay)", path)

    extra = {}
    if args.compare_refit and args.policy != "always":
        oracle = replay_event_stream(
            stream,
            driver.detector.config,  # same config even when loaded from an artifact
            replace(stream_config, refit_policy="always"),
            finalize=not args.no_finalize,
        )
        oracle.name = f"{stream.name}-refit-per-tick"
        print(oracle.render())
        summaries.append(oracle)
        if summary.tick_seconds and oracle.tick_seconds:
            speedup = float(np.mean(oracle.tick_seconds) / max(np.mean(summary.tick_seconds), 1e-12))
            extra["incremental_vs_refit_speedup"] = round(speedup, 2)
            print(f"incremental-vs-refit mean tick speedup: {speedup:.1f}x")

    if args.json:
        write_summary_json(args.json, summaries, extra=extra)
        log.info("wrote %s", args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
