"""TP-GrGAD: Topology Pattern Enhanced Unsupervised Group-level Graph Anomaly Detection.

A pure-Python (numpy / scipy / networkx) reproduction of the ICDE 2024 paper
*"Graph Anomaly Detection at Group Level: A Topology Pattern Enhanced
Unsupervised Approach"*.

The package is organised around the three stages of the framework:

1. **Anchor node localization** — :mod:`repro.gae` (Multi-Hop Graph
   AutoEncoder, MH-GAE).
2. **Candidate group sampling** — :mod:`repro.sampling` (path / tree / cycle
   searches from anchor nodes, Algorithm 1 of the paper).
3. **Candidate group discrimination** — :mod:`repro.gcl` (Topology
   Pattern-based Graph Contrastive Learning, TPGCL) followed by the
   unsupervised outlier detectors in :mod:`repro.outlier`.

The end-to-end detector is :class:`repro.core.TPGrGAD`.  Baselines from the
paper's evaluation (DOMINANT, DeepAE, ComGA, ONE, DeepFD, AS-GAE) live in
:mod:`repro.baselines`, datasets in :mod:`repro.datasets`, and the
experiment harness that regenerates every table and figure in
:mod:`repro.experiments`.
"""

__version__ = "1.0.0"

# Public names are imported lazily (PEP 562) so that importing ``repro``
# stays cheap and sub-packages can be used independently.
_LAZY_ATTRS = {
    "TPGrGAD": ("repro.core", "TPGrGAD"),
    "TPGrGADConfig": ("repro.core", "TPGrGADConfig"),
    "GroupDetectionResult": ("repro.core", "GroupDetectionResult"),
    "Graph": ("repro.graph", "Graph"),
    "completeness_ratio": ("repro.metrics", "completeness_ratio"),
    "group_f1_score": ("repro.metrics", "group_f1_score"),
    "group_auc": ("repro.metrics", "group_auc"),
    "GraphDelta": ("repro.stream", "GraphDelta"),
    "StreamingGraph": ("repro.stream", "StreamingGraph"),
    "IncrementalTPGrGAD": ("repro.stream", "IncrementalTPGrGAD"),
    "StreamConfig": ("repro.stream", "StreamConfig"),
    "ParallelExecutor": ("repro.parallel", "ParallelExecutor"),
    "parallel_fit_detect_many": ("repro.parallel", "parallel_fit_detect_many"),
    "PipelineState": ("repro.persist", "PipelineState"),
    "save_pipeline": ("repro.persist", "save_pipeline"),
    "load_pipeline": ("repro.persist", "load_pipeline"),
    "to_native": ("repro.persist", "to_native"),
    "ModelRegistry": ("repro.serve", "ModelRegistry"),
    "ScoringServer": ("repro.serve", "ScoringServer"),
    "ScoringClient": ("repro.serve", "ScoringClient"),
    "ServeConfig": ("repro.serve", "ServeConfig"),
    "Tracer": ("repro.obs", "Tracer"),
    "get_tracer": ("repro.obs", "get_tracer"),
    "set_tracer": ("repro.obs", "set_tracer"),
    "use_tracer": ("repro.obs", "use_tracer"),
    "ProvenanceLog": ("repro.obs", "ProvenanceLog"),
    "verify_record": ("repro.obs", "verify_record"),
    "verify_log": ("repro.obs", "verify_log"),
}


def __getattr__(name):
    if name in _LAZY_ATTRS:
        import importlib

        module_name, attr = _LAZY_ATTRS[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro' has no attribute '{name}'")

__all__ = [
    "TPGrGAD",
    "TPGrGADConfig",
    "GroupDetectionResult",
    "Graph",
    "completeness_ratio",
    "group_f1_score",
    "group_auc",
    "GraphDelta",
    "StreamingGraph",
    "IncrementalTPGrGAD",
    "StreamConfig",
    "ParallelExecutor",
    "parallel_fit_detect_many",
    "PipelineState",
    "save_pipeline",
    "load_pipeline",
    "to_native",
    "ModelRegistry",
    "ScoringServer",
    "ScoringClient",
    "ServeConfig",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "ProvenanceLog",
    "verify_record",
    "verify_log",
    "__version__",
]
