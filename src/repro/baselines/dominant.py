"""DOMINANT (Ding et al., SDM 2019): deep anomaly detection on attributed networks.

A GCN encoder with an inner-product structure decoder and an attribute
decoder; per-node anomaly scores are the weighted reconstruction errors of
Eqn. (1).  This is exactly the vanilla :class:`repro.gae.GraphAutoEncoder`
with the plain adjacency as reconstruction target, wrapped into the
Gr-GAD group-extraction adapter.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaselineConfig, NodeScoringBaseline
from repro.gae import GAEConfig, GraphAutoEncoder
from repro.graph import Graph


class Dominant(NodeScoringBaseline):
    """DOMINANT generalised to group-level detection."""

    name = "DOMINANT"

    def __init__(self, config: Optional[BaselineConfig] = None, structure_weight: float = 0.6) -> None:
        super().__init__(config)
        self.structure_weight = structure_weight
        self._model: Optional[GraphAutoEncoder] = None

    def node_scores(self, graph: Graph) -> np.ndarray:
        config = self.config
        self._model = GraphAutoEncoder(
            GAEConfig(
                hidden_dim=config.hidden_dim,
                embedding_dim=config.embedding_dim,
                epochs=config.epochs,
                learning_rate=config.learning_rate,
                structure_weight=self.structure_weight,
                sparse_propagation=True,
                seed=config.seed,
            )
        )
        self._model.fit(graph)
        return self._model.score_nodes()
