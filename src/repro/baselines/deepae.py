"""DeepAE: a deep attribute autoencoder baseline.

An MLP autoencoder on node attributes only (no graph structure).  Nodes
whose attributes cannot be reconstructed from the low-dimensional manifold
of normal behaviour receive high anomaly scores.  It represents the
structure-agnostic end of the GAE family in the Table III comparison.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaselineConfig, NodeScoringBaseline
from repro.graph import Graph
from repro.nn import Adam, MLP
from repro.tensor import Tensor, no_grad


class DeepAE(NodeScoringBaseline):
    """Attribute-only deep autoencoder generalised to group-level detection."""

    name = "DeepAE"

    def __init__(self, config: Optional[BaselineConfig] = None) -> None:
        super().__init__(config)
        self._encoder: Optional[MLP] = None
        self._decoder: Optional[MLP] = None

    def node_scores(self, graph: Graph) -> np.ndarray:
        config = self.config
        rng = np.random.default_rng(config.seed)
        features = graph.features
        low, high = features.min(axis=0), features.max(axis=0)
        scaled = (features - low) / np.maximum(high - low, 1e-9)

        self._encoder = MLP([graph.n_features, config.hidden_dim, config.embedding_dim], rng)
        self._decoder = MLP([config.embedding_dim, config.hidden_dim, graph.n_features], rng)
        optimizer = Adam(self._encoder.parameters() + self._decoder.parameters(), lr=config.learning_rate)

        inputs = Tensor(scaled)
        for _ in range(config.epochs):
            optimizer.zero_grad()
            reconstructed = self._decoder(self._encoder(inputs))
            loss = ((reconstructed - inputs) ** 2).mean()
            loss.backward()
            optimizer.step()

        with no_grad():
            reconstructed = self._decoder(self._encoder(inputs)).numpy()
        return np.linalg.norm(scaled - reconstructed, axis=1)
