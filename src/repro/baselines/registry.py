"""Name-based construction of baseline detectors (used by the experiment harness)."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.baselines.asgae import ASGAE
from repro.baselines.base import BaselineConfig, NodeScoringBaseline
from repro.baselines.comga import ComGA
from repro.baselines.deepae import DeepAE
from repro.baselines.deepfd import DeepFD
from repro.baselines.dominant import Dominant
from repro.baselines.one import ONE

_FACTORIES: Dict[str, Callable[..., NodeScoringBaseline]] = {
    "dominant": Dominant,
    "deepae": DeepAE,
    "comga": ComGA,
    "one": ONE,
    "deepfd": DeepFD,
    "as-gae": ASGAE,
}

_ALIASES = {"asgae": "as-gae"}


def available_baselines() -> List[str]:
    """Names accepted by :func:`get_baseline`."""
    return sorted(_FACTORIES)


def get_baseline(name: str, config: Optional[BaselineConfig] = None) -> NodeScoringBaseline:
    """Instantiate a baseline by name (case insensitive)."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _FACTORIES:
        raise KeyError(f"unknown baseline '{name}'; available: {available_baselines()}")
    return _FACTORIES[key](config)
