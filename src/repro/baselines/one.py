"""ONE (Bandyopadhyay et al., AAAI 2019): Outlier-aware Network Embedding.

ONE jointly factorises the adjacency and attribute matrices while learning
per-node outlier weights: nodes that fit neither the structural nor the
attribute factorisation receive large outlier scores and are down-weighted
in the objective.  This reproduction keeps the alternating-least-squares
flavour of the original with the structural/attribute residuals providing
the outlier scores.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaselineConfig, NodeScoringBaseline
from repro.graph import Graph


class ONE(NodeScoringBaseline):
    """Outlier-aware joint matrix factorisation baseline."""

    name = "ONE"

    def __init__(self, config: Optional[BaselineConfig] = None, n_iterations: int = 15) -> None:
        super().__init__(config)
        self.n_iterations = n_iterations

    def node_scores(self, graph: Graph) -> np.ndarray:
        config = self.config
        rng = np.random.default_rng(config.seed)
        rank = max(2, config.embedding_dim)

        adjacency = graph.adjacency(sparse=False)
        features = graph.features
        low, high = features.min(axis=0), features.max(axis=0)
        attributes = (features - low) / np.maximum(high - low, 1e-9)

        n = graph.n_nodes
        structural_basis = rng.normal(scale=0.1, size=(n, rank))
        structural_context = rng.normal(scale=0.1, size=(rank, n))
        attribute_basis = rng.normal(scale=0.1, size=(n, rank))
        attribute_context = rng.normal(scale=0.1, size=(rank, attributes.shape[1]))
        outlier_weights = np.ones(n) / n

        identity = np.eye(rank)
        for _ in range(self.n_iterations):
            confidence = -np.log(np.clip(outlier_weights, 1e-12, 1.0))
            weights = np.diag(confidence)

            # Weighted ridge updates for the two factorisations.
            gram = structural_context @ structural_context.T + 1e-3 * identity
            structural_basis = (adjacency @ structural_context.T) @ np.linalg.inv(gram)
            gram = structural_basis.T @ weights @ structural_basis + 1e-3 * identity
            structural_context = np.linalg.inv(gram) @ structural_basis.T @ weights @ adjacency

            gram = attribute_context @ attribute_context.T + 1e-3 * identity
            attribute_basis = (attributes @ attribute_context.T) @ np.linalg.inv(gram)
            gram = attribute_basis.T @ weights @ attribute_basis + 1e-3 * identity
            attribute_context = np.linalg.inv(gram) @ attribute_basis.T @ weights @ attributes

            structural_residual = np.linalg.norm(adjacency - structural_basis @ structural_context, axis=1)
            attribute_residual = np.linalg.norm(attributes - attribute_basis @ attribute_context, axis=1)
            combined = structural_residual / (structural_residual.sum() + 1e-12) + attribute_residual / (
                attribute_residual.sum() + 1e-12
            )
            outlier_weights = combined / combined.sum()

        return outlier_weights
