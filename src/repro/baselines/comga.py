"""ComGA (Luo et al., WSDM 2022): community-aware attributed graph anomaly detection.

ComGA couples a community-membership autoencoder with a GAE so that
anomalies are judged against their community rather than the whole graph.
This reproduction keeps that essential idea: greedy-modularity communities
are detected, each node's features are augmented with its community's mean
feature vector (the community signal the tailored GCN injects in the
original), and a GAE is trained on the augmented attributed graph; node
scores are the usual weighted reconstruction errors.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from repro.baselines.base import BaselineConfig, NodeScoringBaseline
from repro.gae import GAEConfig, GraphAutoEncoder
from repro.graph import Graph, graph_to_networkx


class ComGA(NodeScoringBaseline):
    """Community-aware GAE baseline generalised to group-level detection."""

    name = "ComGA"

    def __init__(self, config: Optional[BaselineConfig] = None, structure_weight: float = 0.5) -> None:
        super().__init__(config)
        self.structure_weight = structure_weight
        self._model: Optional[GraphAutoEncoder] = None
        self.communities_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _detect_communities(self, graph: Graph) -> np.ndarray:
        nx_graph = graph_to_networkx(graph)
        communities = nx.algorithms.community.greedy_modularity_communities(nx_graph)
        labels = np.zeros(graph.n_nodes, dtype=int)
        for index, members in enumerate(communities):
            for node in members:
                labels[node] = index
        return labels

    def _augment_features(self, graph: Graph, communities: np.ndarray) -> Graph:
        community_means = np.zeros_like(graph.features)
        for community in np.unique(communities):
            members = np.flatnonzero(communities == community)
            community_means[members] = graph.features[members].mean(axis=0)
        augmented = np.hstack([graph.features, community_means])
        return graph.with_features(augmented)

    # ------------------------------------------------------------------
    def node_scores(self, graph: Graph) -> np.ndarray:
        config = self.config
        self.communities_ = self._detect_communities(graph)
        augmented_graph = self._augment_features(graph, self.communities_)

        self._model = GraphAutoEncoder(
            GAEConfig(
                hidden_dim=config.hidden_dim,
                embedding_dim=config.embedding_dim,
                epochs=config.epochs,
                learning_rate=config.learning_rate,
                structure_weight=self.structure_weight,
                sparse_propagation=True,
                seed=config.seed,
            )
        )
        self._model.fit(augmented_graph)
        return self._model.score_nodes()
