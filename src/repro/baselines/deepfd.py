"""DeepFD (Wang et al., ICDM 2018): deep structure learning for fraud detection.

DeepFD embeds users by reconstructing a behaviour-similarity matrix with a
deep autoencoder and then clusters suspicious embeddings into fraud blocks.
This reproduction follows the same two stages:

1. an MLP autoencoder reconstructs each node's row of the cosine
   behaviour-similarity matrix (computed from attributes and neighbourhood
   indicator vectors); per-node suspiciousness is the reconstruction error;
2. suspicious nodes are clustered by single-linkage over embedding distance
   (a DBSCAN-like grouping); each cluster becomes a predicted fraud group
   scored by its mean node suspiciousness.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
from scipy.spatial.distance import cdist

from repro.baselines.base import BaselineConfig, NodeScoringBaseline
from repro.graph import Graph, Group
from repro.nn import Adam, MLP
from repro.tensor import Tensor, no_grad


class DeepFD(NodeScoringBaseline):
    """Deep structure learning baseline (Sub-GAD family)."""

    name = "DeepFD"

    def __init__(self, config: Optional[BaselineConfig] = None, similarity_rank: int = 64) -> None:
        super().__init__(config)
        self.similarity_rank = similarity_rank
        self._embeddings: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _behaviour_similarity(self, graph: Graph) -> np.ndarray:
        """Cosine similarity of [attributes ‖ neighbourhood indicator] rows."""
        adjacency = graph.adjacency(sparse=False)
        features = graph.features
        low, high = features.min(axis=0), features.max(axis=0)
        scaled = (features - low) / np.maximum(high - low, 1e-9)
        behaviour = np.hstack([scaled, adjacency])
        norms = np.linalg.norm(behaviour, axis=1, keepdims=True)
        normalized = behaviour / np.maximum(norms, 1e-12)
        similarity = normalized @ normalized.T
        # Reduce to the top singular directions so the autoencoder input stays
        # manageable on larger graphs (rank-limited similarity signature).
        if similarity.shape[1] > self.similarity_rank:
            # Random projection preserves pairwise structure well enough here.
            rng = np.random.default_rng(self.config.seed)
            projection = rng.normal(size=(similarity.shape[1], self.similarity_rank))
            projection /= np.sqrt(self.similarity_rank)
            similarity = similarity @ projection
        return similarity

    # ------------------------------------------------------------------
    def node_scores(self, graph: Graph) -> np.ndarray:
        config = self.config
        rng = np.random.default_rng(config.seed)
        similarity = self._behaviour_similarity(graph)

        encoder = MLP([similarity.shape[1], config.hidden_dim, config.embedding_dim], rng)
        decoder = MLP([config.embedding_dim, config.hidden_dim, similarity.shape[1]], rng)
        optimizer = Adam(encoder.parameters() + decoder.parameters(), lr=config.learning_rate)

        inputs = Tensor(similarity)
        for _ in range(config.epochs):
            optimizer.zero_grad()
            reconstructed = decoder(encoder(inputs))
            loss = ((reconstructed - inputs) ** 2).mean()
            loss.backward()
            optimizer.step()

        with no_grad():
            self._embeddings = encoder(inputs).numpy()
            reconstructed = decoder(Tensor(self._embeddings)).numpy()
        return np.linalg.norm(similarity - reconstructed, axis=1)

    # ------------------------------------------------------------------
    def extract_groups(self, graph: Graph, scores: np.ndarray) -> List[Group]:
        """Cluster suspicious nodes by embedding distance (single linkage)."""
        scores = np.asarray(scores, dtype=np.float64)
        threshold = np.quantile(scores, 1.0 - self.config.contamination)
        suspicious = np.flatnonzero(scores >= threshold)
        if len(suspicious) < self.config.min_group_size or self._embeddings is None:
            return super().extract_groups(graph, scores)

        embeddings = self._embeddings[suspicious]
        distances = cdist(embeddings, embeddings)
        cutoff = np.percentile(distances[distances > 0], 20) if (distances > 0).any() else 0.0

        # Single-linkage clustering via union-find over close pairs.
        parent = list(range(len(suspicious)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for i in range(len(suspicious)):
            for j in range(i + 1, len(suspicious)):
                if distances[i, j] <= cutoff:
                    ri, rj = find(i), find(j)
                    if ri != rj:
                        parent[ri] = rj

        clusters: dict = {}
        for index in range(len(suspicious)):
            clusters.setdefault(find(index), []).append(int(suspicious[index]))

        groups: List[Group] = []
        for members in clusters.values():
            if len(members) < self.config.min_group_size:
                continue
            member_set = set(members)
            edges = [(u, v) for u, v in graph.edges if u in member_set and v in member_set]
            group = Group(nodes=frozenset(members), edges=frozenset(edges), label=self.name)
            groups.append(group.with_score(float(scores[members].mean())))
        return groups if groups else super().extract_groups(graph, scores)
