"""AS-GAE (Zhang & Zhao, ICDM 2022): unsupervised deep subgraph anomaly detection.

AS-GAE locates anomalous subgraphs by (1) scoring nodes with a GAE whose
loss separates a location-aware structure term from an attribute term and
(2) extracting connected components of the anomalous node set as the
predicted subgraphs.  Group scores aggregate the member node scores — the
paper points out this aggregation (rather than any group-level
representation) is why AS-GAE's F1/AUC lag despite reasonable CR.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaselineConfig, NodeScoringBaseline
from repro.gae import GAEConfig, GraphAutoEncoder
from repro.graph import Graph


class ASGAE(NodeScoringBaseline):
    """Anomalous-subgraph GAE baseline (Sub-GAD family)."""

    name = "AS-GAE"

    def __init__(self, config: Optional[BaselineConfig] = None) -> None:
        # AS-GAE flags a slightly larger node pool than the N-GAD baselines
        # (its subgraph extraction is meant to be recall-oriented).
        super().__init__(config or BaselineConfig(contamination=0.18))
        self._structure_model: Optional[GraphAutoEncoder] = None
        self._attribute_model: Optional[GraphAutoEncoder] = None

    def node_scores(self, graph: Graph) -> np.ndarray:
        config = self.config
        # Two GAEs emphasising structure and attributes respectively; the
        # final score is the average of their normalised errors, mirroring
        # AS-GAE's split loss.
        self._structure_model = GraphAutoEncoder(
            GAEConfig(
                hidden_dim=config.hidden_dim,
                embedding_dim=config.embedding_dim,
                epochs=config.epochs,
                learning_rate=config.learning_rate,
                structure_weight=0.9,
                sparse_propagation=True,
                seed=config.seed,
            )
        )
        self._attribute_model = GraphAutoEncoder(
            GAEConfig(
                hidden_dim=config.hidden_dim,
                embedding_dim=config.embedding_dim,
                epochs=config.epochs,
                learning_rate=config.learning_rate,
                structure_weight=0.1,
                sparse_propagation=True,
                seed=config.seed + 1,
            )
        )
        self._structure_model.fit(graph)
        self._attribute_model.fit(graph)
        structure_scores = self._structure_model.score_normalized()
        attribute_scores = self._attribute_model.score_normalized()
        return 0.5 * structure_scores + 0.5 * attribute_scores
