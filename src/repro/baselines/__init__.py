"""Baseline detectors used in the paper's evaluation (Sec. VII-A3).

Node-level (N-GAD) baselines — DOMINANT, DeepAE, ComGA, ONE — produce
per-node anomaly scores; they are generalised to the Gr-GAD task in the
style of AS-GAE: the top-scoring nodes are grouped by connected-component
detection and each component becomes a predicted group whose score is the
mean of its node scores.

Subgraph-level (Sub-GAD) baselines — DeepFD and AS-GAE — follow their
original two-stage designs (node scoring followed by clustering /
connected-component extraction).
"""

from repro.baselines.base import NodeScoringBaseline, BaselineConfig
from repro.baselines.dominant import Dominant
from repro.baselines.deepae import DeepAE
from repro.baselines.comga import ComGA
from repro.baselines.one import ONE
from repro.baselines.deepfd import DeepFD
from repro.baselines.asgae import ASGAE
from repro.baselines.registry import get_baseline, available_baselines

__all__ = [
    "NodeScoringBaseline",
    "BaselineConfig",
    "Dominant",
    "DeepAE",
    "ComGA",
    "ONE",
    "DeepFD",
    "ASGAE",
    "get_baseline",
    "available_baselines",
]
