"""Shared machinery for node-scoring baselines generalised to Gr-GAD.

Every baseline implements ``node_scores(graph)``; the base class turns
those scores into predicted groups the same way the paper does for N-GAD
methods (Sec. VII-A3): take the top-``contamination`` fraction of nodes,
split them into connected components, keep components with at least
``min_group_size`` nodes, and score each component by the mean node score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core import GroupDetectionResult
from repro.graph import Graph, Group
from repro.graph.builders import groups_from_components


@dataclass
class BaselineConfig:
    """Hyperparameters shared by all baselines.

    ``contamination`` is the fraction of nodes flagged as anomalous before
    group extraction; ``group_contamination`` is the fraction of extracted
    groups reported as anomalous (mirrors the τ threshold of Definition 1).
    """

    contamination: float = 0.12
    group_contamination: float = 0.5
    min_group_size: int = 2
    epochs: int = 60
    hidden_dim: int = 32
    embedding_dim: int = 16
    learning_rate: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.contamination < 1.0:
            raise ValueError("contamination must be in (0, 1)")
        if not 0.0 < self.group_contamination <= 1.0:
            raise ValueError("group_contamination must be in (0, 1]")


class NodeScoringBaseline:
    """Base class: derive groups from per-node anomaly scores."""

    name = "baseline"

    def __init__(self, config: Optional[BaselineConfig] = None) -> None:
        self.config = config or BaselineConfig()

    # ------------------------------------------------------------------
    def node_scores(self, graph: Graph) -> np.ndarray:
        """Per-node anomaly scores (larger = more anomalous)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def extract_groups(self, graph: Graph, scores: np.ndarray) -> List[Group]:
        """AS-GAE-style group extraction from thresholded node scores."""
        scores = np.asarray(scores, dtype=np.float64)
        threshold = np.quantile(scores, 1.0 - self.config.contamination)
        anomalous_nodes = np.flatnonzero(scores >= threshold)
        groups = groups_from_components(
            graph, anomalous_nodes, min_size=self.config.min_group_size, label=self.name
        )
        return [
            group.with_score(float(scores[list(group.nodes)].mean()))
            for group in groups
        ]

    # ------------------------------------------------------------------
    def fit_detect(self, graph: Graph, threshold: Optional[float] = None) -> GroupDetectionResult:
        """Run the baseline end-to-end and return a Gr-GAD style result."""
        node_scores = self.node_scores(graph)
        groups = self.extract_groups(graph, node_scores)
        group_scores = np.array([group.score for group in groups], dtype=np.float64)

        if len(groups) == 0:
            return GroupDetectionResult(
                candidate_groups=[],
                scores=np.array([]),
                threshold=0.0,
                anomalous_groups=[],
                node_scores=node_scores,
                method=self.name,
            )

        if threshold is None:
            threshold = float(np.quantile(group_scores, 1.0 - self.config.group_contamination))
        anomalous = [group for group in groups if group.score >= threshold]
        return GroupDetectionResult(
            candidate_groups=groups,
            scores=group_scores,
            threshold=float(threshold),
            anomalous_groups=anomalous,
            node_scores=node_scores,
            method=self.name,
        )
