"""Configuration of the full TP-GrGAD pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.gae import MHGAEConfig
from repro.gcl import TPGCLConfig
from repro.sampling import SamplerConfig
from repro.seeding import derive_stage_seeds


@dataclass
class TPGrGADConfig:
    """All knobs of the three-stage pipeline in one place.

    Attributes
    ----------
    mhgae:
        Multi-Hop GAE hyperparameters (anchor localization stage).
    sampler:
        Candidate-group sampling hyperparameters (Algorithm 1).
    tpgcl:
        Contrastive-learning hyperparameters (Algorithm 2 + Eqn. 8).
    anchor_fraction:
        Fraction of highest-error nodes kept as anchors; the paper uses the
        top 10%.
    max_anchors:
        Hard cap on the anchor count so the quadratic pair enumeration in
        sampling stays cheap on large graphs.
    detector:
        Name of the outlier detector applied to group embeddings
        (``ecod`` by default, as in the paper; see
        :func:`repro.outlier.available_detectors`).
    contamination:
        Expected fraction of candidate groups that are anomalous; used to
        derive the score threshold τ when none is given explicitly.
    use_tpgcl:
        When False the TPGCL stage is skipped and candidate groups are
        represented by their mean node features — the "w/o TPGCL" ablation
        of Table V.
    cache_size:
        Maximum number of per-graph stage outputs (anchors, candidates,
        fitted models, embeddings) kept in the detector's LRU cache for
        :meth:`~repro.core.TPGrGAD.fit_detect_many`.  Cached entries pin
        their graph and fitted models in memory, so keep this small when
        scoring streams of large graphs; ``0`` disables caching entirely.
    seed:
        Master random seed.  Stage configs whose ``seed`` was left unset
        (``None``) receive *distinct* per-stage streams derived from this
        master via :func:`repro.seeding.derive_stage_seeds`; a stage seed
        set explicitly — including ``0`` — always wins and is never
        rewritten.
    """

    mhgae: MHGAEConfig = field(default_factory=lambda: MHGAEConfig(epochs=60))
    sampler: SamplerConfig = field(default_factory=SamplerConfig)
    tpgcl: TPGCLConfig = field(default_factory=lambda: TPGCLConfig(epochs=20))
    anchor_fraction: float = 0.1
    max_anchors: int = 40
    detector: str = "ecod"
    contamination: float = 0.2
    use_tpgcl: bool = True
    cache_size: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.anchor_fraction <= 1.0:
            raise ValueError("anchor_fraction must be in (0, 1]")
        if not 0.0 < self.contamination < 1.0:
            raise ValueError("contamination must be in (0, 1)")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0 (0 disables caching)")
        # Fill unset (None) stage seeds with distinct streams derived from
        # the master seed.  ``None`` is the unset sentinel: an explicit
        # stage seed — including 0 — always wins.  The names of the stages
        # that were derived are recorded (as a plain attribute, not a
        # dataclass field) so the parallel executor can re-derive exactly
        # those stages when it assigns per-item child seeds.
        derived = derive_stage_seeds(self.seed)
        derived_stages = []
        for stage in ("mhgae", "sampler", "tpgcl"):
            if getattr(self, stage).seed is None:
                getattr(self, stage).seed = derived[stage]
                derived_stages.append(stage)
        self.derived_stage_seeds: Tuple[str, ...] = tuple(derived_stages)

    def content_hash(self) -> str:
        """Stable content hash of every hyperparameter of every stage.

        The digest is taken over the canonical JSON form of
        :func:`repro.persist.config_to_dict` — exactly what an artifact
        manifest stores — so two configs share a hash precisely when they
        would serialize to identical manifests (and therefore run
        identical pipelines).  It is the single config-identity key used
        by the pipeline stage cache, the artifact manifest and the serve
        registry; unlike ``repr(config)`` it is insensitive to dataclass
        field ordering cosmetics and stable across processes.
        """
        import hashlib
        import json

        from repro.persist import config_to_dict

        payload = json.dumps(config_to_dict(self), sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()

    def reseed(self, seed: int) -> "TPGrGADConfig":
        """A deep copy of this config re-derived from a new master ``seed``.

        Only the stages whose seeds were *derived* (left unset when this
        config was built) follow the new master; explicitly pinned stage
        seeds are preserved.  This is the per-item derivation used by the
        parallel executor: the result depends on ``seed`` alone, never on
        how a batch was sharded.
        """
        import copy

        clone = copy.deepcopy(self)
        clone.seed = int(seed)
        derived = derive_stage_seeds(clone.seed)
        for stage in self.derived_stage_seeds:
            getattr(clone, stage).seed = derived[stage]
        return clone

    @classmethod
    def fast(cls, seed: int = 0) -> "TPGrGADConfig":
        """A lightweight configuration for tests, examples and CI."""
        return cls(
            mhgae=MHGAEConfig(epochs=25, hidden_dim=32, embedding_dim=16),
            sampler=SamplerConfig(max_candidates=120, max_anchor_pairs=150),
            tpgcl=TPGCLConfig(epochs=8, hidden_dim=32, embedding_dim=32, batch_size=24),
            max_anchors=25,
            seed=seed,
        )

    def accelerated(
        self,
        dtype: str = "float32",
        batch_views: bool = True,
        patience: int = 0,
        min_delta: float = 0.0,
    ) -> "TPGrGADConfig":
        """A deep copy of this config switched to the fast training engine.

        Sets the training ``dtype`` on both learned stages, enables
        block-diagonal view batching in TPGCL, and (optionally) turns on
        convergence-based early stopping.  The receiver is untouched: the
        float64 reference config and its accelerated twin can run side by
        side, which is exactly what the parity tests and the training
        benchmark do.  Note the two configs hash differently
        (``content_hash`` covers every field), so artifacts and cache
        entries of the two modes never collide.
        """
        import copy

        clone = copy.deepcopy(self)
        for stage in (clone.mhgae, clone.tpgcl):
            stage.dtype = dtype
            stage.patience = patience
            stage.min_delta = min_delta
        clone.tpgcl.batch_views = batch_views
        return clone
