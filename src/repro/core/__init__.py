"""The end-to-end TP-GrGAD detector (Fig. 2 of the paper)."""

from repro.core.config import TPGrGADConfig
from repro.core.result import GroupDetectionResult
from repro.core.pipeline import TPGrGAD

__all__ = ["TPGrGAD", "TPGrGADConfig", "GroupDetectionResult"]
