"""The three-stage TP-GrGAD pipeline (Fig. 2 of the paper).

1. **Anchor node localization** — fit MH-GAE on the whole graph, take the
   top-``anchor_fraction`` of nodes by reconstruction error as anchors.
2. **Candidate group sampling** — run Algorithm 1 (path / tree / cycle
   searches) from the anchors to collect candidate groups.
3. **Candidate group discrimination** — train TPGCL on the candidates
   (PPA/PBA views, Eqn. 8 objective), embed each candidate, score the
   embeddings with an unsupervised outlier detector (ECOD by default) and
   flag groups whose score exceeds the threshold τ.

Besides the single-graph :meth:`TPGrGAD.fit_detect`, the pipeline exposes
a batched :meth:`TPGrGAD.fit_detect_many` that scores a list of graphs
through one call.  Stage outputs (anchors, candidates, group embeddings)
are cached per ``(graph fingerprint, config)`` so repeated graphs — the
common case in Table-III-style experiment grids sweeping thresholds or
detectors — skip the expensive training stages entirely.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import TPGrGADConfig
from repro.core.result import GroupDetectionResult
from repro.gae import MultiHopGAE, select_anchor_nodes
from repro.gcl import TPGCL
from repro.graph import Graph, Group
from repro.obs.tracer import get_tracer
from repro.outlier import get_detector
from repro.sampling import CandidateGroupSampler


@dataclass
class _StageOutputs:
    """Everything the deterministic training stages produce for one graph.

    The fitted stage models ride along so a cache hit can restore the
    detector's ``mhgae`` / ``tpgcl`` attributes to the models that actually
    produced the returned result.
    """

    anchor_nodes: np.ndarray
    node_scores: Optional[np.ndarray]
    candidates: List[Group]
    embeddings: Optional[np.ndarray]
    mhgae: Optional[MultiHopGAE]
    tpgcl: Optional[TPGCL]


class TPGrGAD:
    """Topology Pattern Enhanced Unsupervised Group-level Graph Anomaly Detection.

    Examples
    --------
    >>> from repro.datasets import make_example_graph
    >>> detector = TPGrGAD(TPGrGADConfig.fast())
    >>> result = detector.fit_detect(make_example_graph())
    >>> result.n_candidates > 0
    True
    """

    def __init__(self, config: Optional[TPGrGADConfig] = None) -> None:
        self.config = config or TPGrGADConfig()
        self.mhgae: Optional[MultiHopGAE] = None
        self.tpgcl: Optional[TPGCL] = None
        self._graph: Optional[Graph] = None
        self._stage_cache: "OrderedDict[Tuple[str, str], _StageOutputs]" = OrderedDict()
        self.cache_hits: int = 0
        self.cache_misses: int = 0
        self.cache_evictions: int = 0
        # Loaded artifact state (set by TPGrGAD.load); detect_only prefers
        # it over the live fitted models.
        self._warm_state = None
        # Identity of the graph the live models were actually *trained* on
        # (detect_only rebinds self._graph to whatever it serves, so the
        # manifest fingerprint cannot come from there), and the TPGCL that
        # training produced (detect_only may null self.tpgcl for a serve
        # that skipped the head — that must never erase trained weights
        # from what save() exports).
        self._fitted_fingerprint: Optional[str] = None
        self._fitted_n_features: Optional[int] = None
        self._fitted_tpgcl: Optional[TPGCL] = None

    # ------------------------------------------------------------------
    # Stage 1: anchor localization
    # ------------------------------------------------------------------
    def locate_anchors(self, graph: Graph) -> np.ndarray:
        """Fit MH-GAE and return anchor node indices (sorted by error)."""
        # Real training supersedes any loaded artifact state: save() must
        # export the freshly fitted models from here on, not the stale
        # weights the detector was loaded with.
        self._warm_state = None
        self._fitted_fingerprint = graph.fingerprint()
        self._fitted_n_features = graph.n_features
        self._fitted_tpgcl = None  # a new training generation begins
        self.mhgae = MultiHopGAE(self.config.mhgae)
        self.mhgae.fit(graph)
        return select_anchor_nodes(
            self.mhgae.score_nodes(),
            fraction=self.config.anchor_fraction,
            maximum=self.config.max_anchors,
        )

    # ------------------------------------------------------------------
    # Stage 2: candidate group sampling
    # ------------------------------------------------------------------
    def sample_candidates(self, graph: Graph, anchor_nodes: Sequence[int]) -> List[Group]:
        """Run Algorithm 1 from the anchor nodes."""
        sampler = CandidateGroupSampler(self.config.sampler)
        return sampler.sample(graph, anchor_nodes)

    # ------------------------------------------------------------------
    # Stage 3: discrimination
    # ------------------------------------------------------------------
    @staticmethod
    def _mean_features(graph: Graph, candidates: List[Group]) -> np.ndarray:
        return np.vstack(
            [graph.features[list(group.nodes)].mean(axis=0) for group in candidates]
        )

    def _embed_candidates(self, graph: Graph, candidates: List[Group]) -> np.ndarray:
        mean_features = self._mean_features(graph, candidates)
        if self.config.use_tpgcl and len(candidates) >= 2:
            self.tpgcl = TPGCL(self.config.tpgcl)
            self.tpgcl.fit(graph, candidates)
            self._fitted_tpgcl = self.tpgcl
            contrastive = self.tpgcl.embed_groups(graph, candidates)
            # The representation handed to the outlier detector keeps the
            # group's aggregate attribute profile alongside the topology-
            # pattern-sensitive TPGCL embedding (implementation note in
            # DESIGN.md): the contrastive objective alone is free to discard
            # attribute-level signal that the detector still needs.
            return np.hstack([contrastive, mean_features])
        # Table V ablation ("w/o TPGCL"): mean node features per group only.
        return mean_features

    def _score_embeddings(self, embeddings: np.ndarray) -> np.ndarray:
        detector = get_detector(self.config.detector)
        return detector.fit_scores(embeddings)

    # ------------------------------------------------------------------
    # Stage orchestration + per-graph cache
    # ------------------------------------------------------------------
    def _cache_key(self, graph: Graph) -> Tuple[str, str]:
        # content_hash covers every hyperparameter of every stage, so two
        # configs share a key exactly when they run identical pipelines —
        # and it is the same identity the artifact manifest and the serve
        # registry use, so a cache key can be correlated with a deployed
        # model version.
        return (graph.fingerprint(), self.config.content_hash())

    def clear_cache(self) -> None:
        """Drop all cached stage outputs and reset the cache counters."""
        self._stage_cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0

    def cache_info(self) -> Dict[str, int]:
        """Stage-cache statistics: hits / misses / evictions / sizes.

        The public read surface for operational monitoring (the serve
        layer's ``/metrics`` endpoint reports this verbatim) — callers
        never need to poke the private LRU.  Counters accumulate until
        :meth:`clear_cache` resets them, so they cannot grow unboundedly
        out of sync with a cache that was just emptied.
        """
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "evictions": self.cache_evictions,
            "currsize": len(self._stage_cache),
            "maxsize": self.config.cache_size,
        }

    def _run_stages(self, graph: Graph) -> _StageOutputs:
        """Run (or recall) the deterministic training stages for ``graph``.

        Every stage is seeded from the config, so recomputing for the same
        ``(graph fingerprint, config)`` key reproduces the cached outputs;
        the cache only skips redundant work, never changes results.
        """
        tracer = get_tracer()
        key = self._cache_key(graph) if self.config.cache_size else None
        cached = self._stage_cache.get(key) if key is not None else None
        if cached is not None:
            self._stage_cache.move_to_end(key)
            self.cache_hits += 1
            tracer.add("cache_hits")
            # Keep the stage-model attributes consistent with the result:
            # callers inspect e.g. ``detector.mhgae.score_nodes()`` after a
            # fit, and must see the models that scored *this* graph.
            self.mhgae = cached.mhgae
            self.tpgcl = cached.tpgcl
            self._fitted_fingerprint = key[0]
            self._fitted_n_features = graph.n_features
            self._fitted_tpgcl = cached.tpgcl
            # The rebound generation supersedes any cached/loaded export,
            # exactly as training does on the miss path.
            self._warm_state = None
            return cached
        self.cache_misses += 1
        tracer.add("cache_misses")

        self.tpgcl = None  # only set when the TPGCL stage actually runs
        with tracer.span("stage.anchors"):
            anchor_nodes = self.locate_anchors(graph)
        with tracer.span("stage.sampling") as span:
            candidates = self.sample_candidates(graph, anchor_nodes)
            span.add("n_candidates", len(candidates))
        with tracer.span("stage.embed"):
            embeddings = self._embed_candidates(graph, candidates) if candidates else None
        outputs = _StageOutputs(
            anchor_nodes=np.asarray(anchor_nodes),
            node_scores=self.mhgae.score_nodes() if self.mhgae else None,
            candidates=candidates,
            embeddings=embeddings,
            mhgae=self.mhgae,
            tpgcl=self.tpgcl,
        )
        if key is not None:
            self._stage_cache[key] = outputs
            while len(self._stage_cache) > self.config.cache_size:
                self._stage_cache.popitem(last=False)
                self.cache_evictions += 1
                tracer.add("cache_evictions")
        return outputs

    def _score_stages(self, outputs: _StageOutputs, threshold: Optional[float]) -> GroupDetectionResult:
        """Turn stage outputs into a scored, thresholded result.

        Containers are copied at this boundary (Group objects themselves
        are frozen) so a caller mutating a returned result can never
        corrupt the cache or results of later calls.
        """
        if not outputs.candidates:
            return GroupDetectionResult(
                candidate_groups=[],
                scores=np.array([]),
                threshold=0.0,
                anomalous_groups=[],
                anchor_nodes=outputs.anchor_nodes.copy(),
                node_scores=None if outputs.node_scores is None else outputs.node_scores.copy(),
            )

        with get_tracer().span("stage.score"):
            scores = self._score_embeddings(outputs.embeddings)
        if threshold is None:
            threshold = float(np.quantile(scores, 1.0 - self.config.contamination))
        anomalous = [
            group.with_score(float(score))
            for group, score in zip(outputs.candidates, scores)
            if score >= threshold
        ]
        return GroupDetectionResult(
            candidate_groups=list(outputs.candidates),
            scores=scores,
            threshold=float(threshold),
            anomalous_groups=anomalous,
            anchor_nodes=outputs.anchor_nodes.copy(),
            embeddings=outputs.embeddings.copy(),
            node_scores=None if outputs.node_scores is None else outputs.node_scores.copy(),
        )

    # ------------------------------------------------------------------
    # End-to-end
    # ------------------------------------------------------------------
    def fit_detect(self, graph: Graph, threshold: Optional[float] = None) -> GroupDetectionResult:
        """Run the full pipeline on ``graph`` and return scored groups.

        Parameters
        ----------
        graph:
            The attributed graph to analyse (ground-truth groups, if any,
            are ignored by the detector and only used for evaluation).
        threshold:
            Optional explicit score threshold τ; when omitted it is set to
            the ``1 - contamination`` quantile of the candidate scores.
        """
        tracer = get_tracer()
        with tracer.span("pipeline.fit_detect") as span:
            self._graph = graph
            result = self._score_stages(self._run_stages(graph), threshold)
            if tracer.enabled:
                span.set("n_nodes", graph.n_nodes)
                span.set("n_candidates", result.n_candidates)
                span.set("n_anomalous", result.n_anomalous)
            return result

    def fit_detect_many(
        self,
        graphs: Iterable[Graph],
        threshold: Optional[float] = None,
        n_workers: Optional[int] = None,
    ) -> List[GroupDetectionResult]:
        """Score a list of graphs through one call (the batched API).

        Each graph is scored independently with this detector's config —
        the result for a graph does not depend on batch order or
        composition, so ``fit_detect_many(gs) == [fit_detect(g) for g in
        gs]`` — but graphs repeated within or across calls hit the
        per-``(fingerprint, config)`` stage cache and skip the MH-GAE /
        sampling / TPGCL training entirely.

        ``n_workers > 1`` shards the batch across a process pool via
        :class:`repro.parallel.ParallelExecutor`; results are bit-identical
        to the serial order, the executor's duplicate-graph hits are
        merged back into this detector's ``cache_hits``/``cache_misses``
        counters, and the post-fit contract survives: this detector ends
        up holding (warm-bound copies of) the models that scored the
        batch's last graph, so ``save()`` / ``mhgae.score_nodes()`` work
        exactly as after a serial call.  Only the stage *cache* stays
        local to the workers — the fitted model objects cannot cross the
        process boundary.
        """
        if n_workers is not None and n_workers > 1:
            from repro.parallel import ParallelExecutor

            graphs = list(graphs)
            executor = ParallelExecutor(self.config, n_workers=n_workers)
            results = executor.fit_detect_many(graphs, threshold=threshold)
            self.cache_hits += executor.cache_hits
            self.cache_misses += executor.cache_misses
            if executor.final_state is not None and graphs:
                state = executor.final_state
                # The batch trained fresh models; they supersede any
                # loaded artifact state exactly as serial training does.
                self._warm_state = None
                self._graph = graphs[-1]
                self._fitted_fingerprint = state.graph_fingerprint
                self._fitted_n_features = state.n_features
                self.mhgae = state.bind_mhgae(graphs[-1])
                self.tpgcl = state.bind_tpgcl()
                self._fitted_tpgcl = self.tpgcl
            return results
        return [self.fit_detect(graph, threshold=threshold) for graph in graphs]

    # ------------------------------------------------------------------
    # Warm inference + persistence
    # ------------------------------------------------------------------
    def detect_only(self, graph: Graph, threshold: Optional[float] = None) -> GroupDetectionResult:
        """Score ``graph`` with the already-trained stage models (no training).

        Uses the loaded artifact state when this detector came from
        :meth:`load`, otherwise the live models of the last
        :meth:`fit_detect`.  On the graph the pipeline was fitted on this
        reproduces ``fit_detect`` exactly (same weights, same seeded
        sampler); on *new* graphs of the same feature dimensionality it is
        the warm-start serving path — anchors are scored by the trained
        MH-GAE and candidates embedded by the trained TPGCL encoder, with
        only the cheap sampling and outlier stages recomputed.

        The computation itself only reads the (immutable) config and
        :class:`~repro.persist.PipelineState`, and every per-call model
        binding and intermediate lives in locals — overlapping
        ``detect_only`` calls on one warm detector from multiple threads
        each produce exactly their serial result.  The instance attributes
        (``mhgae`` / ``tpgcl`` / ``_graph``) are rebound only at the end,
        as the usual post-call inspection surface; under concurrency they
        reflect *some* recent call, never a torn mix inside a result.
        """
        from repro.persist import PipelineState

        tracer = get_tracer()
        with tracer.span("pipeline.detect_only") as top:
            state = self._warm_state
            if state is None:
                # Cache the export: serving N graphs must not re-copy every
                # parameter array N times.  Training invalidates this via
                # locate_anchors (which clears _warm_state).
                state = PipelineState.from_fitted(self)
                self._warm_state = state

            with tracer.span("stage.warm_bind"):
                mhgae = state.bind_mhgae(graph)
                node_scores = mhgae.score_nodes()
                anchor_nodes = select_anchor_nodes(
                    node_scores,
                    fraction=self.config.anchor_fraction,
                    maximum=self.config.max_anchors,
                )
            with tracer.span("stage.sampling") as span:
                candidates = self.sample_candidates(graph, anchor_nodes)
                span.add("n_candidates", len(candidates))

            with tracer.span("stage.warm_embed"):
                tpgcl, embeddings = self._warm_embed(state, graph, candidates)

            outputs = _StageOutputs(
                anchor_nodes=np.asarray(anchor_nodes),
                node_scores=node_scores,
                candidates=candidates,
                embeddings=embeddings,
                mhgae=mhgae,
                tpgcl=tpgcl,
            )
            self._graph = graph
            self.mhgae = mhgae
            self.tpgcl = tpgcl
            if tracer.enabled:
                top.set("n_nodes", graph.n_nodes)
            return self._score_stages(outputs, threshold)

    def _warm_embed(self, state, graph: Graph, candidates: List[Group]):
        """Embed candidates with a PipelineState's trained encoder (no training).

        The single home of the warm TPGCL gating rule — the head applies
        exactly when the training path would have run it (``use_tpgcl``,
        ≥ 2 candidates) *and* the state actually carries a trained
        encoder.  Returns ``(tpgcl_or_None, embeddings_or_None)``; used by
        :meth:`detect_only` and the streaming warm start.
        """
        if not candidates:
            return None, None
        mean_features = self._mean_features(graph, candidates)
        tpgcl = (
            state.bind_tpgcl()
            if self.config.use_tpgcl and len(candidates) >= 2
            else None
        )
        if tpgcl is not None:
            contrastive = tpgcl.embed_groups(graph, candidates)
            return tpgcl, np.hstack([contrastive, mean_features])
        return None, mean_features

    def save(self, path) -> str:
        """Persist the fitted pipeline as an artifact directory.

        Writes encoder/MH-GAE parameters as ``arrays.npz`` plus a JSON
        manifest (config, graph fingerprint, library versions); see
        :mod:`repro.persist.artifact` for the format.
        """
        from repro.persist import save_pipeline

        return str(save_pipeline(self, path))

    @classmethod
    def from_state(cls, state) -> "TPGrGAD":
        """Wrap a :class:`repro.persist.PipelineState` in a warm detector.

        The in-memory counterpart of :meth:`load`: the returned detector
        serves :meth:`detect_only` from ``state`` without retraining.
        This is the constructor the serve registry uses — it holds the
        ``PipelineState`` itself (for identity metadata) and builds the
        serving detector from it through this public seam.
        """
        detector = cls(state.config)
        detector._warm_state = state
        return detector

    @classmethod
    def load(cls, path) -> "TPGrGAD":
        """Load an artifact saved by :meth:`save` into a warm detector.

        The returned detector serves :meth:`detect_only` immediately — no
        retraining — and reproduces the saved pipeline's in-memory
        ``fit_detect`` scores to machine precision on the fitted graph.
        """
        from repro.persist import load_pipeline

        return load_pipeline(path)
