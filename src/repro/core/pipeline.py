"""The three-stage TP-GrGAD pipeline (Fig. 2 of the paper).

1. **Anchor node localization** — fit MH-GAE on the whole graph, take the
   top-``anchor_fraction`` of nodes by reconstruction error as anchors.
2. **Candidate group sampling** — run Algorithm 1 (path / tree / cycle
   searches) from the anchors to collect candidate groups.
3. **Candidate group discrimination** — train TPGCL on the candidates
   (PPA/PBA views, Eqn. 8 objective), embed each candidate, score the
   embeddings with an unsupervised outlier detector (ECOD by default) and
   flag groups whose score exceeds the threshold τ.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import TPGrGADConfig
from repro.core.result import GroupDetectionResult
from repro.gae import MultiHopGAE, select_anchor_nodes
from repro.gcl import TPGCL
from repro.graph import Graph, Group
from repro.outlier import get_detector
from repro.sampling import CandidateGroupSampler


class TPGrGAD:
    """Topology Pattern Enhanced Unsupervised Group-level Graph Anomaly Detection.

    Examples
    --------
    >>> from repro.datasets import make_example_graph
    >>> detector = TPGrGAD(TPGrGADConfig.fast())
    >>> result = detector.fit_detect(make_example_graph())
    >>> result.n_candidates > 0
    True
    """

    def __init__(self, config: Optional[TPGrGADConfig] = None) -> None:
        self.config = config or TPGrGADConfig()
        self.mhgae: Optional[MultiHopGAE] = None
        self.tpgcl: Optional[TPGCL] = None
        self._graph: Optional[Graph] = None

    # ------------------------------------------------------------------
    # Stage 1: anchor localization
    # ------------------------------------------------------------------
    def locate_anchors(self, graph: Graph) -> np.ndarray:
        """Fit MH-GAE and return anchor node indices (sorted by error)."""
        self.mhgae = MultiHopGAE(self.config.mhgae)
        self.mhgae.fit(graph)
        return select_anchor_nodes(
            self.mhgae.score_nodes(),
            fraction=self.config.anchor_fraction,
            maximum=self.config.max_anchors,
        )

    # ------------------------------------------------------------------
    # Stage 2: candidate group sampling
    # ------------------------------------------------------------------
    def sample_candidates(self, graph: Graph, anchor_nodes: Sequence[int]) -> List[Group]:
        """Run Algorithm 1 from the anchor nodes."""
        sampler = CandidateGroupSampler(self.config.sampler)
        return sampler.sample(graph, anchor_nodes)

    # ------------------------------------------------------------------
    # Stage 3: discrimination
    # ------------------------------------------------------------------
    def _embed_candidates(self, graph: Graph, candidates: List[Group]) -> np.ndarray:
        mean_features = np.vstack(
            [graph.features[list(group.nodes)].mean(axis=0) for group in candidates]
        )
        if self.config.use_tpgcl and len(candidates) >= 2:
            self.tpgcl = TPGCL(self.config.tpgcl)
            self.tpgcl.fit(graph, candidates)
            contrastive = self.tpgcl.embed_groups(graph, candidates)
            # The representation handed to the outlier detector keeps the
            # group's aggregate attribute profile alongside the topology-
            # pattern-sensitive TPGCL embedding (implementation note in
            # DESIGN.md): the contrastive objective alone is free to discard
            # attribute-level signal that the detector still needs.
            return np.hstack([contrastive, mean_features])
        # Table V ablation ("w/o TPGCL"): mean node features per group only.
        return mean_features

    def _score_embeddings(self, embeddings: np.ndarray) -> np.ndarray:
        detector = get_detector(self.config.detector)
        return detector.fit_scores(embeddings)

    # ------------------------------------------------------------------
    # End-to-end
    # ------------------------------------------------------------------
    def fit_detect(self, graph: Graph, threshold: Optional[float] = None) -> GroupDetectionResult:
        """Run the full pipeline on ``graph`` and return scored groups.

        Parameters
        ----------
        graph:
            The attributed graph to analyse (ground-truth groups, if any,
            are ignored by the detector and only used for evaluation).
        threshold:
            Optional explicit score threshold τ; when omitted it is set to
            the ``1 - contamination`` quantile of the candidate scores.
        """
        self._graph = graph
        anchor_nodes = self.locate_anchors(graph)
        candidates = self.sample_candidates(graph, anchor_nodes)

        if not candidates:
            return GroupDetectionResult(
                candidate_groups=[],
                scores=np.array([]),
                threshold=0.0,
                anomalous_groups=[],
                anchor_nodes=np.asarray(anchor_nodes),
                node_scores=self.mhgae.score_nodes() if self.mhgae else None,
            )

        embeddings = self._embed_candidates(graph, candidates)
        scores = self._score_embeddings(embeddings)

        if threshold is None:
            threshold = float(np.quantile(scores, 1.0 - self.config.contamination))
        anomalous = [
            group.with_score(float(score))
            for group, score in zip(candidates, scores)
            if score >= threshold
        ]

        return GroupDetectionResult(
            candidate_groups=candidates,
            scores=scores,
            threshold=float(threshold),
            anomalous_groups=anomalous,
            anchor_nodes=np.asarray(anchor_nodes),
            embeddings=embeddings,
            node_scores=self.mhgae.score_nodes() if self.mhgae else None,
        )
