"""Result container returned by TP-GrGAD and the baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.graph import Graph, Group
from repro.metrics import EvaluationReport, evaluate_detection


@dataclass
class GroupDetectionResult:
    """Everything a Gr-GAD detector produces for one graph.

    Attributes
    ----------
    candidate_groups:
        All scored candidate groups (``C`` in Definition 1).
    scores:
        Anomaly score per candidate group (``S`` in Definition 1).
    threshold:
        The score threshold τ actually used to flag anomalous groups.
    anomalous_groups:
        The candidates whose score exceeds τ, each carrying its score.
    anchor_nodes:
        Anchor nodes chosen by the localization stage (empty for baselines
        that do not use anchors).
    embeddings:
        Group embeddings used for scoring (None for detectors that score
        groups directly).
    node_scores:
        Per-node anomaly scores of the localization stage, when available.
    """

    candidate_groups: List[Group]
    scores: np.ndarray
    threshold: float
    anomalous_groups: List[Group]
    anchor_nodes: np.ndarray = field(default_factory=lambda: np.array([], dtype=int))
    embeddings: Optional[np.ndarray] = None
    node_scores: Optional[np.ndarray] = None
    method: str = "TP-GrGAD"

    def __post_init__(self) -> None:
        self.scores = np.asarray(self.scores, dtype=np.float64)
        if len(self.candidate_groups) != len(self.scores):
            raise ValueError("one score per candidate group is required")

    # ------------------------------------------------------------------
    @property
    def n_candidates(self) -> int:
        return len(self.candidate_groups)

    @property
    def n_anomalous(self) -> int:
        return len(self.anomalous_groups)

    def average_anomalous_size(self) -> float:
        """Mean node count of the flagged groups (the Fig. 5 statistic)."""
        if not self.anomalous_groups:
            return 0.0
        return float(np.mean([len(g) for g in self.anomalous_groups]))

    def top_groups(self, k: int) -> List[Group]:
        """The ``k`` highest-scoring candidate groups (scores attached)."""
        order = np.argsort(-self.scores)[: max(0, int(k))]
        return [self.candidate_groups[i].with_score(float(self.scores[i])) for i in order]

    def to_json_dict(self) -> dict:
        """JSON-serialisable summary of this result.

        Used by the golden end-to-end regression fixtures
        (``tests/test_golden_regression.py``): candidate/flagged groups are
        reduced to sorted node lists and scores to plain floats, so a
        refactor of ``fit_detect`` / ``fit_detect_many`` can be diffed
        against a stored oracle.  Everything passes through
        :func:`repro.persist.to_native`, so numpy scalar types (an
        ``np.float32`` threshold, ``np.int64`` node ids) can never crash
        or mis-serialize ``json.dump`` regardless of which detector built
        the result.
        """
        from repro.persist import to_native

        return to_native(
            {
                "method": self.method,
                "threshold": self.threshold,
                "scores": self.scores,
                "candidate_groups": [sorted(group.nodes) for group in self.candidate_groups],
                "anomalous_groups": sorted(sorted(group.nodes) for group in self.anomalous_groups),
                "anchor_nodes": sorted(int(node) for node in self.anchor_nodes),
            }
        )

    def evaluate(self, graph: Graph, truth_groups: Optional[Sequence[Group]] = None) -> EvaluationReport:
        """Score this result against the graph's ground-truth groups."""
        truth = list(truth_groups if truth_groups is not None else graph.groups)
        return evaluate_detection(
            predicted_groups=self.candidate_groups,
            scores=self.scores,
            truth_groups=truth,
            anomalous_groups=self.anomalous_groups,
            threshold=self.threshold,
        )
