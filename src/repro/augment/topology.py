"""Pattern Preserving / Pattern Breaking Augmentations (PPA & PBA, Alg. 2).

Both augmentations first locate the topology patterns inside a candidate
group and then perturb them with a *prescribed* effect:

* **PBA** (negative view) — drop tree roots, drop path middles, drop two
  nodes of each cycle: the intrinsic patterns are destroyed.
* **PPA** (positive view) — add a child to each tree root, extend each path
  at an endpoint, widen each cycle with a chord node: the patterns are
  preserved and expanded.  New node attributes are the average of the
  pattern's existing members, as specified in Alg. 2.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from repro.augment.patterns import TopologyPatterns, find_topology_patterns
from repro.graph import Graph


class Augmentation:
    """Base class: an augmentation maps a group subgraph to a perturbed copy."""

    name = "identity"

    def __call__(self, group_graph: Graph, rng: np.random.Generator) -> Graph:
        raise NotImplementedError

    @staticmethod
    def _safe_subgraph(group_graph: Graph, keep: Set[int]) -> Graph:
        """Induced subgraph on ``keep``; falls back to the input when too small."""
        keep = {n for n in keep if 0 <= n < group_graph.n_nodes}
        if len(keep) < 2:
            return group_graph
        return group_graph.subgraph(keep)


class PatternBreakingAugmentation(Augmentation):
    """PBA: generate the negative view by destroying intrinsic patterns."""

    name = "PBA"

    def __call__(self, group_graph: Graph, rng: np.random.Generator) -> Graph:
        patterns = find_topology_patterns(group_graph)
        if patterns.is_empty:
            # Without explicit patterns, fall back to dropping a random node,
            # which is the strongest generic structural perturbation.
            victim = int(rng.integers(0, group_graph.n_nodes))
            keep = set(range(group_graph.n_nodes)) - {victim}
            return self._safe_subgraph(group_graph, keep)

        to_drop: Set[int] = set()
        for tree in patterns.trees:
            to_drop.add(int(tree["root"]))  # Alg. 2 line 7
        for path in patterns.paths:
            to_drop.add(int(path[len(path) // 2]))  # Alg. 2 line 12
        for cycle in patterns.cycles:
            chosen = rng.choice(len(cycle), size=min(2, len(cycle)), replace=False)  # Alg. 2 line 17
            to_drop.update(int(cycle[i]) for i in np.atleast_1d(chosen))

        keep = set(range(group_graph.n_nodes)) - to_drop
        return self._safe_subgraph(group_graph, keep)


class PatternPreservingAugmentation(Augmentation):
    """PPA: generate the positive view by extending intrinsic patterns."""

    name = "PPA"

    def __call__(self, group_graph: Graph, rng: np.random.Generator) -> Graph:
        patterns = find_topology_patterns(group_graph)
        if patterns.is_empty:
            return group_graph

        new_features: List[np.ndarray] = []
        new_edges: List[Tuple[int, int]] = []
        next_id = group_graph.n_nodes
        features = group_graph.features

        for tree in patterns.trees:
            children = tree["children"] or tree["nodes"]
            attribute = features[list(children)].mean(axis=0)  # Alg. 2 line 8
            new_features.append(attribute)
            new_edges.append((int(tree["root"]), next_id))
            next_id += 1

        for path in patterns.paths:
            endpoint = int(path[-1])
            attribute = features[list(path)].mean(axis=0)  # Alg. 2 line 13
            new_features.append(attribute)
            new_edges.append((endpoint, next_id))
            next_id += 1

        for cycle in patterns.cycles:
            pick = rng.choice(len(cycle), size=2, replace=False)
            n1, n2 = int(cycle[pick[0]]), int(cycle[pick[1]])
            attribute = features[list(cycle)].mean(axis=0)  # Alg. 2 line 18
            new_features.append(attribute)
            new_edges.extend([(n1, next_id), (n2, next_id)])
            next_id += 1

        if not new_features:
            return group_graph
        return group_graph.add_nodes_and_edges(np.vstack(new_features), new_edges)


def make_views(
    group_graph: Graph,
    rng: np.random.Generator,
    positive: Optional[Augmentation] = None,
    negative: Optional[Augmentation] = None,
) -> Tuple[Graph, Graph]:
    """Produce the (positive, negative) view pair for one candidate group."""
    positive = positive or PatternPreservingAugmentation()
    negative = negative or PatternBreakingAugmentation()
    return positive(group_graph, rng), negative(group_graph, rng)
