"""Topology-pattern searching inside candidate groups (Alg. 2, line 4).

Given the induced subgraph of a candidate group, :func:`find_topology_patterns`
returns the trees, paths and cycles it contains — the three basic pattern
classes the paper builds on (triangles, diamonds and stars being special
cases of cycles and trees).  :func:`classify_group_pattern` assigns a single
dominant pattern to a group, which is what the Table II statistics report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import networkx as nx

from repro.graph import Graph, graph_to_networkx


@dataclass
class TopologyPatterns:
    """Patterns discovered inside one candidate group.

    ``trees`` are stored as (root, nodes) pairs, ``paths`` as node sequences
    (endpoint to endpoint), ``cycles`` as node sequences around the loop.
    All node indices are local to the group's induced subgraph.
    """

    trees: List[dict] = field(default_factory=list)
    paths: List[List[int]] = field(default_factory=list)
    cycles: List[List[int]] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not (self.trees or self.paths or self.cycles)

    def counts(self) -> dict:
        return {"tree": len(self.trees), "path": len(self.paths), "cycle": len(self.cycles)}


def _longest_path_in_tree(component: nx.Graph) -> List[int]:
    """Diameter path of an acyclic component (double-BFS trick)."""
    start = next(iter(component.nodes))
    lengths = nx.single_source_shortest_path_length(component, start)
    far = max(lengths, key=lengths.get)
    paths = nx.single_source_shortest_path(component, far)
    lengths = {node: len(p) for node, p in paths.items()}
    other = max(lengths, key=lengths.get)
    return paths[other]


def find_topology_patterns(group_graph: Graph, max_patterns_per_kind: int = 4) -> TopologyPatterns:
    """Locate tree / path / cycle patterns inside a candidate-group subgraph.

    Parameters
    ----------
    group_graph:
        The induced subgraph of the candidate group (local node indices).
    max_patterns_per_kind:
        Cap on the number of patterns reported per kind, keeping the
        augmentation cost bounded for dense groups.
    """
    patterns = TopologyPatterns()
    nx_graph = graph_to_networkx(group_graph)

    # Cycles: cycle basis gives one representative per independent cycle.
    for cycle in nx.cycle_basis(nx_graph):
        if len(cycle) >= 3:
            patterns.cycles.append([int(n) for n in cycle])
        if len(patterns.cycles) >= max_patterns_per_kind:
            break

    for component_nodes in nx.connected_components(nx_graph):
        if len(patterns.paths) >= max_patterns_per_kind and len(patterns.trees) >= max_patterns_per_kind:
            break
        component = nx_graph.subgraph(component_nodes)
        n, m = component.number_of_nodes(), component.number_of_edges()
        if n < 2:
            continue

        degrees = dict(component.degree())
        max_degree = max(degrees.values())
        is_acyclic = m == n - 1

        # Path pattern: the longest simple chain in the component.
        if is_acyclic:
            path = _longest_path_in_tree(component)
        else:
            # For cyclic components take a shortest path between two far-apart nodes.
            spanning = nx.minimum_spanning_tree(component)
            path = _longest_path_in_tree(spanning)
        if len(path) >= 3 and len(patterns.paths) < max_patterns_per_kind:
            patterns.paths.append([int(p) for p in path])

        # Tree pattern: acyclic component with branching (a pure chain is a
        # path, not a tree in the paper's taxonomy).
        if is_acyclic and max_degree >= 3 and len(patterns.trees) < max_patterns_per_kind:
            root = max(degrees, key=degrees.get)
            patterns.trees.append(
                {
                    "root": int(root),
                    "nodes": [int(v) for v in component.nodes],
                    "children": [int(v) for v in component.neighbors(root)],
                }
            )
    return patterns


def classify_group_pattern(group_graph: Graph) -> str:
    """Dominant topology pattern of a group: ``"cycle"``, ``"tree"`` or ``"path"``.

    The precedence (cycle > tree > path) matches how the paper tallies
    Table II: any group containing a cycle is cyclic; otherwise branching
    structures are trees; pure chains are paths.
    """
    nx_graph = graph_to_networkx(group_graph)
    if nx_graph.number_of_nodes() == 0:
        return "path"
    if nx.cycle_basis(nx_graph):
        return "cycle"
    degrees = [d for _, d in nx_graph.degree()]
    if degrees and max(degrees) >= 3:
        return "tree"
    return "path"


def pattern_statistics(graph: Graph, groups: Optional[list] = None) -> dict:
    """Count dominant patterns over a dataset's ground-truth groups (Table II)."""
    groups = list(graph.groups if groups is None else groups)
    counts = {"path": 0, "tree": 0, "cycle": 0}
    for group in groups:
        counts[classify_group_pattern(graph.group_subgraph(group))] += 1
    counts["total"] = len(groups)
    return counts
