"""Topology-pattern-aware augmentations (Algorithm 2 of the paper).

:func:`find_topology_patterns` locates trees, paths and cycles inside a
candidate group.  :class:`PatternPreservingAugmentation` (PPA) extends those
patterns (positive view) while :class:`PatternBreakingAugmentation` (PBA)
destroys them (negative view).  The classic baselines — node dropping,
edge removing and feature masking — are provided for the Fig. 6 ablation.
"""

from repro.augment.patterns import TopologyPatterns, find_topology_patterns, classify_group_pattern
from repro.augment.topology import (
    Augmentation,
    PatternPreservingAugmentation,
    PatternBreakingAugmentation,
)
from repro.augment.baseline import NodeDropping, EdgeRemoving, FeatureMasking, get_augmentation

__all__ = [
    "TopologyPatterns",
    "find_topology_patterns",
    "classify_group_pattern",
    "Augmentation",
    "PatternPreservingAugmentation",
    "PatternBreakingAugmentation",
    "NodeDropping",
    "EdgeRemoving",
    "FeatureMasking",
    "get_augmentation",
]
