"""Baseline augmentations: Node Dropping, Edge Removing, Feature Masking.

These are the three standard GCL perturbations compared against PPA/PBA in
the Fig. 6 ablation.  They perturb *randomly* and therefore may destroy or
preserve the group's topology pattern by accident — exactly the weakness
the paper's augmentations are designed to avoid.
"""

from __future__ import annotations

from typing import Dict, Type

import numpy as np

from repro.augment.topology import Augmentation, PatternBreakingAugmentation, PatternPreservingAugmentation
from repro.graph import Graph


class NodeDropping(Augmentation):
    """ND: remove a random fraction of nodes."""

    name = "ND"

    def __init__(self, rate: float = 0.2) -> None:
        if not 0.0 < rate < 1.0:
            raise ValueError("drop rate must be in (0, 1)")
        self.rate = rate

    def __call__(self, group_graph: Graph, rng: np.random.Generator) -> Graph:
        n = group_graph.n_nodes
        n_drop = max(1, int(round(self.rate * n)))
        if n - n_drop < 2:
            return group_graph
        drop = set(int(i) for i in rng.choice(n, size=n_drop, replace=False))
        return self._safe_subgraph(group_graph, set(range(n)) - drop)


class EdgeRemoving(Augmentation):
    """ER: remove a random fraction of edges."""

    name = "ER"

    def __init__(self, rate: float = 0.2) -> None:
        if not 0.0 < rate < 1.0:
            raise ValueError("removal rate must be in (0, 1)")
        self.rate = rate

    def __call__(self, group_graph: Graph, rng: np.random.Generator) -> Graph:
        edges = list(group_graph.edges)
        if len(edges) <= 1:
            return group_graph
        n_remove = max(1, int(round(self.rate * len(edges))))
        n_remove = min(n_remove, len(edges) - 1)
        removed = set(int(i) for i in rng.choice(len(edges), size=n_remove, replace=False))
        kept = [edge for index, edge in enumerate(edges) if index not in removed]
        return Graph(group_graph.n_nodes, kept, group_graph.features, name=group_graph.name)


class FeatureMasking(Augmentation):
    """FM: zero out a random fraction of feature columns."""

    name = "FM"

    def __init__(self, rate: float = 0.2) -> None:
        if not 0.0 < rate < 1.0:
            raise ValueError("masking rate must be in (0, 1)")
        self.rate = rate

    def __call__(self, group_graph: Graph, rng: np.random.Generator) -> Graph:
        features = group_graph.features.copy()
        n_mask = max(1, int(round(self.rate * group_graph.n_features)))
        columns = rng.choice(group_graph.n_features, size=min(n_mask, group_graph.n_features), replace=False)
        features[:, columns] = 0.0
        return group_graph.with_features(features)


_REGISTRY: Dict[str, Type[Augmentation]] = {
    "PPA": PatternPreservingAugmentation,
    "PBA": PatternBreakingAugmentation,
    "ND": NodeDropping,
    "ER": EdgeRemoving,
    "FM": FeatureMasking,
}


def get_augmentation(name: str) -> Augmentation:
    """Instantiate an augmentation by its short name (PPA, PBA, ND, ER, FM)."""
    key = name.strip().upper()
    if key not in _REGISTRY:
        raise KeyError(f"unknown augmentation '{name}'; available: {sorted(_REGISTRY)}")
    return _REGISTRY[key]()
