"""Operate on a durable job store: ``python -m repro.jobs <command>``.

* ``ls --store PATH [--tenant T] [--state S] [--limit N]`` — recent
  jobs, one line each, plus the per-state summary.
* ``show JOB_ID --store PATH [--result]`` — full record as JSON;
  ``--result`` prints the stored response payload instead (the exact
  ``/score``-shaped document, provenance fields included).
* ``requeue JOB_ID --store PATH`` — push a failed/cancelled (or
  expired-lease) job back into the queue.
* ``gc --store PATH [--max-age-s SEC] [--keep N]`` — prune terminal
  jobs by age and/or count; queued and running jobs are never touched.

All commands open the store read-write on the given path; WAL mode
makes this safe while a server is serving from the same file.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.jobs.store import JobStore, UnknownJobError
from repro.persist import to_native

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.jobs",
        description="Inspect and maintain a durable scoring-job store.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    ls = commands.add_parser("ls", help="list recent jobs and the state summary")
    ls.add_argument("--store", required=True, help="sqlite job store path")
    ls.add_argument("--tenant", default=None)
    ls.add_argument("--state", default=None, choices=("queued", "running", "done", "failed", "cancelled"))
    ls.add_argument("--limit", type=int, default=20)
    ls.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    show = commands.add_parser("show", help="print one job record as JSON")
    show.add_argument("job_id")
    show.add_argument("--store", required=True)
    show.add_argument("--result", action="store_true",
                      help="print the stored response payload instead of the record")

    requeue = commands.add_parser("requeue", help="push a failed/cancelled job back into the queue")
    requeue.add_argument("job_id")
    requeue.add_argument("--store", required=True)

    gc = commands.add_parser("gc", help="prune terminal jobs by age and/or count")
    gc.add_argument("--store", required=True)
    gc.add_argument("--max-age-s", type=float, default=None,
                    help="delete terminal jobs last updated more than SEC seconds ago")
    gc.add_argument("--keep", type=int, default=None,
                    help="retain only the newest N terminal jobs")
    return parser


def _cmd_ls(store: JobStore, args: argparse.Namespace) -> int:
    records = store.list(tenant=args.tenant, state=args.state, limit=args.limit)
    stats = store.stats()
    if args.json:
        print(json.dumps(to_native({
            "stats": stats, "jobs": [record.describe() for record in records],
        }), indent=2, sort_keys=True))
        return 0
    header = f"{'job_id':<18} {'state':<10} {'tenant':<12} {'model':<12} {'mode':<12} {'att':>3} {'sub':>3}  fingerprint"
    print(header)
    print("-" * len(header))
    for record in records:
        print(
            f"{record.job_id:<18} {record.state:<10} {record.tenant:<12} "
            f"{record.model or '(default)':<12} {record.mode:<12} "
            f"{record.attempts:>3} {record.submit_count:>3}  {record.graph_fingerprint[:16]}"
        )
    states = " ".join(f"{state}={n}" for state, n in stats["states"].items())
    print(f"{len(records)} shown | {states} | submits={stats['submit_total']} "
          f"dedup_hits={stats['dedup_hits_total']}")
    return 0


def _cmd_show(store: JobStore, args: argparse.Namespace) -> int:
    record = store.get(args.job_id)
    if args.result:
        if record.result_json is None:
            print(f"job {record.job_id} is {record.state}: no stored result", file=sys.stderr)
            return 1
        print(json.dumps(record.result, indent=2, sort_keys=True))
        return 0
    print(json.dumps(to_native(record.describe()), indent=2, sort_keys=True))
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    with JobStore(args.store) as store:
        try:
            if args.command == "ls":
                return _cmd_ls(store, args)
            if args.command == "show":
                return _cmd_show(store, args)
            if args.command == "requeue":
                record = store.requeue(args.job_id)
                print(f"job {record.job_id}: {record.state} (attempts={record.attempts})")
                return 0
            deleted = store.gc(max_age_s=args.max_age_s, keep=args.keep)
            print(f"gc: deleted {deleted} terminal jobs from {store.path}")
            return 0
        except UnknownJobError as error:
            print(str(error), file=sys.stderr)
            return 1
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 1


if __name__ == "__main__":
    sys.exit(main())
