"""Durable sqlite-backed job store of the async batch API.

One row per accepted job, in a single ``jobs`` table inside a stdlib
:mod:`sqlite3` database opened in WAL mode — concurrent submitters and
pollers (the HTTP server, worker tasks, the ``python -m repro.jobs``
CLI, external scripts) can all share the file.  The store is the
durable source of truth the serving layer's in-memory queue never was:
a job accepted by ``POST /jobs`` survives a server crash and is picked
up again on restart.

State machine
-------------
``queued → running → done | failed | cancelled``

* ``queued``   — accepted, waiting for a worker.
* ``running``  — claimed under a *lease*: the claiming worker owns the
  job until ``lease_expires_unix``; it must heartbeat to keep the lease
  alive.  A job whose lease expired (worker crashed, process killed) is
  moved back to ``queued`` by :meth:`JobStore.requeue_expired` — no job
  is ever lost to a dead worker.
* ``done``     — the full scoring response (the exact ``/score``-shaped
  payload, provenance fields included) is stored in ``result_json``.
* ``failed``   — ``error`` holds the reason; ``attempts`` counts tries.
* ``cancelled``— a queued job withdrawn via ``DELETE /jobs/{id}``.

Deduplication
-------------
Jobs are content-addressed by
``(graph_fingerprint, config_hash, mode, model, model_version,
threshold)`` — the complete input identity of a deterministic scoring
run.  Submitting an identical job returns the *existing* record (its
``submit_count`` incremented) instead of queueing duplicate work; a
failed or cancelled twin is revived back to ``queued`` so a resubmit is
also the retry verb.

Quotas
------
:class:`TenantQuota` bounds each tenant's footprint: ``max_queued``
caps accepted-but-unscored jobs (checked at submit; violations raise
:class:`QuotaExceededError`, which the HTTP layer maps to ``429`` +
``Retry-After``), and ``max_running`` caps concurrently leased jobs
(enforced by :meth:`JobStore.claim`, which skips tenants at their
limit — one noisy tenant cannot monopolise the worker pool).

Retention
---------
:meth:`JobStore.gc` prunes *terminal* jobs by age and/or count so the
store cannot grow without bound; queued and running jobs are never
collected.  ``python -m repro.jobs gc`` is the operational wrapper.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.persist.serialize import to_native

__all__ = [
    "JOB_SCHEMA_VERSION",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobRecord",
    "JobStore",
    "QuotaExceededError",
    "TenantQuota",
    "UnknownJobError",
    "dedup_key",
]

JOB_SCHEMA_VERSION = 1

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id            TEXT PRIMARY KEY,
    dedup_key         TEXT NOT NULL UNIQUE,
    tenant            TEXT NOT NULL,
    model             TEXT NOT NULL,
    model_version     INTEGER NOT NULL,
    config_hash       TEXT NOT NULL,
    mode              TEXT NOT NULL,
    threshold         REAL,
    graph_fingerprint TEXT NOT NULL,
    graph_json        TEXT NOT NULL,
    state             TEXT NOT NULL,
    attempts          INTEGER NOT NULL DEFAULT 0,
    submit_count      INTEGER NOT NULL DEFAULT 1,
    created_unix      REAL NOT NULL,
    updated_unix      REAL NOT NULL,
    started_unix      REAL,
    finished_unix     REAL,
    lease_owner       TEXT,
    lease_expires_unix REAL,
    result_json       TEXT,
    error             TEXT,
    trace_id          TEXT,
    score_digest      TEXT,
    schema_version    INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs (state, created_unix);
CREATE INDEX IF NOT EXISTS idx_jobs_tenant ON jobs (tenant, state);
"""

_COLUMNS = (
    "job_id", "dedup_key", "tenant", "model", "model_version", "config_hash",
    "mode", "threshold", "graph_fingerprint", "graph_json", "state",
    "attempts", "submit_count", "created_unix", "updated_unix",
    "started_unix", "finished_unix", "lease_owner", "lease_expires_unix",
    "result_json", "error", "trace_id", "score_digest", "schema_version",
)


class QuotaExceededError(Exception):
    """A tenant hit its queued-jobs quota; retry after the queue drains."""

    def __init__(self, tenant: str, queued: int, max_queued: int, retry_after_s: float = 1.0) -> None:
        super().__init__(
            f"tenant {tenant!r} has {queued} queued jobs (quota {max_queued}); "
            f"retry after {retry_after_s:.1f}s"
        )
        self.tenant = tenant
        self.queued = queued
        self.max_queued = max_queued
        self.retry_after_s = retry_after_s


class UnknownJobError(KeyError):
    """No job with that id in the store."""

    def __init__(self, job_id: str) -> None:
        super().__init__(job_id)
        self.job_id = job_id

    def __str__(self) -> str:
        return f"unknown job {self.job_id!r}"


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission bounds (shared by every tenant by default)."""

    max_queued: int = 64
    max_running: int = 8

    def __post_init__(self) -> None:
        if self.max_queued < 1 or self.max_running < 1:
            raise ValueError("quota bounds must be >= 1")


def dedup_key(
    graph_fingerprint: str,
    config_hash: str,
    mode: str,
    model: str,
    model_version: int,
    threshold: Optional[float] = None,
) -> str:
    """Content address of one scoring job.

    Covers every input of the (deterministic) pipeline run: the graph's
    fingerprint, the artifact's config hash, the scoring mode, the
    resolved model name + version, and the threshold override —
    identical keys are guaranteed identical results, which is what makes
    returning the existing record sound.
    """
    payload = json.dumps(
        [graph_fingerprint, config_hash, mode, model, int(model_version), threshold],
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


@dataclass
class JobRecord:
    """One row of the ``jobs`` table, as plain Python."""

    job_id: str
    dedup_key: str
    tenant: str
    model: str
    model_version: int
    config_hash: str
    mode: str
    threshold: Optional[float]
    graph_fingerprint: str
    graph_json: str
    state: str
    attempts: int
    submit_count: int
    created_unix: float
    updated_unix: float
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    lease_owner: Optional[str] = None
    lease_expires_unix: Optional[float] = None
    result_json: Optional[str] = None
    error: Optional[str] = None
    trace_id: Optional[str] = None
    score_digest: Optional[str] = None
    schema_version: int = JOB_SCHEMA_VERSION

    @classmethod
    def from_row(cls, row: Sequence[Any]) -> "JobRecord":
        return cls(**dict(zip(_COLUMNS, row)))

    @property
    def result(self) -> Optional[Dict[str, Any]]:
        """The stored ``/score``-shaped response payload (``done`` jobs)."""
        return None if self.result_json is None else json.loads(self.result_json)

    def graph_payload(self) -> Dict[str, Any]:
        return json.loads(self.graph_json)

    def wait_seconds(self) -> Optional[float]:
        if self.started_unix is None:
            return None
        return max(0.0, self.started_unix - self.created_unix)

    def run_seconds(self) -> Optional[float]:
        if self.started_unix is None or self.finished_unix is None:
            return None
        return max(0.0, self.finished_unix - self.started_unix)

    def describe(self) -> Dict[str, Any]:
        """The JSON status row (``GET /jobs/{id}``) — everything but the
        graph and result bodies, which have their own endpoints."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "tenant": self.tenant,
            "model": self.model,
            "version": self.model_version,
            "config_hash": self.config_hash,
            "mode": self.mode,
            "threshold": self.threshold,
            "graph_fingerprint": self.graph_fingerprint,
            "attempts": self.attempts,
            "submit_count": self.submit_count,
            "created_unix": self.created_unix,
            "updated_unix": self.updated_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "wait_seconds": self.wait_seconds(),
            "run_seconds": self.run_seconds(),
            "error": self.error,
            "trace_id": self.trace_id,
            "score_digest": self.score_digest,
        }


@dataclass
class SubmitOutcome:
    """What :meth:`JobStore.submit` hands back to the HTTP layer."""

    record: JobRecord
    created: bool  # False = dedup hit (or revival of a failed/cancelled twin)
    revived: bool = False


class JobStore:
    """Thread-safe durable job log over one WAL-mode sqlite database.

    A single connection (``check_same_thread=False``) guarded by an
    ``RLock`` serves every caller in this process; separate processes
    (the CLI, crash-recovery restarts) open their own stores on the same
    path — WAL mode makes concurrent readers/writer safe.  All writes
    are autocommitted per statement (``isolation_level=None`` with
    explicit ``BEGIN IMMEDIATE`` for read-modify-write sections), so a
    crash never leaves a half-applied transition.
    """

    def __init__(
        self,
        path: str,
        quota: Optional[TenantQuota] = None,
        busy_timeout_s: float = 10.0,
    ) -> None:
        self.path = str(path)
        self.quota = quota or TenantQuota()
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False, timeout=busy_timeout_s, isolation_level=None
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA busy_timeout={int(busy_timeout_s * 1000)}")
        with self._lock:
            self._conn.executescript(_SCHEMA)
        self._closed = False

    # ------------------------------------------------------------------
    # Submission (dedup + quota)
    # ------------------------------------------------------------------
    def submit(
        self,
        *,
        tenant: str,
        model: str,
        model_version: int,
        config_hash: str,
        mode: str,
        graph_fingerprint: str,
        graph_json: str,
        threshold: Optional[float] = None,
    ) -> SubmitOutcome:
        """Accept one job, deduplicated and quota-checked atomically.

        Returns the (new or existing) record.  A dedup hit against a
        live job (queued/running/done) bumps ``submit_count`` and leaves
        the row otherwise untouched; a hit against a failed or cancelled
        job *revives* it back to ``queued``.  Raises
        :class:`QuotaExceededError` when the tenant's queued count is at
        its quota and the submission would create (or revive) a row.
        """
        key = dedup_key(graph_fingerprint, config_hash, mode, model, model_version, threshold)
        now = time.time()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    f"SELECT {', '.join(_COLUMNS)} FROM jobs WHERE dedup_key = ?", (key,)
                ).fetchone()
                if row is not None:
                    record = JobRecord.from_row(row)
                    if record.state in ("failed", "cancelled"):
                        self._check_quota(tenant, now)
                        self._conn.execute(
                            "UPDATE jobs SET state='queued', submit_count=submit_count+1, "
                            "error=NULL, lease_owner=NULL, lease_expires_unix=NULL, "
                            "started_unix=NULL, finished_unix=NULL, updated_unix=? "
                            "WHERE job_id=?",
                            (now, record.job_id),
                        )
                        revived = True
                    else:
                        self._conn.execute(
                            "UPDATE jobs SET submit_count=submit_count+1, updated_unix=? "
                            "WHERE job_id=?",
                            (now, record.job_id),
                        )
                        revived = False
                    out = SubmitOutcome(self._get_locked(record.job_id), created=False, revived=revived)
                else:
                    self._check_quota(tenant, now)
                    job_id = uuid.uuid4().hex[:16]
                    self._conn.execute(
                        "INSERT INTO jobs (job_id, dedup_key, tenant, model, model_version, "
                        "config_hash, mode, threshold, graph_fingerprint, graph_json, state, "
                        "attempts, submit_count, created_unix, updated_unix, schema_version) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 'queued', 0, 1, ?, ?, ?)",
                        (
                            job_id, key, str(tenant), str(model), int(model_version),
                            str(config_hash), str(mode), threshold, str(graph_fingerprint),
                            graph_json, now, now, JOB_SCHEMA_VERSION,
                        ),
                    )
                    out = SubmitOutcome(self._get_locked(job_id), created=True)
                self._conn.execute("COMMIT")
                return out
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def _check_quota(self, tenant: str, now: float) -> None:
        queued = self._conn.execute(
            "SELECT COUNT(*) FROM jobs WHERE tenant=? AND state='queued'", (str(tenant),)
        ).fetchone()[0]
        if queued >= self.quota.max_queued:
            raise QuotaExceededError(tenant, queued, self.quota.max_queued)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _get_locked(self, job_id: str) -> JobRecord:
        row = self._conn.execute(
            f"SELECT {', '.join(_COLUMNS)} FROM jobs WHERE job_id = ?", (str(job_id),)
        ).fetchone()
        if row is None:
            raise UnknownJobError(job_id)
        return JobRecord.from_row(row)

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            return self._get_locked(job_id)

    def list(
        self,
        tenant: Optional[str] = None,
        state: Optional[str] = None,
        limit: int = 100,
    ) -> List[JobRecord]:
        """Most recent jobs first, optionally filtered by tenant/state."""
        clauses, params = [], []  # type: ignore[var-annotated]
        if tenant is not None:
            clauses.append("tenant=?")
            params.append(str(tenant))
        if state is not None:
            if state not in JOB_STATES:
                raise ValueError(f"unknown state {state!r}; expected one of {JOB_STATES}")
            clauses.append("state=?")
            params.append(state)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        params.append(int(limit))
        with self._lock:
            rows = self._conn.execute(
                f"SELECT {', '.join(_COLUMNS)} FROM jobs {where} "
                "ORDER BY created_unix DESC, job_id DESC LIMIT ?",
                params,
            ).fetchall()
        return [JobRecord.from_row(row) for row in rows]

    def counts(self, tenant: Optional[str] = None) -> Dict[str, int]:
        """``{state: n}`` over all states (zero-filled)."""
        where, params = ("WHERE tenant=?", (str(tenant),)) if tenant is not None else ("", ())
        with self._lock:
            rows = self._conn.execute(
                f"SELECT state, COUNT(*) FROM jobs {where} GROUP BY state", params
            ).fetchall()
        out = {state: 0 for state in JOB_STATES}
        out.update({state: int(n) for state, n in rows})
        return out

    def tenants(self) -> List[str]:
        with self._lock:
            rows = self._conn.execute("SELECT DISTINCT tenant FROM jobs ORDER BY tenant").fetchall()
        return [row[0] for row in rows]

    # ------------------------------------------------------------------
    # Worker protocol: claim / heartbeat / complete / fail / release
    # ------------------------------------------------------------------
    def claim(self, owner: str, limit: int = 1, lease_ttl_s: float = 30.0) -> List[JobRecord]:
        """Atomically lease up to ``limit`` queued jobs to ``owner``.

        Jobs are claimed oldest-first; tenants already at their
        ``max_running`` quota are skipped, so a backlogged tenant cannot
        starve others.  Claimed jobs move to ``running`` with a lease
        expiring ``lease_ttl_s`` from now.
        """
        now = time.time()
        claimed: List[JobRecord] = []
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                running: Dict[str, int] = {}
                for tenant, n in self._conn.execute(
                    "SELECT tenant, COUNT(*) FROM jobs WHERE state='running' GROUP BY tenant"
                ).fetchall():
                    running[tenant] = int(n)
                rows = self._conn.execute(
                    f"SELECT {', '.join(_COLUMNS)} FROM jobs WHERE state='queued' "
                    "ORDER BY created_unix ASC, job_id ASC",
                ).fetchall()
                for row in rows:
                    if len(claimed) >= int(limit):
                        break
                    record = JobRecord.from_row(row)
                    if running.get(record.tenant, 0) >= self.quota.max_running:
                        continue
                    self._conn.execute(
                        "UPDATE jobs SET state='running', attempts=attempts+1, "
                        "lease_owner=?, lease_expires_unix=?, started_unix=?, updated_unix=? "
                        "WHERE job_id=?",
                        (str(owner), now + float(lease_ttl_s), now, now, record.job_id),
                    )
                    running[record.tenant] = running.get(record.tenant, 0) + 1
                    claimed.append(self._get_locked(record.job_id))
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return claimed

    def heartbeat(self, job_ids: Sequence[str], owner: str, lease_ttl_s: float = 30.0) -> int:
        """Extend the leases this owner still holds; returns how many."""
        if not job_ids:
            return 0
        now = time.time()
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET lease_expires_unix=?, updated_unix=? "
                f"WHERE state='running' AND lease_owner=? AND job_id IN ({','.join('?' * len(job_ids))})",
                [now + float(lease_ttl_s), now, str(owner), *[str(j) for j in job_ids]],
            )
        return cursor.rowcount

    def complete(
        self,
        job_id: str,
        result: Dict[str, Any],
        trace_id: Optional[str] = None,
        score_digest: Optional[str] = None,
    ) -> JobRecord:
        """``running → done`` with the full response payload stored."""
        now = time.time()
        result_json = json.dumps(to_native(result), sort_keys=True)
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state='done', result_json=?, error=NULL, trace_id=?, "
                "score_digest=?, finished_unix=?, updated_unix=?, lease_owner=NULL, "
                "lease_expires_unix=NULL WHERE job_id=? AND state='running'",
                (result_json, trace_id, score_digest, now, now, str(job_id)),
            )
            return self._get_locked(job_id)

    def fail(self, job_id: str, error: str, requeue: bool = False) -> JobRecord:
        """``running → failed`` (or straight back to ``queued`` for a retry)."""
        now = time.time()
        with self._lock:
            if requeue:
                self._conn.execute(
                    "UPDATE jobs SET state='queued', error=?, started_unix=NULL, "
                    "finished_unix=NULL, updated_unix=?, lease_owner=NULL, "
                    "lease_expires_unix=NULL WHERE job_id=? AND state='running'",
                    (str(error)[:2000], now, str(job_id)),
                )
            else:
                self._conn.execute(
                    "UPDATE jobs SET state='failed', error=?, finished_unix=?, updated_unix=?, "
                    "lease_owner=NULL, lease_expires_unix=NULL WHERE job_id=? AND state='running'",
                    (str(error)[:2000], now, now, str(job_id)),
                )
            return self._get_locked(job_id)

    def release(self, job_id: str) -> JobRecord:
        """Hand a claimed-but-unfinished job back: ``running → queued``.

        The graceful-shutdown verb — the attempt is not counted against
        the job (``attempts`` stays, but no error is recorded).
        """
        now = time.time()
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state='queued', lease_owner=NULL, lease_expires_unix=NULL, "
                "started_unix=NULL, updated_unix=? WHERE job_id=? AND state='running'",
                (now, str(job_id)),
            )
            return self._get_locked(job_id)

    def requeue_expired(self) -> List[JobRecord]:
        """Move every expired-lease ``running`` job back to ``queued``.

        Crash recovery: called by workers on startup and periodically —
        a worker that died mid-job stops heartbeating, its lease lapses,
        and the job is picked up again by whoever is still alive.
        """
        now = time.time()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                rows = self._conn.execute(
                    "SELECT job_id FROM jobs WHERE state='running' AND lease_expires_unix < ?",
                    (now,),
                ).fetchall()
                for (job_id,) in rows:
                    self._conn.execute(
                        "UPDATE jobs SET state='queued', lease_owner=NULL, "
                        "lease_expires_unix=NULL, started_unix=NULL, updated_unix=? "
                        "WHERE job_id=?",
                        (now, job_id),
                    )
                self._conn.execute("COMMIT")
                return [self._get_locked(job_id) for (job_id,) in rows]
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def requeue(self, job_id: str) -> JobRecord:
        """Operator verb: push a failed/cancelled (or expired) job back in."""
        now = time.time()
        with self._lock:
            record = self._get_locked(job_id)
            if record.state == "queued":
                return record
            if record.state == "done":
                raise ValueError(f"job {job_id} is done; nothing to requeue")
            if record.state == "running" and (
                record.lease_expires_unix is None or record.lease_expires_unix >= now
            ):
                raise ValueError(f"job {job_id} is running under a live lease")
            self._conn.execute(
                "UPDATE jobs SET state='queued', error=NULL, lease_owner=NULL, "
                "lease_expires_unix=NULL, started_unix=NULL, finished_unix=NULL, "
                "updated_unix=? WHERE job_id=?",
                (now, str(job_id)),
            )
            return self._get_locked(job_id)

    def cancel(self, job_id: str) -> JobRecord:
        """``queued → cancelled`` (idempotent on already-cancelled jobs).

        Running jobs cannot be cancelled — their worker owns the lease —
        and terminal jobs are immutable history; both raise ValueError.
        """
        now = time.time()
        with self._lock:
            record = self._get_locked(job_id)
            if record.state == "cancelled":
                return record
            if record.state != "queued":
                raise ValueError(f"job {job_id} is {record.state}; only queued jobs can be cancelled")
            self._conn.execute(
                "UPDATE jobs SET state='cancelled', finished_unix=?, updated_unix=? "
                "WHERE job_id=? AND state='queued'",
                (now, now, str(job_id)),
            )
            return self._get_locked(job_id)

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def gc(self, max_age_s: Optional[float] = None, keep: Optional[int] = None) -> int:
        """Prune terminal jobs by age and/or count; returns rows deleted.

        ``max_age_s`` deletes terminal jobs whose last update is older;
        ``keep`` retains only the newest N terminal jobs.  Queued and
        running jobs are never touched.
        """
        deleted = 0
        now = time.time()
        terminal = ",".join(f"'{state}'" for state in TERMINAL_STATES)
        with self._lock:
            if max_age_s is not None:
                cursor = self._conn.execute(
                    f"DELETE FROM jobs WHERE state IN ({terminal}) AND updated_unix < ?",
                    (now - float(max_age_s),),
                )
                deleted += cursor.rowcount
            if keep is not None:
                cursor = self._conn.execute(
                    f"DELETE FROM jobs WHERE state IN ({terminal}) AND job_id NOT IN ("
                    f"  SELECT job_id FROM jobs WHERE state IN ({terminal}) "
                    "   ORDER BY updated_unix DESC, job_id DESC LIMIT ?)",
                    (int(keep),),
                )
                deleted += cursor.rowcount
        return deleted

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Store-level summary: per-state counts, tenants, dedup pressure."""
        with self._lock:
            counts = self.counts()
            total_submits, n_jobs = self._conn.execute(
                "SELECT COALESCE(SUM(submit_count), 0), COUNT(*) FROM jobs"
            ).fetchone()
            per_tenant = {
                tenant: self.counts(tenant) for tenant in self.tenants()
            }
        return {
            "path": self.path,
            "states": counts,
            "n_jobs": int(n_jobs),
            "submit_total": int(total_submits),
            "dedup_hits_total": int(total_submits) - int(n_jobs),
            "tenants": per_tenant,
        }

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._conn.close()
                self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
