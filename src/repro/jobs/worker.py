"""Asyncio worker pool draining the durable job store.

Each :class:`JobWorker` task runs the lease protocol against the shared
:class:`~repro.jobs.store.JobStore`:

1. requeue any expired leases (crash recovery — also run once at start),
2. atomically *claim* up to ``claim_batch`` queued jobs (skipping
   tenants at their ``max_running`` quota),
3. submit every claimed job to the **existing**
   :class:`~repro.serve.batcher.MicroBatcher` — async jobs ride the very
   same micro-batches, fingerprint dedup, pipeline LRU,
   :class:`~repro.parallel.ParallelExecutor` sharding and provenance log
   as synchronous ``/score`` traffic, which is what makes a stored job
   result **bit-identical** to the synchronous response for the same
   graph + model + config,
4. heartbeat the leases while the batch scores, so a slow ``fit_detect``
   is never mistaken for a dead worker,
5. write each outcome back: ``done`` with the full response payload,
   ``failed`` (retried up to ``max_attempts``), or — on cancellation /
   graceful shutdown — *released* back to ``queued`` with no attempt
   charged.

Because a claimed batch is submitted to the batcher in one sweep, jobs
coalesce exactly like concurrent interactive requests do; a pool of
``n_workers`` tasks just overlaps claim latency with scoring.
"""

from __future__ import annotations

import asyncio
import json
import uuid
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.graph import Graph
from repro.jobs.store import JobRecord, JobStore
from repro.obs.logging import get_logger
from repro.obs.tracer import get_tracer

if TYPE_CHECKING:  # pragma: no cover - type-only; runtime import is lazy.
    # serve.server imports this module, so importing repro.serve here
    # would be circular — the batcher types bind inside _execute instead.
    from repro.serve.batcher import MicroBatcher
    from repro.serve.metrics import ServerMetrics

__all__ = ["JobWorker", "JobWorkerPool"]

log = get_logger("jobs")


class JobWorker:
    """One claim-score-complete loop; run several for a pool."""

    def __init__(
        self,
        store: JobStore,
        batcher: MicroBatcher,
        metrics: Optional[ServerMetrics] = None,
        *,
        owner: Optional[str] = None,
        claim_batch: int = 8,
        lease_ttl_s: float = 30.0,
        poll_interval_s: float = 0.05,
        max_attempts: int = 3,
    ) -> None:
        self.store = store
        self.batcher = batcher
        self.metrics = metrics
        self.owner = owner or f"worker-{uuid.uuid4().hex[:8]}"
        self.claim_batch = int(claim_batch)
        self.lease_ttl_s = float(lease_ttl_s)
        self.poll_interval_s = float(poll_interval_s)
        self.max_attempts = int(max_attempts)
        self._task: Optional["asyncio.Task"] = None
        self.jobs_completed = 0
        self.jobs_failed = 0

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Cancel the loop; in-flight claims are released back to queued."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        # Crash recovery on boot: leases orphaned by a previous process.
        for record in self.store.requeue_expired():
            log.info("requeued orphaned job %s (attempt %d)", record.job_id, record.attempts)
        next_sweep = asyncio.get_running_loop().time() + self.lease_ttl_s / 2
        while True:
            loop = asyncio.get_running_loop()
            if loop.time() >= next_sweep:
                next_sweep = loop.time() + self.lease_ttl_s / 2
                for record in self.store.requeue_expired():
                    log.warning("requeued expired-lease job %s", record.job_id)
            claimed = self.store.claim(self.owner, limit=self.claim_batch, lease_ttl_s=self.lease_ttl_s)
            if not claimed:
                await asyncio.sleep(self.poll_interval_s)
                continue
            await self._execute(claimed)

    async def _execute(self, claimed: List[JobRecord]) -> None:
        """Score one claimed batch through the micro-batcher."""
        from repro.serve.batcher import RequestError, ShedError

        tracer = get_tracer()
        submitted: List[Tuple[JobRecord, "asyncio.Future"]] = []
        with tracer.span("jobs.execute", owner=self.owner) as span:
            if tracer.enabled:
                span.set("n_claimed", len(claimed))
            for record in claimed:
                try:
                    graph = Graph.from_json_dict(record.graph_payload())
                    future = self.batcher.submit(
                        graph,
                        model=record.model or None,
                        threshold=record.threshold,
                        mode=record.mode,
                    )
                except ShedError:
                    # The interactive queue is full: hand the job back and
                    # let admission pressure drain before trying again.
                    self.store.release(record.job_id)
                    if self.metrics is not None:
                        self.metrics.record_job_backpressure()
                    continue
                except (RequestError, ValueError, TypeError, json.JSONDecodeError) as error:
                    self._fail(record, f"submit failed: {error}")
                    continue
                submitted.append((record, future))
            if not submitted:
                await asyncio.sleep(self.poll_interval_s)
                return
            heartbeat = asyncio.get_running_loop().create_task(
                self._heartbeat([record.job_id for record, _ in submitted])
            )
            try:
                outcomes = await asyncio.gather(
                    *(future for _, future in submitted), return_exceptions=True
                )
            except asyncio.CancelledError:
                # Graceful shutdown mid-batch: completed scores are kept,
                # unfinished jobs go back to queued with no attempt charged.
                for record, future in submitted:
                    if future.done() and not future.cancelled() and future.exception() is None:
                        self._complete(record, future.result())
                    else:
                        future.cancel()
                        self.store.release(record.job_id)
                        log.info("released job %s back to queued on shutdown", record.job_id)
                raise
            finally:
                heartbeat.cancel()
            for (record, _), outcome in zip(submitted, outcomes):
                if isinstance(outcome, BaseException):
                    self._fail(record, str(outcome) or type(outcome).__name__)
                else:
                    self._complete(record, outcome)

    async def _heartbeat(self, job_ids: List[str]) -> None:
        interval = max(self.lease_ttl_s / 3.0, 0.01)
        while True:
            await asyncio.sleep(interval)
            self.store.heartbeat(job_ids, self.owner, lease_ttl_s=self.lease_ttl_s)

    # ------------------------------------------------------------------
    def _complete(self, record: JobRecord, response: dict) -> None:
        provenance = response.get("provenance") or {}
        stored = self.store.complete(
            record.job_id,
            response,
            trace_id=response.get("trace_id"),
            score_digest=provenance.get("score_digest"),
        )
        self.jobs_completed += 1
        if self.metrics is not None:
            self.metrics.record_job_completed(
                stored.tenant, stored.wait_seconds() or 0.0, stored.run_seconds() or 0.0
            )

    def _fail(self, record: JobRecord, error: str) -> None:
        retry = record.attempts < self.max_attempts
        stored = self.store.fail(record.job_id, error, requeue=retry)
        if retry:
            log.warning("job %s attempt %d failed (%s); requeued", record.job_id, record.attempts, error)
            return
        self.jobs_failed += 1
        log.error("job %s failed permanently after %d attempts: %s", record.job_id, record.attempts, error)
        if self.metrics is not None:
            self.metrics.record_job_failed(stored.tenant)


class JobWorkerPool:
    """A fixed set of :class:`JobWorker` tasks sharing one store + batcher."""

    def __init__(
        self,
        store: JobStore,
        batcher: MicroBatcher,
        metrics: Optional[ServerMetrics] = None,
        *,
        n_workers: int = 1,
        claim_batch: int = 8,
        lease_ttl_s: float = 30.0,
        poll_interval_s: float = 0.05,
        max_attempts: int = 3,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.store = store
        self.workers = [
            JobWorker(
                store,
                batcher,
                metrics,
                owner=f"worker-{index}-{uuid.uuid4().hex[:6]}",
                claim_batch=claim_batch,
                lease_ttl_s=lease_ttl_s,
                poll_interval_s=poll_interval_s,
                max_attempts=max_attempts,
            )
            for index in range(int(n_workers))
        ]

    async def start(self) -> None:
        for worker in self.workers:
            await worker.start()

    async def stop(self) -> None:
        """Stop every worker; claimed-but-unscored jobs return to queued."""
        await asyncio.gather(*(worker.stop() for worker in self.workers))

    @property
    def jobs_completed(self) -> int:
        return sum(worker.jobs_completed for worker in self.workers)

    @property
    def jobs_failed(self) -> int:
        return sum(worker.jobs_failed for worker in self.workers)
