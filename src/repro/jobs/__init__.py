"""Durable async batch jobs: sqlite store, lease-based workers, quotas.

The asynchronous counterpart of the ``/score`` endpoint (DESIGN.md,
"Async batch jobs"): :class:`JobStore` is a WAL-mode sqlite log of every
accepted job — deduplicated by the full input identity, quota-bounded
per tenant, and replayable as audit history — and :class:`JobWorkerPool`
drains it through the serving layer's micro-batcher so stored results
are bit-identical to synchronous responses.  ``python -m repro.jobs``
is the operator CLI (``ls`` / ``show`` / ``requeue`` / ``gc``).
"""

from repro.jobs.store import (
    JOB_SCHEMA_VERSION,
    JOB_STATES,
    TERMINAL_STATES,
    JobRecord,
    JobStore,
    QuotaExceededError,
    TenantQuota,
    UnknownJobError,
    dedup_key,
)
from repro.jobs.worker import JobWorker, JobWorkerPool

__all__ = [
    "JOB_SCHEMA_VERSION",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobRecord",
    "JobStore",
    "JobWorker",
    "JobWorkerPool",
    "QuotaExceededError",
    "TenantQuota",
    "UnknownJobError",
    "dedup_key",
]
