"""Isolation Forest (Liu et al., 2008) implemented with lightweight recursive trees."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.outlier.base import OutlierDetector


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    size: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


def _average_path_length(n: int) -> float:
    """Average unsuccessful-search path length of a BST with n points."""
    if n <= 1:
        return 0.0
    if n == 2:
        return 1.0
    harmonic = np.log(n - 1) + np.euler_gamma
    return 2.0 * harmonic - 2.0 * (n - 1) / n


class IsolationForest(OutlierDetector):
    """Ensemble of random isolation trees; anomalies isolate in few splits."""

    def __init__(self, n_trees: int = 50, max_samples: int = 64, seed: int = 0) -> None:
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_samples = max_samples
        self.seed = seed
        self._trees: List[_Node] = []
        self._sample_size: int = 0
        self._n_features: Optional[int] = None

    # ------------------------------------------------------------------
    def _build_tree(self, X: np.ndarray, depth: int, max_depth: int, rng: np.random.Generator) -> _Node:
        node = _Node(size=X.shape[0])
        if depth >= max_depth or X.shape[0] <= 1:
            return node
        feature = int(rng.integers(0, X.shape[1]))
        low, high = X[:, feature].min(), X[:, feature].max()
        if high - low < 1e-12:
            return node
        threshold = float(rng.uniform(low, high))
        mask = X[:, feature] < threshold
        if mask.all() or (~mask).all():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._build_tree(X[mask], depth + 1, max_depth, rng)
        node.right = self._build_tree(X[~mask], depth + 1, max_depth, rng)
        return node

    def fit(self, X: np.ndarray) -> "IsolationForest":
        X = self._validate(X)
        self._n_features = X.shape[1]
        rng = np.random.default_rng(self.seed)
        self._sample_size = min(self.max_samples, X.shape[0])
        max_depth = int(np.ceil(np.log2(max(self._sample_size, 2))))
        self._trees = []
        for _ in range(self.n_trees):
            sample_indices = rng.choice(X.shape[0], size=self._sample_size, replace=False)
            self._trees.append(self._build_tree(X[sample_indices], 0, max_depth, rng))
        return self

    # ------------------------------------------------------------------
    def _path_length(self, x: np.ndarray, node: _Node, depth: int) -> float:
        while not node.is_leaf:
            node = node.left if x[node.feature] < node.threshold else node.right
            depth += 1
        return depth + _average_path_length(node.size)

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("call fit() before scoring")
        X = self._validate(X, fitted_dim=self._n_features)
        normalizer = _average_path_length(self._sample_size)
        scores = np.empty(X.shape[0])
        for index, x in enumerate(X):
            lengths = [self._path_length(x, tree, 0) for tree in self._trees]
            scores[index] = 2.0 ** (-np.mean(lengths) / max(normalizer, 1e-12))
        return scores
