"""Mahalanobis-distance outlier detector with a shrinkage covariance estimate."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.outlier.base import OutlierDetector


class MahalanobisDetector(OutlierDetector):
    """Distance to the sample mean under a (shrunk) covariance metric."""

    def __init__(self, shrinkage: float = 0.1) -> None:
        if not 0.0 <= shrinkage <= 1.0:
            raise ValueError("shrinkage must be in [0, 1]")
        self.shrinkage = shrinkage
        self._mean: Optional[np.ndarray] = None
        self._precision: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "MahalanobisDetector":
        X = self._validate(X)
        self._mean = X.mean(axis=0)
        centered = X - self._mean
        covariance = centered.T @ centered / max(X.shape[0] - 1, 1)
        # Ledoit-Wolf-style shrinkage toward a scaled identity keeps the
        # matrix invertible for small sample sizes (few candidate groups).
        trace = np.trace(covariance) / covariance.shape[0]
        shrunk = (1.0 - self.shrinkage) * covariance + self.shrinkage * trace * np.eye(covariance.shape[0])
        shrunk += 1e-9 * np.eye(covariance.shape[0])
        self._precision = np.linalg.pinv(shrunk)
        return self

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        if self._mean is None:
            raise RuntimeError("call fit() before scoring")
        X = self._validate(X, fitted_dim=self._mean.shape[0])
        centered = X - self._mean
        return np.sqrt(np.maximum((centered @ self._precision * centered).sum(axis=1), 0.0))
