"""Common interface and helpers for unsupervised outlier detectors."""

from __future__ import annotations

from typing import Optional

import numpy as np


class OutlierDetector:
    """Base class: fit on a sample, score new points (larger = more anomalous)."""

    def fit(self, X: np.ndarray) -> "OutlierDetector":
        raise NotImplementedError

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def fit_scores(self, X: np.ndarray) -> np.ndarray:
        """Convenience: fit on ``X`` and score the same sample."""
        return self.fit(X).decision_scores(X)

    def predict(self, X: np.ndarray, contamination: float = 0.1) -> np.ndarray:
        """Boolean anomaly mask for the top-``contamination`` fraction of scores."""
        if not 0.0 < contamination < 1.0:
            raise ValueError("contamination must be in (0, 1)")
        scores = self.decision_scores(X)
        threshold = np.quantile(scores, 1.0 - contamination)
        return scores >= threshold

    @staticmethod
    def _validate(X: np.ndarray, fitted_dim: Optional[int] = None) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("detector input must be a 2-D array (n_samples, n_features)")
        if X.shape[0] == 0:
            raise ValueError("detector input is empty")
        if fitted_dim is not None and X.shape[1] != fitted_dim:
            raise ValueError(f"expected {fitted_dim} features, got {X.shape[1]}")
        if not np.isfinite(X).all():
            raise ValueError("detector input contains NaN or infinite values")
        return X


def min_max_normalize(scores: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Scale scores into [0, 1]; constant score vectors map to all zeros."""
    scores = np.asarray(scores, dtype=np.float64)
    low, high = scores.min(), scores.max()
    if high - low < eps:
        return np.zeros_like(scores)
    return (scores - low) / (high - low)
