"""Local Outlier Factor (Breunig et al., 2000) on dense embeddings."""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.spatial.distance import cdist

from repro.outlier.base import OutlierDetector


class LocalOutlierFactor(OutlierDetector):
    """Classic LOF: ratio of the local density of a point to that of its neighbours."""

    def __init__(self, n_neighbors: int = 10) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self._train: Optional[np.ndarray] = None
        self._train_lrd: Optional[np.ndarray] = None
        self._train_k_distance: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _k(self, n_samples: int) -> int:
        return max(1, min(self.n_neighbors, n_samples - 1))

    def fit(self, X: np.ndarray) -> "LocalOutlierFactor":
        X = self._validate(X)
        self._train = X.copy()
        k = self._k(X.shape[0])

        distances = cdist(X, X)
        np.fill_diagonal(distances, np.inf)
        neighbor_indices = np.argsort(distances, axis=1)[:, :k]
        neighbor_distances = np.take_along_axis(distances, neighbor_indices, axis=1)
        self._train_k_distance = neighbor_distances[:, -1]

        reach = np.maximum(neighbor_distances, self._train_k_distance[neighbor_indices])
        self._train_lrd = 1.0 / (reach.mean(axis=1) + 1e-12)
        return self

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        if self._train is None:
            raise RuntimeError("call fit() before scoring")
        X = self._validate(X, fitted_dim=self._train.shape[1])
        k = self._k(self._train.shape[0])

        distances = cdist(X, self._train)
        # When scoring the training sample itself, ignore self-distances.
        if X.shape == self._train.shape and np.allclose(X, self._train):
            np.fill_diagonal(distances, np.inf)
        neighbor_indices = np.argsort(distances, axis=1)[:, :k]
        neighbor_distances = np.take_along_axis(distances, neighbor_indices, axis=1)

        reach = np.maximum(neighbor_distances, self._train_k_distance[neighbor_indices])
        lrd = 1.0 / (reach.mean(axis=1) + 1e-12)
        lof = (self._train_lrd[neighbor_indices].mean(axis=1)) / (lrd + 1e-12)
        return lof
