"""ECOD: unsupervised outlier detection using empirical cumulative distributions.

Re-implementation of Li et al. (TKDE 2022), the detector the paper uses on
TPGCL embeddings.  For every dimension the left and right empirical tail
probabilities of each point are computed; the outlier score aggregates the
negative log tail probabilities, automatically choosing the heavier tail
per dimension based on skewness.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import stats

from repro.outlier.base import OutlierDetector


class ECOD(OutlierDetector):
    """Empirical-Cumulative-distribution-based Outlier Detection."""

    def __init__(self) -> None:
        self._train: Optional[np.ndarray] = None
        self._skew: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "ECOD":
        X = self._validate(X)
        self._train = X.copy()
        self._skew = stats.skew(X, axis=0, bias=True)
        return self

    def _tail_probabilities(self, X: np.ndarray) -> tuple:
        """Left and right empirical tail probabilities of X against the training sample."""
        n = self._train.shape[0]
        left = np.empty_like(X)
        right = np.empty_like(X)
        for dim in range(X.shape[1]):
            sorted_column = np.sort(self._train[:, dim])
            # P(train <= x) and P(train >= x), with the +1 smoothing ECOD uses.
            left[:, dim] = (np.searchsorted(sorted_column, X[:, dim], side="right") + 1) / (n + 1)
            right[:, dim] = (n - np.searchsorted(sorted_column, X[:, dim], side="left") + 1) / (n + 1)
        return left, right

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        if self._train is None:
            raise RuntimeError("call fit() before scoring")
        X = self._validate(X, fitted_dim=self._train.shape[1])
        left, right = self._tail_probabilities(X)
        log_left = -np.log(left)
        log_right = -np.log(right)
        # Skewness-corrected aggregation: use the tail matching the skew sign.
        skew_corrected = np.where(self._skew[None, :] < 0, log_left, log_right)
        aggregated = np.maximum(np.maximum(log_left.sum(axis=1), log_right.sum(axis=1)), skew_corrected.sum(axis=1))
        return aggregated
