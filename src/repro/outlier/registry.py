"""Name-based outlier detector construction (used by pipeline configs)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.outlier.base import OutlierDetector
from repro.outlier.ecod import ECOD
from repro.outlier.ensemble import SUODEnsemble
from repro.outlier.iforest import IsolationForest
from repro.outlier.lof import LocalOutlierFactor
from repro.outlier.mahalanobis import MahalanobisDetector

_FACTORIES: Dict[str, Callable[[], OutlierDetector]] = {
    "ecod": ECOD,
    "lof": LocalOutlierFactor,
    "iforest": IsolationForest,
    "mahalanobis": MahalanobisDetector,
    "suod": SUODEnsemble,
}


def available_detectors() -> List[str]:
    """Names accepted by :func:`get_detector`."""
    return sorted(_FACTORIES)


def get_detector(name: str) -> OutlierDetector:
    """Instantiate an outlier detector by name (``ecod``, ``lof``, ``iforest``,
    ``mahalanobis`` or ``suod``)."""
    key = name.strip().lower()
    if key not in _FACTORIES:
        raise KeyError(f"unknown detector '{name}'; available: {available_detectors()}")
    return _FACTORIES[key]()
