"""SUOD-style ensemble: average of min-max-normalised base detector scores.

SUOD (Zhao et al., MLSys 2021) is an acceleration/ensembling framework over
heterogeneous detectors; the behaviour that matters for this reproduction
is the heterogeneous score combination, which is implemented here as the
mean of normalised base scores.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.outlier.base import OutlierDetector, min_max_normalize
from repro.outlier.ecod import ECOD
from repro.outlier.iforest import IsolationForest
from repro.outlier.lof import LocalOutlierFactor
from repro.outlier.mahalanobis import MahalanobisDetector


class SUODEnsemble(OutlierDetector):
    """Heterogeneous detector ensemble with normalised score averaging."""

    def __init__(self, detectors: Optional[Sequence[OutlierDetector]] = None) -> None:
        self.detectors: List[OutlierDetector] = list(
            detectors
            if detectors is not None
            else (ECOD(), LocalOutlierFactor(), IsolationForest(), MahalanobisDetector())
        )
        if not self.detectors:
            raise ValueError("the ensemble needs at least one base detector")
        self._fitted = False

    def fit(self, X: np.ndarray) -> "SUODEnsemble":
        X = self._validate(X)
        for detector in self.detectors:
            detector.fit(X)
        self._fitted = True
        return self

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("call fit() before scoring")
        X = self._validate(X)
        normalized = [min_max_normalize(d.decision_scores(X)) for d in self.detectors]
        return np.mean(normalized, axis=0)
