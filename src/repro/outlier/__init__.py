"""Unsupervised outlier detectors used to score group embeddings.

The paper feeds TPGCL embeddings into ECOD (and mentions SUOD as an
alternative).  All detectors here follow the same minimal interface:
``fit(X)``, ``decision_scores(X)`` (larger = more anomalous) and
``predict(X, contamination)`` returning a boolean anomaly mask.
"""

from repro.outlier.base import OutlierDetector
from repro.outlier.ecod import ECOD
from repro.outlier.lof import LocalOutlierFactor
from repro.outlier.iforest import IsolationForest
from repro.outlier.mahalanobis import MahalanobisDetector
from repro.outlier.ensemble import SUODEnsemble
from repro.outlier.registry import get_detector, available_detectors

__all__ = [
    "OutlierDetector",
    "ECOD",
    "LocalOutlierFactor",
    "IsolationForest",
    "MahalanobisDetector",
    "SUODEnsemble",
    "get_detector",
    "available_detectors",
]
