"""Seed plumbing shared by configs, the parallel executor and persistence.

Three rules keep every execution mode (serial, sharded, warm-started)
reproducible:

1. **``None`` means unset.**  Stage configs default their ``seed`` to
   ``None``; an explicitly passed value — including ``0`` — always wins
   and is never rewritten by a parent config.
2. **Unset stage seeds derive distinct streams.**  :func:`derive_stage_seeds`
   expands a master seed into one independent integer per pipeline stage
   via :class:`numpy.random.SeedSequence`, so the MH-GAE, sampler and
   TPGCL stages never consume the *same* stream (the old behaviour of
   copying the master seed verbatim into every stage).
3. **Per-item seeds are derived by index, not by worker.**
   :func:`spawn_seeds` uses ``SeedSequence.spawn`` keyed on the item's
   position in the batch, so sharding a batch across processes cannot
   change any item's stream — sharded results are bit-identical to the
   serial order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

#: Stage names, in the fixed order their derived seeds are generated.
STAGE_NAMES: Tuple[str, ...] = ("mhgae", "sampler", "tpgcl")


def resolve_seed(seed: Optional[int]) -> int:
    """Resolve an optional seed: ``None`` (unset) falls back to ``0``.

    Stage configs used standalone (outside a :class:`TPGrGADConfig`) keep
    the historical deterministic default this way, while ``None`` stays
    distinguishable from an explicit ``0`` during config composition.
    """
    return 0 if seed is None else int(seed)


def derive_stage_seeds(master: int) -> Dict[str, int]:
    """Distinct deterministic per-stage seeds derived from ``master``.

    The mapping is stable across sessions and platforms (SeedSequence's
    expansion is specified), and distinct stages get provably independent
    streams instead of re-consuming the identical master stream.
    """
    state = np.random.SeedSequence(int(master)).generate_state(len(STAGE_NAMES))
    return {stage: int(value) for stage, value in zip(STAGE_NAMES, state)}


def spawn_seeds(master: int, n: int) -> List[int]:
    """``n`` independent child seeds of ``master`` via ``SeedSequence.spawn``.

    Child ``i`` depends only on ``(master, i)`` — never on how a batch is
    chunked or which worker processes item ``i`` — which is what makes
    sharded execution bit-identical to the serial order.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    children = np.random.SeedSequence(int(master)).spawn(n)
    return [int(child.generate_state(1)[0]) for child in children]
