"""Gradient-descent optimizers (SGD with momentum, Adam).

Both optimizers update fully in place: each step writes into preallocated
scratch buffers (two per parameter for Adam, one for SGD) instead of
allocating fresh temporaries for the weight-decay term, ``m_hat``/``v_hat``
and the update itself.  Every in-place expression applies the same scalar
operations in an order that is bitwise-equivalent to the original
allocating formulation (only commutative reorderings such as ``g·c`` for
``c·g``), so parameter trajectories are unchanged to the last bit — see
``tests/test_train_engine.py`` for the regression oracle.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        """Drop gradient buffers of every managed parameter.

        ``Tensor.zero_grad`` sets ``grad = None`` rather than zero-filling,
        so the next backward pass allocates (or reuses, via the owned-array
        fast path) buffers on demand instead of clearing full-size arrays.
        """
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class EarlyStopping:
    """Loss-plateau tracker shared by the GAE and TPGCL training loops.

    Disabled when ``patience <= 0``; otherwise reports "stop" after the
    monitored loss has failed to improve on the best seen value by more
    than ``min_delta`` for ``patience`` consecutive steps.
    """

    def __init__(self, patience: int, min_delta: float = 0.0) -> None:
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.best = np.inf
        self.wait = 0

    def should_stop(self, loss: float) -> bool:
        if self.patience <= 0:
            return False
        if loss < self.best - self.min_delta:
            self.best = loss
            self.wait = 0
            return False
        self.wait += 1
        return self.wait >= self.patience


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch = [np.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity, scratch in zip(self.parameters, self._velocity, self._scratch):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                np.multiply(param.data, self.weight_decay, out=scratch)
                scratch += grad
                grad = scratch
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            np.multiply(update, self.lr, out=scratch)
            param.data -= scratch


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch1 = [np.empty_like(p.data) for p in self.parameters]
        self._scratch2 = [np.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v, s1, s2 in zip(
            self.parameters, self._m, self._v, self._scratch1, self._scratch2
        ):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                np.multiply(param.data, self.weight_decay, out=s1)
                s1 += grad
                grad = s1
            # m ← β₁·m + (1−β₁)·g
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=s2)
            m += s2
            # v ← β₂·v + (1−β₂)·g²
            np.multiply(grad, grad, out=s2)
            s2 *= 1.0 - self.beta2
            v *= self.beta2
            v += s2
            # θ ← θ − lr·m̂ / (√v̂ + ε)
            np.divide(v, bias2, out=s2)
            np.sqrt(s2, out=s2)
            s2 += self.eps
            np.divide(m, bias1, out=s1)
            s1 *= self.lr
            s1 /= s2
            param.data -= s1
