"""Layers: Linear, MLP, graph convolutions, dropout and decoders.

The graph convolution follows Kipf & Welling's GCN rule

    H' = act( \\hat{A} H W + b )

where ``\\hat{A}`` is the symmetrically normalised adjacency with self
loops.  :class:`GraphSNNConv` is the same propagation rule but driven by the
GraphSNN weighted adjacency ``Ã`` of Eqn. (4) in the paper, which is the
reconstruction target recommended for MH-GAE.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.nn.init import glorot_uniform, zeros
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.tensor.functional import spmm

Activation = Optional[str]
Propagation = Union[np.ndarray, sp.spmatrix]

_ACTIVATIONS: dict = {
    None: lambda x: x,
    "relu": lambda x: x.relu(),
    "leaky_relu": lambda x: x.leaky_relu(),
    "sigmoid": lambda x: x.sigmoid(),
    "tanh": lambda x: x.tanh(),
    "softplus": lambda x: x.softplus(),
}


def _resolve_activation(name: Activation) -> Callable[[Tensor], Tensor]:
    if callable(name):
        return name
    if name not in _ACTIVATIONS:
        raise ValueError(f"unknown activation '{name}'; choose one of {sorted(k for k in _ACTIVATIONS if k)}")
    return _ACTIVATIONS[name]


class Linear(Module):
    """Dense affine layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(glorot_uniform((in_features, out_features), rng))
        self.bias = Parameter(zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        x = x if isinstance(x, Tensor) else Tensor(x)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout driven by an explicit random generator."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return x.dropout(self.rate, self._rng, training=self.training)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with a configurable hidden activation.

    Used both as the attribute decoder of the GAE family and as the MINE
    statistics network Φ in TPGCL.
    """

    def __init__(
        self,
        dims: Sequence[int],
        rng: np.random.Generator,
        activation: Activation = "relu",
        output_activation: Activation = None,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dimensions")
        self.linears: List[Linear] = [Linear(dims[i], dims[i + 1], rng) for i in range(len(dims) - 1)]
        self._activation = _resolve_activation(activation)
        self._output_activation = _resolve_activation(output_activation)
        self._dropout = Dropout(dropout, rng) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        x = x if isinstance(x, Tensor) else Tensor(x)
        last = len(self.linears) - 1
        for index, linear in enumerate(self.linears):
            x = linear(x)
            if index != last:
                x = self._activation(x)
                if self._dropout is not None:
                    x = self._dropout(x)
        return self._output_activation(x)


class GCNConv(Module):
    """Graph convolution ``act(\\hat{A} X W + b)`` with a precomputed propagation matrix.

    The propagation matrix is passed at call time — either a plain numpy
    array or a ``scipy.sparse`` matrix (it is a constant of the optimisation
    problem), so the same layer works with the normalised adjacency, its
    k-th powers, or the GraphSNN ``Ã``.  Sparse propagation never densifies
    ``\\hat{A}``: forward and backward both run as sparse-dense products.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        activation: Activation = "relu",
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, rng, bias=bias)
        self._activation = _resolve_activation(activation)

    def forward(self, x: Tensor, propagation: Propagation) -> Tensor:
        x = x if isinstance(x, Tensor) else Tensor(x)
        support = self.linear(x)
        if sp.issparse(propagation):
            return self._activation(spmm(propagation, support))
        propagated = Tensor(np.asarray(propagation, dtype=support.data.dtype)) @ support
        return self._activation(propagated)


class GraphSNNConv(Module):
    """GCN-style convolution driven by the GraphSNN weighted adjacency ``Ã``.

    GraphSNN (Wijesinghe & Wang, ICLR 2022) augments message passing with
    overlap-subgraph weights; the paper uses its weighted adjacency as the
    reconstruction target of MH-GAE.  The layer itself mixes the node's own
    transformed features with structurally weighted neighbour messages:

        H' = act( (I + Ã_norm) X W )
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        activation: Activation = "relu",
    ) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, rng)
        self._activation = _resolve_activation(activation)

    def forward(self, x: Tensor, weighted_adjacency: Propagation) -> Tensor:
        x = x if isinstance(x, Tensor) else Tensor(x)
        support = self.linear(x)
        if sp.issparse(weighted_adjacency):
            mixing = (sp.identity(weighted_adjacency.shape[0], format="csr") + weighted_adjacency).tocsr()
            return self._activation(spmm(mixing, support))
        weighted = np.asarray(weighted_adjacency, dtype=support.data.dtype)
        mixing = np.eye(weighted.shape[0], dtype=weighted.dtype) + weighted
        return self._activation(Tensor(mixing) @ support)


class InnerProductDecoder(Module):
    """Structure decoder ``sigmoid(Z Z^T)`` used by every GAE variant."""

    def __init__(self, apply_sigmoid: bool = True) -> None:
        super().__init__()
        self.apply_sigmoid = apply_sigmoid

    def forward(self, z: Tensor) -> Tensor:
        logits = z @ z.T
        return logits.sigmoid() if self.apply_sigmoid else logits
