"""Weight initialisation schemes.

All initialisers take an explicit :class:`numpy.random.Generator` so model
construction is fully reproducible from a single seed.  Random draws always
happen in float64 — a float32 model casts the float64 draw afterwards, so a
fast-mode model starts from (the rounded image of) exactly the same weights
as its float64 reference and the RNG stream is dtype-independent.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor.tensor import get_default_dtype


def _resolve(dtype: Optional[np.dtype]) -> np.dtype:
    return get_default_dtype() if dtype is None else np.dtype(dtype)


def glorot_uniform(
    shape: Tuple[int, ...], rng: np.random.Generator, dtype: Optional[np.dtype] = None
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation, the scheme used by GCN."""
    if len(shape) < 2:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[0], shape[1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(_resolve(dtype), copy=False)


def uniform(
    shape: Tuple[int, ...],
    rng: np.random.Generator,
    low: float = -0.05,
    high: float = 0.05,
    dtype: Optional[np.dtype] = None,
) -> np.ndarray:
    """Uniform initialisation in ``[low, high]``."""
    return rng.uniform(low, high, size=shape).astype(_resolve(dtype), copy=False)


def zeros(shape: Tuple[int, ...], dtype: Optional[np.dtype] = None) -> np.ndarray:
    """All-zeros initialisation (used for biases)."""
    return np.zeros(shape, dtype=_resolve(dtype))
