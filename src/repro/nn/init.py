"""Weight initialisation schemes.

All initialisers take an explicit :class:`numpy.random.Generator` so model
construction is fully reproducible from a single seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def glorot_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation, the scheme used by GCN."""
    if len(shape) < 2:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[0], shape[1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def uniform(shape: Tuple[int, ...], rng: np.random.Generator, low: float = -0.05, high: float = 0.05) -> np.ndarray:
    """Uniform initialisation in ``[low, high]``."""
    return rng.uniform(low, high, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zeros initialisation (used for biases)."""
    return np.zeros(shape, dtype=np.float64)
