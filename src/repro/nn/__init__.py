"""Neural-network building blocks used across the reproduction.

The paper's models are small: 2-layer GCN encoders, inner-product or MLP
decoders, and an MLP statistics network for the MINE mutual-information
estimator.  This subpackage provides exactly those pieces on top of the
:mod:`repro.tensor` autodiff engine.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import Linear, MLP, GCNConv, GraphSNNConv, InnerProductDecoder, Dropout, Sequential
from repro.nn.optim import SGD, Adam, EarlyStopping, Optimizer
from repro.nn.init import glorot_uniform, zeros, uniform

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "GCNConv",
    "GraphSNNConv",
    "InnerProductDecoder",
    "Dropout",
    "Sequential",
    "SGD",
    "Adam",
    "EarlyStopping",
    "Optimizer",
    "glorot_uniform",
    "zeros",
    "uniform",
]
