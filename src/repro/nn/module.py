"""Minimal ``Module`` / ``Parameter`` abstraction.

Modules own named parameters and sub-modules, expose ``parameters()`` for
optimizers, and carry a ``training`` flag consumed by stochastic layers
such as :class:`repro.nn.layers.Dropout`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all neural-network modules.

    Sub-classes assign :class:`Parameter` and :class:`Module` instances as
    attributes; both are discovered automatically by :meth:`parameters` and
    :meth:`named_parameters`.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Parameter discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs for this module and children."""
        for name, value in vars(self).items():
            qualified = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield qualified, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{qualified}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{qualified}.{index}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{qualified}.{index}.")

    def parameters(self) -> List[Parameter]:
        """Return the list of trainable parameters (depth-first order)."""
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all sub-modules depth-first."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------
    # Training / evaluation mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set the training flag on this module and all sub-modules."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Switch the module (and children) to evaluation mode."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Gradient helpers and state
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Clear accumulated gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar trainable values."""
        return sum(param.size for param in self.parameters())

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of every parameter keyed by its qualified name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, values in state.items():
            if own[name].data.shape != values.shape:
                raise ValueError(f"shape mismatch for '{name}': {own[name].data.shape} vs {values.shape}")
            own[name].data = np.asarray(values, dtype=own[name].data.dtype).copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
