"""Graph AutoEncoders for anchor-node localization.

:class:`GraphAutoEncoder` is the vanilla attributed GAE (the DOMINANT-style
model of Sec. III-A): a GCN encoder, an inner-product structure decoder and
an MLP attribute decoder, trained to reconstruct the adjacency and feature
matrices.  Per-node reconstruction errors (Eqn. 1) are its anomaly scores.

:class:`MultiHopGAE` (MH-GAE, Sec. V-B) replaces the structure
reconstruction target with either a standardised k-hop matrix ``A^k``
(Eqn. 3) or the GraphSNN weighted adjacency ``Ã`` (Eqn. 4), so the
reconstruction error captures *long-range inconsistency* and exposes nodes
hidden deep inside anomaly groups.

:func:`select_anchor_nodes` turns node scores into the anchor set used by
candidate-group sampling.
"""

from repro.gae.autoencoder import GraphAutoEncoder, GAEConfig, GAETrainingResult
from repro.gae.multihop import MultiHopGAE, MHGAEConfig
from repro.gae.anchors import select_anchor_nodes

__all__ = [
    "GraphAutoEncoder",
    "GAEConfig",
    "GAETrainingResult",
    "MultiHopGAE",
    "MHGAEConfig",
    "select_anchor_nodes",
]
