"""Anchor-node selection from per-node anomaly scores."""

from __future__ import annotations

import numpy as np


def select_anchor_nodes(
    scores: np.ndarray,
    fraction: float = 0.1,
    minimum: int = 3,
    maximum: int | None = None,
) -> np.ndarray:
    """Select the highest-scoring nodes as anchors.

    Parameters
    ----------
    scores:
        Per-node anomaly scores (larger = more anomalous).
    fraction:
        Fraction of nodes to keep; the paper uses the top 10%.
    minimum:
        Lower bound on the number of anchors (sampling needs at least a few
        seeds even on tiny graphs).
    maximum:
        Optional hard cap, useful to bound the O(m²) pair enumeration of the
        group-sampling stage on large graphs.

    Returns
    -------
    numpy.ndarray
        Anchor node indices sorted by decreasing score.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise ValueError("scores must be a 1-D array")
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    count = max(int(minimum), int(round(fraction * scores.shape[0])))
    count = min(count, scores.shape[0])
    if maximum is not None:
        count = min(count, int(maximum))
    order = np.argsort(-scores, kind="stable")
    return order[:count]
