"""Multi-Hop Graph AutoEncoder (MH-GAE), Sec. V-B of the paper.

MH-GAE differs from the vanilla GAE only in its *structure reconstruction
target*: instead of the one-hop adjacency ``A`` it reconstructs either

* a standardised k-hop matrix ``A^k`` (Eqn. 3), or
* the GraphSNN weighted adjacency ``Ã`` (Eqn. 4, the recommended choice),

so nodes deep inside an anomaly group — which look perfectly normal to
their immediate neighbours but inconsistent with the wider graph — receive
large reconstruction errors.  Those errors are thresholded into the anchor
node set that seeds candidate-group sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.gae.autoencoder import GAEConfig, GraphAutoEncoder, Propagation
from repro.graph import Graph, graphsnn_weighted_adjacency, k_hop_matrix, row_normalize


@dataclass
class MHGAEConfig(GAEConfig):
    """MH-GAE hyperparameters.

    ``target`` selects the reconstruction objective: ``"graphsnn"`` (Ã,
    default and recommended by the paper), ``"k_hop"`` (requires ``k_hops``)
    or ``"adjacency"`` (falls back to the vanilla GAE, useful for the Table
    IV ablation).  ``graphsnn_lambda`` is the λ exponent of Eqn. (4).

    ``propagate_with_target`` additionally drives the GCN encoder's message
    passing with the multi-hop matrix (mixed with the one-hop adjacency), so
    a node's embedding aggregates information from the same multi-hop
    neighbourhood its reconstruction target covers.  This is the mechanism
    that lets the reconstruction error of nodes deep inside an anomaly group
    reflect their inconsistency with long-range (outside-group) nodes — see
    DESIGN.md for how this maps onto the paper's Eqns. (3)-(4).
    """

    target: str = "graphsnn"
    k_hops: int = 5
    graphsnn_lambda: float = 1.0
    propagate_with_target: bool = True


class MultiHopGAE(GraphAutoEncoder):
    """MH-GAE: a GAE whose reconstruction objective sees beyond one hop.

    Examples
    --------
    >>> from repro.datasets import make_example_graph
    >>> model = MultiHopGAE(MHGAEConfig(epochs=5, target="graphsnn"))
    >>> anchors = model.fit(make_example_graph()).anchor_nodes(fraction=0.1)
    >>> len(anchors) > 0
    True
    """

    def __init__(self, config: Optional[MHGAEConfig] = None) -> None:
        super().__init__(config or MHGAEConfig())

    # ------------------------------------------------------------------
    # Differences from the vanilla GAE: the structure target and,
    # optionally, the propagation matrix of the encoder.
    # ------------------------------------------------------------------
    def _build_structure_target(self, graph: Graph) -> np.ndarray:
        config: MHGAEConfig = self.config  # type: ignore[assignment]
        if config.target == "adjacency":
            return graph.adjacency(sparse=False)
        if config.target == "k_hop":
            return k_hop_matrix(graph, config.k_hops)
        if config.target == "graphsnn":
            return graphsnn_weighted_adjacency(graph, lam=config.graphsnn_lambda)
        raise ValueError(f"unknown MH-GAE target '{config.target}'")

    def _build_propagation(self, graph: Graph) -> Propagation:
        config: MHGAEConfig = self.config  # type: ignore[assignment]
        one_hop = super()._build_propagation(graph)
        if config.target == "adjacency" or not config.propagate_with_target:
            return one_hop
        # Mix the multi-hop reachability mass with the one-hop propagation
        # and renormalise rows, so messages travel along the same long-range
        # relations the reconstruction loss penalises.
        target = self._structure_target
        if target is None:  # pragma: no cover - fit() always builds the target first
            target = self._build_structure_target(graph)
        if sp.issparse(one_hop):
            if config.target == "graphsnn":
                # Ã shares the sparsity of A, so the mixed propagation stays
                # sparse: one_hop + row-normalised (Ã + I), all in CSR.
                target_norm = row_normalize(sp.csr_matrix(target) + sp.identity(graph.n_nodes, format="csr"))
                return row_normalize((one_hop + target_norm).tocsr())
            # k-hop reachability mass is dense for any connected graph;
            # densify the mix rather than pretending it is sparse.
            one_hop = one_hop.toarray()
        mixed = one_hop + row_normalize(target + np.eye(graph.n_nodes))
        return row_normalize(mixed)

    # ------------------------------------------------------------------
    # Anchor selection helper (thin wrapper around gae.anchors)
    # ------------------------------------------------------------------
    def anchor_nodes(self, fraction: float = 0.1, minimum: int = 3) -> np.ndarray:
        """Indices of the top-``fraction`` nodes by reconstruction error.

        The paper selects the top 10% of nodes as anchors (Sec. VII-A4).
        """
        from repro.gae.anchors import select_anchor_nodes

        return select_anchor_nodes(self.score_nodes(), fraction=fraction, minimum=minimum)
