"""Vanilla attributed Graph AutoEncoder (DOMINANT-style).

The model is the reference N-GAD detector described in Sec. III-A of the
paper:

* encoder — a 2-layer GCN producing node embeddings ``Z``,
* structure decoder — ``sigmoid(Z Z^T)`` reconstructing the adjacency,
* attribute decoder — an MLP reconstructing the feature matrix,
* loss — ``λ · ||A - A'||² + (1 - λ) · ||X - X'||²``,
* per-node anomaly score — the weighted sum of that node's structure and
  attribute reconstruction errors (Eqn. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.graph import Graph, normalized_adjacency
from repro.nn import Adam, EarlyStopping, GCNConv, MLP, Module
from repro.obs.tracer import get_tracer
from repro.seeding import resolve_seed
from repro.tensor import Tensor, default_dtype, no_grad, tape_node_count
from repro.tensor.functional import gae_reconstruction_loss

Propagation = Union[np.ndarray, sp.spmatrix]


@dataclass
class GAEConfig:
    """Hyperparameters of the vanilla GAE.

    ``structure_weight`` is the λ of Eqn. (1) balancing structure vs
    attribute reconstruction; the paper and DOMINANT both use values around
    0.5-0.8.  ``feature_scaling`` controls the preprocessing of the node
    attribute matrix (``"minmax"``, ``"standardize"`` or ``"none"``); the
    reconstruction target uses the same scaled features.
    ``normalize_errors`` z-scores the structure and attribute error
    components across nodes before the weighted combination of Eqn. (1), so
    neither term dominates purely because of its scale.
    ``sparse_propagation`` keeps the GCN propagation matrix in CSR form so
    message passing runs as sparse-dense products and never materialises a
    dense ``n × n`` matrix (the reconstruction *target* stays dense — the
    sigmoid inner-product decoder is inherently dense).

    ``dtype`` selects the training precision: ``"float64"`` (default) is
    the bit-reproducible reference path; ``"float32"`` is the fast mode —
    all derived matrices are still *built* in float64 and cast once, so the
    float32 run starts from the rounded image of the reference state.
    ``patience``/``min_delta`` enable convergence-based early stopping:
    with ``patience > 0`` training stops once the loss has failed to
    improve by more than ``min_delta`` for ``patience`` consecutive epochs
    (``patience = 0``, the default, always runs the full ``epochs``).
    """

    hidden_dim: int = 64
    embedding_dim: int = 32
    epochs: int = 100
    learning_rate: float = 0.01
    weight_decay: float = 0.0
    structure_weight: float = 0.6
    feature_scaling: str = "minmax"
    normalize_errors: bool = True
    sparse_propagation: bool = True
    dtype: str = "float64"
    patience: int = 0
    min_delta: float = 0.0
    # None means "unset": standalone use resolves to 0, while a parent
    # TPGrGADConfig fills it with a stream derived from its master seed.
    seed: Optional[int] = None


@dataclass
class GAETrainingResult:
    """Losses recorded while fitting a GAE."""

    losses: List[float] = field(default_factory=list)
    early_stopped: bool = False

    @property
    def final_loss(self) -> Optional[float]:
        return self.losses[-1] if self.losses else None

    @property
    def epochs_run(self) -> int:
        return len(self.losses)


class _GAEModel(Module):
    """Encoder + decoders; kept separate from the fitting logic."""

    def __init__(self, n_features: int, n_nodes: int, config: GAEConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.encoder_1 = GCNConv(n_features, config.hidden_dim, rng, activation="relu")
        self.encoder_2 = GCNConv(config.hidden_dim, config.embedding_dim, rng, activation=None)
        self.attribute_decoder = MLP(
            [config.embedding_dim, config.hidden_dim, n_features], rng, activation="relu"
        )

    def encode(self, features: Tensor, propagation: Propagation) -> Tensor:
        hidden = self.encoder_1(features, propagation)
        return self.encoder_2(hidden, propagation)

    def decode_structure(self, z: Tensor) -> Tensor:
        return (z @ z.T).sigmoid()

    def decode_attributes(self, z: Tensor) -> Tensor:
        return self.attribute_decoder(z)


class GraphAutoEncoder:
    """Vanilla attributed GAE with reconstruction-error anomaly scoring.

    Examples
    --------
    >>> from repro.datasets import make_example_graph
    >>> gae = GraphAutoEncoder(GAEConfig(epochs=5))
    >>> scores = gae.fit(make_example_graph()).score_nodes()
    >>> scores.shape
    (110,)
    """

    def __init__(self, config: Optional[GAEConfig] = None) -> None:
        self.config = config or GAEConfig()
        self._model: Optional[_GAEModel] = None
        self._graph: Optional[Graph] = None
        self._propagation: Optional[Propagation] = None
        self._structure_target: Optional[np.ndarray] = None
        self._scaled_features: Optional[np.ndarray] = None
        self.training_result = GAETrainingResult()

    # ------------------------------------------------------------------
    # Feature preprocessing
    # ------------------------------------------------------------------
    def _scale_features(self, features: np.ndarray) -> np.ndarray:
        mode = self.config.feature_scaling
        if mode == "none":
            return features.copy()
        if mode == "standardize":
            return (features - features.mean(axis=0)) / (features.std(axis=0) + 1e-9)
        if mode == "minmax":
            low, high = features.min(axis=0), features.max(axis=0)
            return (features - low) / np.maximum(high - low, 1e-9)
        raise ValueError(f"unknown feature_scaling '{mode}'")

    # ------------------------------------------------------------------
    # Reconstruction target and propagation (overridden by MH-GAE)
    # ------------------------------------------------------------------
    def _build_structure_target(self, graph: Graph) -> np.ndarray:
        return graph.adjacency(sparse=False)

    def _build_propagation(self, graph: Graph) -> Propagation:
        return normalized_adjacency(graph, sparse=self.config.sparse_propagation)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        """Training dtype resolved from the config."""
        return np.dtype(self.config.dtype)

    def _bind_graph(self, graph: Graph) -> None:
        """Build the per-graph derived state, cast once to the config dtype.

        Targets, propagation matrices and scaled features are always
        *constructed* in float64 (identical to the reference path) and only
        rounded at the end, so fast mode sees the rounded image of exactly
        the state the float64 run trains on.
        """
        dtype = self.dtype
        self._graph = graph
        self._structure_target = self._build_structure_target(graph)
        self._propagation = self._build_propagation(graph)
        self._scaled_features = self._scale_features(graph.features)
        if dtype != np.float64:
            self._structure_target = np.asarray(self._structure_target, dtype=dtype)
            self._scaled_features = np.asarray(self._scaled_features, dtype=dtype)
            if sp.issparse(self._propagation):
                self._propagation = self._propagation.astype(dtype)
            else:
                self._propagation = np.asarray(self._propagation, dtype=dtype)

    def fit(self, graph: Graph) -> "GraphAutoEncoder":
        """Train encoder and decoders on ``graph`` (unsupervised)."""
        config = self.config
        tracer = get_tracer()
        with tracer.span("gae.fit", model=type(self).__name__) as fit_span:
            tape_before = tape_node_count()
            rng = np.random.default_rng(resolve_seed(config.seed))
            with tracer.span("gae.bind_graph"):
                self._bind_graph(graph)
            lam = config.structure_weight
            self.training_result = GAETrainingResult()
            stopper = EarlyStopping(config.patience, config.min_delta)
            workspace: dict = {}

            with default_dtype(self.dtype):
                self._model = _GAEModel(graph.n_features, graph.n_nodes, config, rng)
                features = Tensor(self._scaled_features)
                optimizer = Adam(
                    self._model.parameters(), lr=config.learning_rate, weight_decay=config.weight_decay
                )
                for _ in range(config.epochs):
                    with tracer.span("gae.epoch") as epoch_span:
                        optimizer.zero_grad()
                        z = self._model.encode(features, self._propagation)
                        structure_hat = self._model.decode_structure(z)
                        attribute_hat = self._model.decode_attributes(z)

                        loss = gae_reconstruction_loss(
                            structure_hat, self._structure_target, attribute_hat, self._scaled_features, lam,
                            workspace=workspace,
                        )
                        loss.backward()
                        optimizer.step()
                        value = loss.item()
                        self.training_result.losses.append(value)
                        fit_span.add("optimizer_steps")
                        if tracer.enabled:
                            epoch_span.set("loss", value)
                        if stopper.should_stop(value):
                            self.training_result.early_stopped = True
                            break
            if tracer.enabled:
                fit_span.add("tape_node_count", tape_node_count() - tape_before)
                fit_span.set("epochs_run", self.training_result.epochs_run)
                fit_span.set("early_stopped", self.training_result.early_stopped)
        return self

    # ------------------------------------------------------------------
    # Warm start / persistence
    # ------------------------------------------------------------------
    def attach(self, graph: Graph, state: Optional[dict] = None) -> "GraphAutoEncoder":
        """Bind this model to ``graph`` *without training*.

        Rebuilds the per-graph derived state (structure target, propagation
        matrix, scaled features) and loads the trained parameters — from
        ``state`` (produced by :meth:`state_dict`) or, when ``state`` is
        omitted and the model is already fitted, from its own current
        weights, so ``fit(g1); attach(g2)`` re-binds without ever
        discarding the training.  This is the warm-start path used by the
        artifact store: a loaded model can score any graph with the same
        feature dimensionality as the one it was fitted on.
        """
        config = self.config
        if state is None:
            if self._model is None:
                raise RuntimeError(
                    "attach() needs trained weights: fit() first or pass state="
                )
            state = self._model.state_dict()
        self._bind_graph(graph)
        rng = np.random.default_rng(resolve_seed(config.seed))
        with default_dtype(self.dtype):
            self._model = _GAEModel(graph.n_features, graph.n_nodes, config, rng)
        if state is not None:
            self._model.load_state_dict(state)
        return self

    def state_dict(self) -> dict:
        """Trained parameters keyed by qualified name (see ``Module``)."""
        self._require_fitted()
        return self._model.state_dict()

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if self._model is None or self._graph is None:
            raise RuntimeError("call fit() before scoring")

    def reconstruct(self) -> tuple:
        """Return ``(A', X')``, the reconstructed structure and (scaled) attributes."""
        self._require_fitted()
        with no_grad():
            z = self._model.encode(Tensor(self._scaled_features), self._propagation)
            structure_hat = self._model.decode_structure(z).numpy()
            attribute_hat = self._model.decode_attributes(z).numpy()
        return structure_hat, attribute_hat

    def embed(self) -> np.ndarray:
        """Node embeddings ``Z`` of the fitted graph."""
        self._require_fitted()
        with no_grad():
            return self._model.encode(Tensor(self._scaled_features), self._propagation).numpy()

    @staticmethod
    def _zscore(values: np.ndarray) -> np.ndarray:
        spread = values.std()
        if spread < 1e-12:
            return np.zeros_like(values)
        return (values - values.mean()) / spread

    def score_nodes(self) -> np.ndarray:
        """Per-node anomaly scores: weighted structure + attribute errors (Eqn. 1)."""
        self._require_fitted()
        structure_hat, attribute_hat = self.reconstruct()
        lam = self.config.structure_weight
        structure_error = np.linalg.norm(self._structure_target - structure_hat, axis=1)
        attribute_error = np.linalg.norm(self._scaled_features - attribute_hat, axis=1)
        if self.config.normalize_errors:
            structure_error = self._zscore(structure_error)
            attribute_error = self._zscore(attribute_error)
        return lam * structure_error + (1.0 - lam) * attribute_error

    def score_normalized(self) -> np.ndarray:
        """Anomaly scores min-max scaled into ``[0, 1]``."""
        scores = self.score_nodes()
        low, high = scores.min(), scores.max()
        if high - low < 1e-12:
            return np.zeros_like(scores)
        return (scores - low) / (high - low)
