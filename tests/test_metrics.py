"""Unit tests for the group-level metrics (CR, F1, AUC, matching, report)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Group
from repro.metrics import (
    average_group_size,
    completeness_ratio,
    completeness_score,
    evaluate_detection,
    group_auc,
    group_detection_f1,
    group_f1_score,
    match_groups,
    precision_recall_f1,
    roc_auc_score,
)


def group(*nodes) -> Group:
    return Group.from_nodes(nodes)


class TestCompleteness:
    def test_exact_match_scores_one(self):
        truth = group(0, 1, 2, 3)
        assert completeness_score(truth, [group(0, 1, 2, 3)]) == pytest.approx(1.0)

    def test_no_overlap_scores_zero(self):
        assert completeness_score(group(0, 1), [group(5, 6)]) == 0.0

    def test_partial_detection(self):
        # Predicted covers half of the truth and has no redundant nodes.
        truth = group(0, 1, 2, 3)
        assert completeness_score(truth, [group(0, 1)]) == pytest.approx(0.5 * (0.5 + 1.0))

    def test_redundant_nodes_penalised(self):
        truth = group(0, 1, 2, 3)
        # Full coverage but half the prediction is redundant.
        assert completeness_score(truth, [group(0, 1, 2, 3, 4, 5, 6, 7)]) == pytest.approx(0.5 * (1.0 + 0.5))

    def test_best_match_selected(self):
        truth = group(0, 1, 2, 3)
        predictions = [group(9), group(0, 1), group(0, 1, 2, 3)]
        assert completeness_score(truth, predictions) == pytest.approx(1.0)

    def test_cr_averages_over_truth_groups(self):
        truth = [group(0, 1), group(2, 3)]
        predictions = [group(0, 1)]
        assert completeness_ratio(truth, predictions) == pytest.approx(0.5)

    def test_cr_no_predictions_is_zero(self):
        assert completeness_ratio([group(0, 1)], []) == 0.0

    def test_cr_no_truth_raises(self):
        with pytest.raises(ValueError):
            completeness_ratio([], [group(0, 1)])

    def test_empty_truth_group_raises(self):
        with pytest.raises(ValueError):
            completeness_score(Group.from_nodes([]), [group(0)])

    def test_cr_bounded_between_zero_and_one(self):
        truth = [group(0, 1, 2), group(5, 6, 7, 8)]
        predictions = [group(0, 1, 9), group(6, 7)]
        value = completeness_ratio(truth, predictions)
        assert 0.0 <= value <= 1.0


class TestMatching:
    def test_exact_match(self):
        labels = match_groups([group(0, 1, 2)], [group(0, 1, 2)])
        assert labels.tolist() == [True]

    def test_disjoint_no_match(self):
        labels = match_groups([group(0, 1)], [group(5, 6, 7)])
        assert labels.tolist() == [False]

    def test_jaccard_threshold_match(self):
        labels = match_groups([group(0, 1, 2, 3)], [group(2, 3, 4, 5)], jaccard_threshold=0.3)
        assert labels.tolist() == [True]

    def test_coverage_requires_precision_too(self):
        # A huge candidate containing a small true group: coverage 1.0 but precision tiny.
        labels = match_groups([group(*range(30))], [group(0, 1, 2)], jaccard_threshold=0.3)
        assert labels.tolist() == [False]

    def test_multiple_candidates(self):
        labels = match_groups([group(0, 1, 2), group(7, 8)], [group(0, 1, 2)])
        assert labels.tolist() == [True, False]


class TestClassificationMetrics:
    def test_precision_recall_f1_perfect(self):
        predictions = np.array([True, False, True])
        labels = np.array([True, False, True])
        assert precision_recall_f1(predictions, labels) == (1.0, 1.0, 1.0)

    def test_precision_recall_f1_zero_cases(self):
        predictions = np.array([False, False])
        labels = np.array([True, False])
        precision, recall, f1 = precision_recall_f1(predictions, labels)
        assert precision == 0.0 and recall == 0.0 and f1 == 0.0

    def test_roc_auc_perfect_ranking(self):
        labels = np.array([False, False, True, True])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc_score(labels, scores) == pytest.approx(1.0)

    def test_roc_auc_inverted_ranking(self):
        labels = np.array([False, False, True, True])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc_score(labels, scores) == pytest.approx(0.0)

    def test_roc_auc_ties_give_half_credit(self):
        labels = np.array([False, True])
        scores = np.array([0.5, 0.5])
        assert roc_auc_score(labels, scores) == pytest.approx(0.5)

    def test_roc_auc_degenerate_labels(self):
        assert roc_auc_score(np.array([True, True]), np.array([0.1, 0.9])) == 0.5

    def test_group_detection_f1_perfect(self):
        truth = [group(0, 1, 2), group(5, 6, 7)]
        assert group_detection_f1(truth, truth) == pytest.approx(1.0)

    def test_group_detection_f1_misses_one_group(self):
        truth = [group(0, 1, 2), group(5, 6, 7)]
        predicted = [group(0, 1, 2)]
        # precision 1, recall 0.5 -> F1 = 2/3
        assert group_detection_f1(predicted, truth) == pytest.approx(2 / 3)

    def test_group_detection_f1_spurious_predictions(self):
        truth = [group(0, 1, 2)]
        predicted = [group(0, 1, 2), group(10, 11), group(20, 21)]
        assert group_detection_f1(predicted, truth) == pytest.approx(0.5)

    def test_group_detection_f1_empty_cases(self):
        assert group_detection_f1([], [group(0, 1)]) == 0.0
        assert group_detection_f1([group(0, 1)], []) == 0.0

    def test_group_f1_score_thresholds_by_contamination(self):
        truth = [group(0, 1, 2)]
        predicted = [group(0, 1, 2), group(10, 11)]
        scores = np.array([0.9, 0.1])
        assert group_f1_score(predicted, scores, truth, contamination=0.5) == pytest.approx(1.0)

    def test_group_auc_ranks_matching_groups_higher(self):
        truth = [group(0, 1, 2)]
        predicted = [group(0, 1, 2), group(10, 11), group(20, 21)]
        scores = np.array([0.9, 0.2, 0.1])
        assert group_auc(predicted, scores, truth) == pytest.approx(1.0)

    def test_group_auc_empty_predictions(self):
        assert group_auc([], np.array([]), [group(0, 1)]) == 0.5

    def test_average_group_size(self):
        assert average_group_size([group(0, 1), group(2, 3, 4, 5)]) == pytest.approx(3.0)
        assert average_group_size([]) == 0.0


class TestEvaluationReport:
    def test_report_fields_and_dict(self):
        truth = [group(0, 1, 2)]
        predicted = [group(0, 1, 2), group(10, 11)]
        scores = np.array([0.9, 0.1])
        report = evaluate_detection(predicted, scores, truth, threshold=0.5)
        assert report.cr == pytest.approx(1.0)
        assert report.f1 == pytest.approx(1.0)
        assert report.auc == pytest.approx(1.0)
        assert report.n_predicted == 1
        as_dict = report.as_dict()
        assert set(as_dict) == {"CR", "F1", "AUC", "n_predicted", "avg_predicted_size", "avg_truth_size"}

    def test_report_uses_explicit_anomalous_groups(self):
        truth = [group(0, 1, 2)]
        predicted = [group(0, 1, 2), group(10, 11)]
        scores = np.array([0.9, 0.8])
        report = evaluate_detection(predicted, scores, truth, anomalous_groups=[predicted[0]])
        assert report.n_predicted == 1
        assert report.f1 == pytest.approx(1.0)

    def test_report_contamination_thresholding(self):
        truth = [group(0, 1, 2)]
        predicted = [group(0, 1, 2), group(10, 11), group(12, 13)]
        scores = np.array([0.9, 0.5, 0.1])
        report = evaluate_detection(predicted, scores, truth, contamination=0.34)
        assert report.n_predicted == 1
