"""Tests for the online scoring service (``repro.serve``).

Covers the four acceptance surfaces of the subsystem:

* **Registry** — versioned load / hot swap semantics, atomicity on
  failed loads, identity metadata (config hash + fitted fingerprint).
* **Parity** — a response served through the micro-batcher is exactly
  ``detect_only`` / ``fit_detect`` on the same graph + artifact, also
  under concurrent mixed-model load (the batch a request rode in can
  change its latency, never its scores).
* **Admission control** — bounded-queue shedding (429 + ``Retry-After``)
  and per-request deadline budgets (504).
* **Warm-inference thread safety** — overlapping ``detect_only`` calls
  on one loaded pipeline state from many threads each reproduce their
  serial result (what makes the single-consumer batcher's executor
  thread, health probes and ad-hoc callers safe to coexist).
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import make_example_graph
from repro.gae import MHGAEConfig
from repro.gcl import TPGCLConfig
from repro.graph import Graph
from repro.sampling import SamplerConfig
from repro.serve import (
    LoadShedError,
    MicroBatcher,
    ModelRegistry,
    ScoringClient,
    ServeConfig,
    ServeError,
    ShedError,
    start_server_thread,
)


def _tiny_config(seed: int) -> TPGrGADConfig:
    """Featherweight pipeline: serve tests exercise plumbing, not quality."""
    return TPGrGADConfig(
        mhgae=MHGAEConfig(epochs=8, hidden_dim=16, embedding_dim=8),
        sampler=SamplerConfig(max_candidates=60, max_anchor_pairs=80),
        tpgcl=TPGCLConfig(epochs=3, hidden_dim=16, embedding_dim=16, batch_size=16),
        max_anchors=15,
        seed=seed,
    )


GRAPHS = {name: make_example_graph(seed=seed) for name, seed in (("g7", 7), ("g11", 11), ("g13", 13))}


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """Two fitted artifacts (different seeds → different models)."""
    root = tmp_path_factory.mktemp("serve-artifacts")
    paths = {}
    for name, seed in (("alpha", 1), ("beta", 2)):
        detector = TPGrGAD(_tiny_config(seed))
        detector.fit_detect(GRAPHS["g7"])
        paths[name] = detector.save(root / name)
    return paths


@pytest.fixture()
def registry(artifacts):
    registry = ModelRegistry()
    for name, path in artifacts.items():
        registry.load(name, path)
    return registry


def _reference(path: str, graph: Graph, threshold=None) -> dict:
    """What a direct, unbatched ``detect_only`` on the artifact returns."""
    return TPGrGAD.load(path).detect_only(graph, threshold=threshold).to_json_dict()


# ----------------------------------------------------------------------
class TestModelRegistry:
    def test_load_get_and_default(self, artifacts):
        registry = ModelRegistry()
        entry = registry.load("alpha", artifacts["alpha"])
        assert entry.version == 1
        assert registry.get().name == "alpha"  # first load becomes default
        registry.load("beta", artifacts["beta"])
        assert registry.get().name == "alpha"
        assert registry.get("beta").version == 1
        assert registry.names() == ["alpha", "beta"]

    def test_hot_swap_bumps_version_and_keeps_old_entry_alive(self, artifacts):
        registry = ModelRegistry()
        first = registry.load("model", artifacts["alpha"])
        second = registry.load("model", artifacts["beta"])
        assert (first.version, second.version) == (1, 2)
        assert registry.get("model") is second
        # The captured old entry still serves — in-flight batches that
        # resolved it before the swap finish on the old version.
        result = first.detector.detect_only(GRAPHS["g11"])
        assert result.n_candidates > 0

    def test_failed_load_leaves_previous_version_serving(self, artifacts, tmp_path):
        registry = ModelRegistry()
        registry.load("model", artifacts["alpha"])
        with pytest.raises(FileNotFoundError):
            registry.load("model", tmp_path / "nowhere")
        assert registry.get("model").version == 1
        assert registry.get("model").path == str(artifacts["alpha"])

    def test_unknown_model_raises_with_inventory(self, registry):
        with pytest.raises(KeyError, match="alpha"):
            registry.get("gamma")
        with pytest.raises(KeyError, match="empty"):
            ModelRegistry().get()

    def test_identity_matches_manifest(self, registry, artifacts):
        import json

        entry = registry.get("alpha")
        with open(str(artifacts["alpha"]) + "/manifest.json") as handle:
            manifest = json.load(handle)
        assert entry.config_hash == manifest["config_hash"]
        assert entry.state.graph_fingerprint == manifest["graph_fingerprint"]
        row = registry.describe()["models"][0]
        assert row["name"] == "alpha" and row["config_hash"] == entry.config_hash


# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_shed_when_queue_full(self, registry):
        async def scenario():
            batcher = MicroBatcher(registry, ServeConfig(queue_size=2, retry_after_s=3.0))
            await batcher.start()
            await batcher.stop()  # consumer gone: admissions can only pile up
            batcher.submit(GRAPHS["g7"])
            batcher.submit(GRAPHS["g11"])
            with pytest.raises(ShedError) as excinfo:
                batcher.submit(GRAPHS["g13"])
            assert excinfo.value.retry_after_s == 3.0

        asyncio.run(scenario())

    def test_coalesced_batch_dedupes_and_matches_direct(self, registry, artifacts):
        async def scenario():
            batcher = MicroBatcher(registry, ServeConfig(max_batch=8, max_wait_ms=50))
            await batcher.start()
            graphs = [GRAPHS["g7"], GRAPHS["g11"], GRAPHS["g7"], GRAPHS["g11"], GRAPHS["g7"]]
            futures = [batcher.submit(graph, model="alpha") for graph in graphs]
            responses = await asyncio.gather(*futures)
            await batcher.stop()
            return responses

        responses = asyncio.run(scenario())
        # All five rode one batch with two unique graphs scored once each.
        assert {response["batch"]["size"] for response in responses} == {5}
        assert {response["batch"]["n_unique"] for response in responses} == {2}
        expected = {
            "g7": _reference(artifacts["alpha"], GRAPHS["g7"]),
            "g11": _reference(artifacts["alpha"], GRAPHS["g11"]),
        }
        for response, key in zip(responses, ("g7", "g11", "g7", "g11", "g7")):
            assert response["result"] == expected[key]

    def test_invalid_mode_rejected_at_admission(self, registry):
        async def scenario():
            batcher = MicroBatcher(registry, ServeConfig())
            await batcher.start()
            try:
                from repro.serve import RequestError

                with pytest.raises(RequestError, match="unknown mode"):
                    batcher.submit(GRAPHS["g7"], mode="training")
            finally:
                await batcher.stop()

        asyncio.run(scenario())


# ----------------------------------------------------------------------
class TestScoringServerEndToEnd:
    @pytest.fixture()
    def running(self, registry):
        handle = start_server_thread(registry, ServeConfig(max_batch=8, max_wait_ms=4))
        client = ScoringClient(port=handle.port)
        try:
            yield handle, client
        finally:
            client.close()
            handle.stop()

    def test_health_models_metrics_endpoints(self, running):
        _, client = running
        assert client.healthz() == {"status": "ok", "models": ["alpha", "beta"]}
        described = client.models()
        assert described["default"] == "alpha"
        assert [row["name"] for row in described["models"]] == ["alpha", "beta"]
        metrics = client.metrics()
        for key in (
            "qps_window", "p50_latency_ms", "p95_latency_ms", "batch_size_histogram",
            "shed_total", "dedup_hits_total", "scored_total", "models", "queue",
        ):
            assert key in metrics

    def test_served_response_is_bit_identical_to_direct_call(self, running, artifacts):
        _, client = running
        response = client.score(GRAPHS["g11"], model="alpha")
        assert response["result"] == _reference(artifacts["alpha"], GRAPHS["g11"])
        assert response["model"] == "alpha" and response["version"] == 1
        assert response["mode"] == "detect_only"
        assert response["graph_fingerprint"] == GRAPHS["g11"].fingerprint()
        assert response["latency_ms"] > 0

    def test_explicit_threshold_is_honoured(self, running, artifacts):
        _, client = running
        response = client.score(GRAPHS["g11"], model="beta", threshold=1e12)
        assert response["result"] == _reference(artifacts["beta"], GRAPHS["g11"], threshold=1e12)
        assert response["result"]["anomalous_groups"] == []

    def test_fit_mode_matches_cold_pipeline_and_hits_lru(self, running, registry):
        _, client = running
        config = registry.get("alpha").state.config
        expected = TPGrGAD(config).fit_detect(GRAPHS["g13"]).to_json_dict()
        first = client.score(GRAPHS["g13"], model="alpha", mode="fit_detect")
        second = client.score(GRAPHS["g13"], model="alpha", mode="fit_detect")
        assert first["result"] == expected
        assert second["result"] == expected
        fit_cache = client.metrics()["models"]["alpha"]["fit_cache"]
        assert fit_cache["hits"] >= 1  # the repeat skipped retraining

    def test_concurrent_mixed_model_load_parity(self, running, artifacts):
        handle, _ = running
        expected = {
            (model, name): _reference(artifacts[model], GRAPHS[name])
            for model in ("alpha", "beta")
            for name in ("g7", "g11", "g13")
        }
        jobs = [(model, name) for model in ("alpha", "beta") for name in ("g7", "g11", "g13")] * 4

        def worker(job):
            model, name = job
            with ScoringClient(port=handle.port) as client:
                return job, client.score(GRAPHS[name], model=model)

        with ThreadPoolExecutor(max_workers=8) as pool:
            for job, response in pool.map(worker, jobs):
                assert response["result"] == expected[job], f"parity broke for {job}"

    def test_unknown_model_is_404_and_bad_payload_400(self, running):
        _, client = running
        with pytest.raises(ServeError) as excinfo:
            client.score(GRAPHS["g7"], model="gamma")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            client.score({"edges": [[0, 1]]})  # missing n_nodes
        assert excinfo.value.status == 400
        wrong_width = Graph(4, [(0, 1)], np.ones((4, 3)))  # artifact wants 12 features
        with pytest.raises(ServeError) as excinfo:
            client.score(wrong_width)
        assert excinfo.value.status == 400

    def test_hot_swap_under_load_never_drops_requests(self, running, artifacts):
        handle, client = running
        expected = {
            1: _reference(artifacts["alpha"], GRAPHS["g11"]),
            2: _reference(artifacts["beta"], GRAPHS["g11"]),
        }
        stop = threading.Event()
        failures = []
        seen_versions = set()

        def hammer():
            try:
                with ScoringClient(port=handle.port) as worker:
                    while not stop.is_set():
                        response = worker.score(GRAPHS["g11"], model="swapped")
                        seen_versions.add(response["version"])
                        if response["result"] != expected[response["version"]]:
                            failures.append(response["version"])
            except Exception as error:  # noqa: BLE001 - surface in the assert
                failures.append(repr(error))

        client.load_model("swapped", artifacts["alpha"])
        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        swap = client.load_model("swapped", artifacts["beta"])
        assert swap["version"] == 2
        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not failures, "a response did not match the version that claimed it"
        assert 2 in seen_versions  # the swap actually took effect under load


class TestHttpHardening:
    def test_malformed_content_length_gets_400_not_a_dropped_connection(self, registry):
        import socket

        handle = start_server_thread(registry, ServeConfig())
        try:
            with socket.create_connection(("127.0.0.1", handle.port), timeout=10) as raw:
                raw.sendall(b"POST /score HTTP/1.1\r\nContent-Length: abc\r\n\r\n")
                response = raw.recv(4096)
            assert response.startswith(b"HTTP/1.1 400"), response[:80]
        finally:
            handle.stop()

    def test_non_numeric_threshold_is_400_not_500(self, registry):
        handle = start_server_thread(registry, ServeConfig())
        try:
            with ScoringClient(port=handle.port) as client:
                status, _, body = client._request(
                    "POST", "/score",
                    {"graph": GRAPHS["g7"].to_json_dict(), "threshold": "abc"},
                )
                assert status == 400, body
                status, _, body = client._request(
                    "POST", "/score",
                    {"graph": GRAPHS["g7"].to_json_dict(), "timeout_ms": "soon"},
                )
                assert status == 400, body
        finally:
            handle.stop()

    def test_failed_requests_do_not_inflate_dedup_hits(self, registry):
        handle = start_server_thread(registry, ServeConfig())
        try:
            with ScoringClient(port=handle.port) as client:
                with pytest.raises(ServeError):
                    client.score(GRAPHS["g7"], model="gamma")  # unknown model
                assert client.metrics()["dedup_hits_total"] == 0
        finally:
            handle.stop()

    def test_port_conflict_fails_fast_with_cause(self, registry):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        taken_port = blocker.getsockname()[1]
        try:
            started = time.monotonic()
            with pytest.raises(RuntimeError, match="failed to start"):
                start_server_thread(registry, ServeConfig(), port=taken_port)
            assert time.monotonic() - started < 10  # no 30s startup hang
        finally:
            blocker.close()


class TestAdmissionControl:
    def test_shed_returns_429_with_retry_after_and_deadline_504(self, registry):
        handle = start_server_thread(
            registry, ServeConfig(max_batch=1, max_wait_ms=0, queue_size=1, retry_after_s=2.0)
        )
        big = make_example_graph(seed=5, n_background=2000)  # ~2s cold fit
        try:
            with ScoringClient(port=handle.port) as client:
                # Occupy the scorer with a slow cold fit, then flood the
                # 1-slot queue: the next request queues, the rest shed.
                def slow_fit():
                    with ScoringClient(port=handle.port, timeout=120) as fitter:
                        fitter.score(big, model="beta", mode="fit_detect")

                fit_thread = threading.Thread(target=slow_fit)
                fit_thread.start()
                time.sleep(0.3)  # the fit is now inside the scorer

                # This one waits in the queue with a 1ms budget — by the
                # time the fit finishes, its deadline is long gone: 504.
                doomed = {}

                def doomed_request():
                    with ScoringClient(port=handle.port, timeout=120) as other:
                        try:
                            other.score(GRAPHS["g7"], timeout_ms=1.0)
                        except ServeError as error:
                            doomed["status"] = error.status

                doomed_thread = threading.Thread(target=doomed_request)
                doomed_thread.start()
                time.sleep(0.15)  # let it occupy the single queue slot

                with pytest.raises(LoadShedError) as excinfo:
                    client.score(GRAPHS["g7"])
                assert excinfo.value.retry_after_s == pytest.approx(2.0)

                fit_thread.join(timeout=120)
                doomed_thread.join(timeout=120)
                assert doomed.get("status") == 504

                metrics = client.metrics()
                assert metrics["shed_total"] >= 1
                assert metrics["deadline_expired_total"] >= 1
        finally:
            handle.stop()


# ----------------------------------------------------------------------
class TestConcurrentWarmInference:
    """Satellite: overlapping ``detect_only`` through one loaded state."""

    def test_threaded_detect_only_matches_serial(self, artifacts):
        detector = TPGrGAD.load(artifacts["alpha"])
        serial = {name: detector.detect_only(graph).to_json_dict() for name, graph in GRAPHS.items()}

        names = list(GRAPHS) * 8  # 24 overlapping calls over 3 graphs
        barrier = threading.Barrier(8)

        def call(name_index):
            name = names[name_index]
            if name_index < 8:
                barrier.wait()  # force a simultaneous first wave
            return name, detector.detect_only(GRAPHS[name]).to_json_dict()

        with ThreadPoolExecutor(max_workers=8) as pool:
            for name, payload in pool.map(call, range(len(names))):
                assert payload == serial[name], f"threaded detect_only diverged on {name}"

    def test_detect_only_still_deterministic_after_thread_storm(self, artifacts):
        detector = TPGrGAD.load(artifacts["alpha"])
        before = detector.detect_only(GRAPHS["g7"]).scores
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(lambda g: detector.detect_only(g), [GRAPHS["g11"]] * 8))
        after = detector.detect_only(GRAPHS["g7"]).scores
        assert np.abs(before - after).max() <= 1e-12
