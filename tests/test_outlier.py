"""Unit tests for the unsupervised outlier detectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.outlier import (
    ECOD,
    IsolationForest,
    LocalOutlierFactor,
    MahalanobisDetector,
    SUODEnsemble,
    available_detectors,
    get_detector,
)
from repro.outlier.base import min_max_normalize

ALL_DETECTORS = [ECOD, LocalOutlierFactor, IsolationForest, MahalanobisDetector, SUODEnsemble]


@pytest.fixture
def data_with_outliers(rng):
    """Gaussian blob plus five far-away outliers (last five rows)."""
    inliers = rng.normal(size=(95, 4))
    outliers = rng.normal(loc=8.0, size=(5, 4))
    return np.vstack([inliers, outliers])


class TestDetectorContract:
    @pytest.mark.parametrize("detector_class", ALL_DETECTORS)
    def test_scores_shape_and_finite(self, detector_class, data_with_outliers):
        scores = detector_class().fit_scores(data_with_outliers)
        assert scores.shape == (100,)
        assert np.isfinite(scores).all()

    @pytest.mark.parametrize("detector_class", ALL_DETECTORS)
    def test_outliers_ranked_above_inliers(self, detector_class, data_with_outliers):
        scores = detector_class().fit_scores(data_with_outliers)
        top5 = set(np.argsort(-scores)[:5])
        assert len(top5 & set(range(95, 100))) >= 4

    @pytest.mark.parametrize("detector_class", ALL_DETECTORS)
    def test_predict_contamination(self, detector_class, data_with_outliers):
        detector = detector_class().fit(data_with_outliers)
        mask = detector.predict(data_with_outliers, contamination=0.05)
        assert mask.dtype == bool
        assert 3 <= mask.sum() <= 8

    @pytest.mark.parametrize("detector_class", ALL_DETECTORS)
    def test_score_before_fit_raises(self, detector_class, data_with_outliers):
        with pytest.raises(RuntimeError):
            detector_class().decision_scores(data_with_outliers)

    @pytest.mark.parametrize("detector_class", ALL_DETECTORS)
    def test_input_validation(self, detector_class):
        with pytest.raises(ValueError):
            detector_class().fit(np.ones(10))  # 1-D input
        with pytest.raises(ValueError):
            detector_class().fit(np.array([[np.nan, 1.0]]))

    def test_predict_invalid_contamination(self, data_with_outliers):
        detector = ECOD().fit(data_with_outliers)
        with pytest.raises(ValueError):
            detector.predict(data_with_outliers, contamination=1.5)

    def test_feature_dimension_mismatch(self, data_with_outliers):
        detector = ECOD().fit(data_with_outliers)
        with pytest.raises(ValueError):
            detector.decision_scores(np.ones((3, 7)))


class TestSpecificDetectors:
    def test_ecod_scores_increase_with_extremeness(self, rng):
        data = rng.normal(size=(200, 1))
        detector = ECOD().fit(data)
        mild, extreme = np.array([[1.0]]), np.array([[6.0]])
        assert detector.decision_scores(extreme)[0] > detector.decision_scores(mild)[0]

    def test_lof_local_density_sensitivity(self, rng):
        tight = rng.normal(scale=0.1, size=(50, 2))
        point_between = np.array([[1.0, 1.0]])
        detector = LocalOutlierFactor(n_neighbors=5).fit(tight)
        assert detector.decision_scores(point_between)[0] > 1.5

    def test_lof_invalid_neighbors(self):
        with pytest.raises(ValueError):
            LocalOutlierFactor(n_neighbors=0)

    def test_iforest_deterministic_given_seed(self, data_with_outliers):
        a = IsolationForest(seed=3).fit_scores(data_with_outliers)
        b = IsolationForest(seed=3).fit_scores(data_with_outliers)
        assert a == pytest.approx(b)

    def test_iforest_scores_bounded(self, data_with_outliers):
        scores = IsolationForest().fit_scores(data_with_outliers)
        assert (scores > 0).all() and (scores < 1).all()

    def test_mahalanobis_zero_at_mean(self, rng):
        data = rng.normal(size=(100, 3))
        detector = MahalanobisDetector().fit(data)
        assert detector.decision_scores(data.mean(axis=0, keepdims=True))[0] < 0.5

    def test_mahalanobis_invalid_shrinkage(self):
        with pytest.raises(ValueError):
            MahalanobisDetector(shrinkage=2.0)

    def test_suod_requires_detectors(self):
        with pytest.raises(ValueError):
            SUODEnsemble(detectors=[])

    def test_suod_scores_in_unit_interval(self, data_with_outliers):
        scores = SUODEnsemble().fit_scores(data_with_outliers)
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_min_max_normalize_constant_vector(self):
        assert min_max_normalize(np.full(5, 3.0)) == pytest.approx(np.zeros(5))


class TestRegistry:
    def test_available_detectors(self):
        assert set(available_detectors()) == {"ecod", "lof", "iforest", "mahalanobis", "suod"}

    @pytest.mark.parametrize("name", ["ecod", "lof", "iforest", "mahalanobis", "suod"])
    def test_get_detector(self, name, data_with_outliers):
        detector = get_detector(name)
        assert detector.fit_scores(data_with_outliers).shape == (100,)

    def test_unknown_detector_raises(self):
        with pytest.raises(KeyError):
            get_detector("deep-svdd")
