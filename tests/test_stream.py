"""Streaming subsystem tests: deltas, incremental parity, replay harness.

The two contracts the ISSUE pins down:

* **StreamingGraph equivalence** — any delta sequence replayed through
  :class:`StreamingGraph` yields a graph equal (edge index, features,
  adjacency, fingerprint) to building the final graph in one shot.
* **Incremental parity** — ``refit_policy="always"`` reproduces the batch
  ``fit_detect`` on every tick's snapshot exactly, ``finalize()`` does so
  for any policy, and the dirty-region invalidation of stage 2 is *exact*
  (cached search results of clean anchors equal a fresh recomputation).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import make_simml
from repro.datasets.stream import make_burst_stream, make_event_stream
from repro.graph import Graph
from repro.sampling import CandidateGroupSampler, SamplerConfig
from repro.stream import (
    GraphDelta,
    IncrementalTPGrGAD,
    MicroBatchQueue,
    ReplayDriver,
    StreamConfig,
    StreamingGraph,
    content_fingerprint,
    replay_event_stream,
)


# ----------------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------------
N_FEATURES = 3


@st.composite
def delta_sequences(draw):
    """A small base graph plus a random sequence of deltas on top of it."""
    n_base = draw(st.integers(min_value=2, max_value=8))
    possible = [(i, j) for i in range(n_base) for j in range(i + 1, n_base)]
    base_edges = draw(st.lists(st.sampled_from(possible), max_size=len(possible), unique=True)) if possible else []
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    rng = np.random.default_rng(seed)

    deltas = []
    n = n_base
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        k = draw(st.integers(min_value=0, max_value=3))
        total = n + k
        m = draw(st.integers(min_value=0, max_value=6))
        edges = rng.integers(0, total, size=(m, 2)) if m else None
        updates = None
        if draw(st.booleans()):
            count = int(rng.integers(1, min(3, total) + 1))
            ids = rng.choice(total, size=count, replace=False)
            updates = (ids, rng.normal(size=(count, N_FEATURES)))
        deltas.append(
            GraphDelta.make(
                edges=edges,
                node_features=rng.normal(size=(k, N_FEATURES)) if k else None,
                feature_updates=updates,
            )
        )
        n = total
    base = Graph(n_base, base_edges, rng.normal(size=(n_base, N_FEATURES)), name="prop")
    return base, deltas


def one_shot(base: Graph, deltas) -> Graph:
    """Reference construction: concatenate all batches, build once."""
    features = base.features.copy()
    node_batches = [d.new_node_features for d in deltas if d.n_new_nodes]
    if node_batches:
        features = np.vstack([features] + node_batches)
    for delta in deltas:
        if delta.n_feature_updates:
            features[delta.feature_update_nodes] = delta.feature_update_values
    edges = np.vstack([base.edge_index.T] + [d.new_edges for d in deltas])
    return Graph(features.shape[0], edges, features, name=base.name)


# ----------------------------------------------------------------------------
# StreamingGraph equivalence
# ----------------------------------------------------------------------------
class TestStreamingGraph:
    @given(delta_sequences())
    @settings(max_examples=40, deadline=None)
    def test_replay_equals_one_shot(self, case):
        base, deltas = case
        base.adjacency(sparse=True)  # materialise so the CSR merge path runs
        streaming = StreamingGraph(base)
        streaming.apply_all(deltas)
        expected = one_shot(base, deltas)

        graph = streaming.graph
        assert np.array_equal(graph.edge_index, expected.edge_index)
        assert np.array_equal(graph.features, expected.features)
        assert graph.fingerprint() == expected.fingerprint()
        assert (graph.adjacency(sparse=True) != expected.adjacency(sparse=True)).nnz == 0
        assert streaming.fingerprint() == content_fingerprint(expected)
        graph.validate()

    @given(delta_sequences())
    @settings(max_examples=25, deadline=None)
    def test_merged_delta_equals_sequence(self, case):
        base, deltas = case
        one = StreamingGraph(base)
        one.apply_all(deltas)
        merged = StreamingGraph(base)
        merged.apply(GraphDelta.merge(deltas))
        assert one.graph.fingerprint() == merged.graph.fingerprint()
        assert one.fingerprint() == merged.fingerprint()

    def test_lazy_adjacency_stays_lazy(self):
        base = Graph(4, [(0, 1)], np.zeros((4, 2)))
        streaming = StreamingGraph(base)
        streaming.apply(GraphDelta.make(edges=[(1, 2)]))
        assert streaming.graph._adjacency_cache is None
        # ...and once materialised, later merges carry the cache forward.
        streaming.graph.adjacency(sparse=True)
        streaming.apply(GraphDelta.make(edges=[(2, 3)]))
        assert streaming.graph._adjacency_cache is not None

    def test_duplicate_and_self_loop_edges_are_dropped(self):
        base = Graph(3, [(0, 1)], np.zeros((3, 2)))
        streaming = StreamingGraph(base)
        report = streaming.apply(GraphDelta.make(edges=[(0, 1), (1, 1), (1, 0), (1, 2)]))
        assert report.n_new_edges == 1
        assert streaming.graph.n_edges == 2
        # Only the endpoints of the actually-inserted edge count as touched.
        assert report.touched_nodes.tolist() == [1, 2]
        assert report.touched_topology.tolist() == [1, 2]
        # A pure re-delivery dirties nothing at all.
        redelivery = streaming.apply(GraphDelta.make(edges=[(0, 1), (1, 2)]))
        assert redelivery.touched_nodes.size == 0

    def test_redelivered_events_do_not_drift_the_detector(self, stream_graph):
        incremental = IncrementalTPGrGAD(
            stream_graph, TPGrGADConfig.fast(seed=3), StreamConfig(refit_policy="budget")
        )
        duplicate = GraphDelta.make(edges=stream_graph.edge_index.T[:50])
        tick = incremental.update(duplicate)
        assert tick.n_touched == 0
        assert incremental.dirty_fraction == 0.0
        refits = incremental.n_refits
        incremental.finalize()  # nothing changed -> no flush refit
        assert incremental.n_refits == refits

    def test_delta_does_not_freeze_caller_buffers(self):
        buffer = np.array([[0, 1], [1, 2]], dtype=np.int64)
        GraphDelta.make(edges=buffer)
        buffer[0, 0] = 7  # must not raise: the delta froze its own copy

    def test_out_of_range_edges_rejected(self):
        streaming = StreamingGraph(Graph(3, [(0, 1)], np.zeros((3, 2))))
        with pytest.raises(ValueError, match="out of range"):
            streaming.apply(GraphDelta.make(edges=[(0, 7)]))

    def test_feature_dimension_mismatch_rejected(self):
        streaming = StreamingGraph(Graph(3, [(0, 1)], np.zeros((3, 2))))
        with pytest.raises(ValueError, match="feature"):
            streaming.apply(GraphDelta.make(node_features=np.zeros((1, 5))))

    def test_touched_nodes_cover_all_event_kinds(self):
        delta = GraphDelta.make(
            edges=[(0, 4)],
            node_features=np.zeros((1, 2)),
            feature_updates=([2], np.zeros((1, 2))),
        )
        assert delta.touched_nodes(4).tolist() == [0, 2, 4]


class TestKHopBall:
    @given(delta_sequences())
    @settings(max_examples=25, deadline=None)
    def test_ball_equals_union_of_bfs_balls(self, case):
        base, deltas = case
        streaming = StreamingGraph(base)
        streaming.apply_all(deltas)
        graph = streaming.graph
        rng = np.random.default_rng(0)
        sources = rng.choice(graph.n_nodes, size=min(3, graph.n_nodes), replace=False)
        for depth in (0, 1, 2, None):
            ball = graph.k_hop_ball(sources, depth)
            if depth is None:
                union = np.unique(
                    np.concatenate([np.flatnonzero(row >= 0) for row in graph.multi_source_bfs(sources).dist])
                )
            else:
                union = np.unique(np.concatenate(graph.k_hop_nodes(sources, depth)))
            assert np.array_equal(ball, union)


# ----------------------------------------------------------------------------
# Micro-batch queue
# ----------------------------------------------------------------------------
class TestMicroBatchQueue:
    def test_coalesces_up_to_tick_width(self):
        queue = MicroBatchQueue(capacity=10, max_events_per_tick=3)
        for i in range(5):
            assert queue.push(GraphDelta.make(edges=[(i, i + 1)]))
        first = queue.pop_tick()
        assert first.n_new_edges == 3
        assert queue.pop_tick().n_new_edges == 2
        assert queue.pop_tick() is None

    def test_backpressure_signalled_when_full(self):
        queue = MicroBatchQueue(capacity=2, max_events_per_tick=2)
        assert queue.push(GraphDelta.make(edges=[(0, 1)]))
        assert queue.push(GraphDelta.make(edges=[(1, 2)]))
        assert not queue.push(GraphDelta.make(edges=[(2, 3)]))
        queue.pop_tick()
        assert queue.push(GraphDelta.make(edges=[(2, 3)]))


# ----------------------------------------------------------------------------
# Incremental detector parity
# ----------------------------------------------------------------------------
def _growth_deltas(graph: Graph, steps: int, seed: int):
    rng = np.random.default_rng(seed)
    deltas, n = [], graph.n_nodes
    for _ in range(steps):
        k = int(rng.integers(1, 3))
        total = n + k
        m = int(rng.integers(2, 6))
        edges = np.column_stack(
            [rng.integers(0, total, size=m), rng.integers(0, total, size=m)]
        )
        deltas.append(
            GraphDelta.make(edges=edges, node_features=rng.normal(size=(k, graph.n_features)))
        )
        n = total
    return deltas


@pytest.fixture(scope="module")
def stream_graph() -> Graph:
    return make_simml(scale=0.05, seed=1)


class TestIncrementalParity:
    def test_always_policy_matches_batch(self, stream_graph):
        config = TPGrGADConfig.fast(seed=3)
        incremental = IncrementalTPGrGAD(
            stream_graph, config, StreamConfig(refit_policy="always")
        )
        batch = TPGrGAD(TPGrGADConfig.fast(seed=3)).fit_detect(incremental.graph)
        assert np.array_equal(incremental.result.scores, batch.scores)

        for delta in _growth_deltas(stream_graph, steps=3, seed=5):
            tick = incremental.update(delta)
            assert tick.mode == "refit"
            expected = TPGrGAD(TPGrGADConfig.fast(seed=3)).fit_detect(incremental.graph)
            assert [g.node_tuple() for g in tick.result.candidate_groups] == [
                g.node_tuple() for g in expected.candidate_groups
            ]
            assert np.array_equal(tick.result.scores, expected.scores)
            assert tick.result.threshold == expected.threshold
            assert np.array_equal(tick.result.anchor_nodes, expected.anchor_nodes)

    def test_finalize_matches_batch_for_any_policy(self, stream_graph):
        for policy in ("budget", "never"):
            config = TPGrGADConfig.fast(seed=3)
            incremental = IncrementalTPGrGAD(
                stream_graph, config, StreamConfig(refit_policy=policy, drift_budget=0.9)
            )
            incremental.update_all(_growth_deltas(stream_graph, steps=3, seed=7))
            final = incremental.finalize()
            expected = TPGrGAD(TPGrGADConfig.fast(seed=3)).fit_detect(incremental.graph)
            assert np.array_equal(final.scores, expected.scores)
            assert final.threshold == expected.threshold
            # A second finalize with no new deltas is a no-op.
            refits = incremental.n_refits
            incremental.finalize()
            assert incremental.n_refits == refits

    def test_dirty_region_invalidation_is_exact(self, stream_graph):
        """Clean anchors' cached searches equal a fresh full recomputation."""
        # A short search depth keeps the dirty ball local, so some anchors
        # stay clean and reuse actually happens (asserted below).
        sampler = SamplerConfig(
            max_path_length=3, tree_depth=2, max_cycle_length=4, max_anchor_pairs=600
        )
        config = TPGrGADConfig.fast(seed=3)
        config.sampler = sampler
        incremental = IncrementalTPGrGAD(
            stream_graph,
            config,
            StreamConfig(refit_policy="never", promote_new_nodes=False),
        )
        reused_total = 0
        for delta in _growth_deltas(stream_graph, steps=4, seed=9):
            tick = incremental.update(delta)
            assert tick.mode == "incremental"
            reused_total += tick.pairs_reused
            fresh = CandidateGroupSampler(sampler).collect(
                incremental.graph, incremental._anchors, incremental._pairs
            )
            for pair in incremental._pairs:
                cached = incremental._collection.pair_groups[pair]
                recomputed = fresh.pair_groups[pair]
                assert tuple(g.node_tuple() if g else None for g in cached) == tuple(
                    g.node_tuple() if g else None for g in recomputed
                )
            for anchor in incremental._anchors:
                assert [g.node_tuple() for g in incremental._collection.anchor_cycles[anchor]] == [
                    g.node_tuple() for g in fresh.anchor_cycles[anchor]
                ]
        assert reused_total > 0, "dirty ball covered every anchor; test lost its teeth"

    def test_feature_only_delta_rescores_touched_groups(self, stream_graph):
        config = TPGrGADConfig.fast(seed=3)
        incremental = IncrementalTPGrGAD(
            stream_graph, config, StreamConfig(refit_policy="never")
        )
        target = next(iter(incremental.result.candidate_groups))
        node = next(iter(target.nodes))
        before = incremental.result.scores.copy()
        tick = incremental.update(
            GraphDelta.make(
                feature_updates=([node], 5.0 + np.zeros((1, stream_graph.n_features)))
            )
        )
        assert tick.mode == "incremental"
        assert tick.pairs_recomputed == 0  # features never dirty searches
        assert tick.embeddings_recomputed >= 1
        assert not np.array_equal(tick.result.scores, before)

    def test_structured_sampler_equals_one_shot_sample(self, stream_graph):
        config = SamplerConfig(max_anchor_pairs=50, max_candidates=60, seed=11)
        anchors = sorted(
            np.random.default_rng(4).choice(stream_graph.n_nodes, size=12, replace=False).tolist()
        )
        one_shot_sampler = CandidateGroupSampler(config)
        expected = one_shot_sampler.sample(stream_graph, anchors)
        staged = CandidateGroupSampler(config)
        pairs = staged.propose_pairs(anchors)
        collection = staged.collect(stream_graph, anchors, pairs)
        got = staged.finalize(collection.ordered_candidates(pairs, anchors))
        assert [g.node_tuple() for g in got] == [g.node_tuple() for g in expected]


# ----------------------------------------------------------------------------
# Event streams + replay driver
# ----------------------------------------------------------------------------
class TestEventStreams:
    def test_stream_final_equals_replayed_deltas(self):
        stream = make_event_stream(dataset="simml", scale=0.05, seed=2, n_ticks=5)
        streaming = StreamingGraph(stream.base)
        streaming.apply_all(stream.deltas)
        assert streaming.graph.fingerprint() == stream.final.fingerprint()
        assert stream.final.n_groups == len(stream.groups)

    def test_stream_groups_relabelled_consistently(self):
        stream = make_event_stream(dataset="ethereum-tsgn", scale=0.05, seed=2, n_ticks=4)
        for group in stream.groups:
            for u, v in group.edges:
                assert stream.final.has_edge(u, v)

    def test_burst_stream_places_burst_group(self):
        stream = make_burst_stream(dataset="simml", scale=0.05, seed=2, n_ticks=6, burst_tick=4)
        assert stream.burst_tick == 4
        assert stream.burst_group in stream.groups
        # The burst group's nodes arrive exactly at the burst tick.
        n_before = stream.base.n_nodes + sum(
            d.n_new_nodes for d in stream.deltas[:4]
        )
        burst_delta = stream.deltas[4]
        arrived = set(range(n_before, n_before + burst_delta.n_new_nodes))
        assert set(stream.burst_group.nodes) <= arrived

    def test_truncated_stream_is_consistent(self):
        stream = make_burst_stream(dataset="simml", scale=0.05, seed=2, n_ticks=6, burst_tick=4)
        short = stream.truncated(3)
        assert short.n_ticks == 3
        assert short.burst_group is None  # burst lies beyond the cut
        streaming = StreamingGraph(short.base)
        streaming.apply_all(short.deltas)
        assert streaming.graph.fingerprint() == short.final.fingerprint()
        assert all(tick < 3 for tick in short.group_arrival_tick.values())
        assert len(short.groups) == len(short.group_arrival_tick)

    def test_replay_driver_summary(self):
        stream = make_burst_stream(dataset="simml", scale=0.05, seed=2, n_ticks=5)
        summary = replay_event_stream(
            stream,
            TPGrGADConfig.fast(seed=1),
            StreamConfig(refit_policy="budget", drift_budget=0.5),
        )
        assert summary.n_ticks == stream.n_ticks
        assert summary.n_refits + summary.n_incremental == summary.n_ticks
        assert summary.n_events == stream.n_ticks
        assert summary.p95_latency >= summary.p50_latency >= 0.0
        payload = summary.to_json_dict()
        for key in (
            "events_per_second",
            "incremental_events_per_second",
            "processing_seconds",
            "finalize_seconds",
            "p50_tick_latency_seconds",
            "p95_tick_latency_seconds",
            "p50_incremental_tick_latency_seconds",
            "p95_incremental_tick_latency_seconds",
            "p50_refit_tick_latency_seconds",
            "p95_refit_tick_latency_seconds",
            "n_refits",
            "n_incremental_ticks",
            "pair_cache_hits",
            "detection_lag_ticks",
        ):
            assert key in payload
        # The throughput denominator is processing time (ticks + flush),
        # and the per-mode latency splits partition the tick population.
        assert summary.processing_seconds <= summary.total_seconds + 1e-6
        assert len(summary.incremental_tick_seconds) == summary.n_incremental
        assert len(summary.refit_tick_seconds) == summary.n_refits
        assert sum(summary.tick_event_counts) == summary.n_events
        # Final result parity after the flush refit.
        batch = TPGrGAD(TPGrGADConfig.fast(seed=1)).fit_detect(stream.final)
        assert np.array_equal(summary.final_result.scores, batch.scores)

    def test_driver_coalesces_with_wide_queue(self):
        stream = make_event_stream(dataset="simml", scale=0.05, seed=3, n_ticks=6)
        driver = ReplayDriver(
            stream.base,
            TPGrGADConfig.fast(seed=1),
            StreamConfig(refit_policy="never"),
            queue=MicroBatchQueue(capacity=100, max_events_per_tick=3),
        )
        summary = driver.run(stream.deltas, finalize=False, name="coalesced")
        assert summary.n_events == 6
        assert summary.n_ticks == 2  # 6 events / 3 per tick
