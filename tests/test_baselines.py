"""Unit tests for the baseline detectors (N-GAD and Sub-GAD families)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    ASGAE,
    BaselineConfig,
    ComGA,
    DeepAE,
    DeepFD,
    Dominant,
    ONE,
    available_baselines,
    get_baseline,
)

FAST = BaselineConfig(epochs=10, hidden_dim=16, embedding_dim=8, seed=0)
ALL_BASELINES = [Dominant, DeepAE, ComGA, ONE, DeepFD, ASGAE]


class TestBaselineConfig:
    def test_invalid_contamination(self):
        with pytest.raises(ValueError):
            BaselineConfig(contamination=0.0)

    def test_invalid_group_contamination(self):
        with pytest.raises(ValueError):
            BaselineConfig(group_contamination=1.5)


class TestNodeScores:
    @pytest.mark.parametrize("baseline_class", ALL_BASELINES)
    def test_node_scores_shape_and_finite(self, baseline_class, example_graph):
        scores = baseline_class(FAST).node_scores(example_graph)
        assert scores.shape == (example_graph.n_nodes,)
        assert np.isfinite(scores).all()

    def test_dominant_scores_not_constant(self, example_graph):
        scores = Dominant(FAST).node_scores(example_graph)
        assert scores.std() > 0

    def test_comga_detects_communities(self, example_graph):
        baseline = ComGA(FAST)
        baseline.node_scores(example_graph)
        assert baseline.communities_ is not None
        assert len(np.unique(baseline.communities_)) >= 2


class TestGroupExtraction:
    @pytest.mark.parametrize("baseline_class", ALL_BASELINES)
    def test_fit_detect_produces_valid_result(self, baseline_class, example_graph):
        result = baseline_class(FAST).fit_detect(example_graph)
        assert result.method == baseline_class.name
        assert result.n_candidates == len(result.scores)
        for group in result.candidate_groups:
            assert len(group) >= FAST.min_group_size
            assert group.score is not None
        assert result.n_anomalous <= result.n_candidates

    @pytest.mark.parametrize("baseline_class", [Dominant, DeepAE, ASGAE])
    def test_groups_are_connected_components(self, baseline_class, example_graph):
        result = baseline_class(FAST).fit_detect(example_graph)
        for group in result.candidate_groups:
            components = example_graph.connected_components(group.nodes)
            assert len(components) == 1

    def test_evaluation_report_structure(self, example_graph):
        report = Dominant(FAST).fit_detect(example_graph).evaluate(example_graph)
        assert 0.0 <= report.cr <= 1.0
        assert 0.0 <= report.f1 <= 1.0
        assert 0.0 <= report.auc <= 1.0


class TestRegistry:
    def test_available_baselines(self):
        assert set(available_baselines()) == {"dominant", "deepae", "comga", "one", "deepfd", "as-gae"}

    @pytest.mark.parametrize("name", ["dominant", "deepae", "comga", "one", "deepfd", "as-gae", "ASGAE"])
    def test_get_baseline(self, name):
        assert get_baseline(name, FAST) is not None

    def test_unknown_baseline_raises(self):
        with pytest.raises(KeyError):
            get_baseline("gpt-detector")
