"""Tests for the fast training engine (dtype-aware autodiff, fused/batched
kernels, in-place optimizers, early stopping).

Four oracle families:

* **Optimizer trajectory regression** — the in-place SGD/Adam steps must
  reproduce the pre-refactor allocating implementations *bitwise* (the
  references are kept verbatim in this file).
* **Tape-leakage sentinel** — inference paths (``detect_only``,
  ``embed_groups``, GAE reconstruction/scoring; the serve scoring path
  calls ``detect_only``) must record zero tape nodes.
* **Float32 parity** — full-pipeline fast-mode runs detect the same
  groups with identical CR/F1 on the seed datasets; warm inference with
  shared weights keeps scores within 1e-4.  (Full *training* trajectories
  in float32 legitimately drift — chaotic contrastive dynamics amplify
  rounding — so score closeness is pinned on the inference path, decisions
  on the end-to-end path.)
* **Kernel equivalence** — the fused GAE loss matches the unfused autodiff
  graph bit for bit in float64; block-diagonal batched encoding matches
  the looped reference to 1e-8.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import make_example_graph
from repro.gae import GAEConfig, GraphAutoEncoder, MHGAEConfig, MultiHopGAE
from repro.gcl import GroupEncoder, TPGCL, TPGCLConfig
from repro.graph import Graph, Group
from repro.nn import Adam, EarlyStopping, Parameter, SGD
from repro.nn.optim import Optimizer
from repro.persist import PipelineState
from repro.tensor import (
    Tensor,
    default_dtype,
    get_default_dtype,
    reset_tape_node_count,
    set_default_dtype,
    tape_node_count,
)
from repro.tensor.functional import gae_reconstruction_loss, segment_mean, spmm


# ======================================================================
# Reference (pre-refactor) optimizer implementations, kept verbatim as
# the trajectory oracle for the in-place rewrites.
# ======================================================================
class _ReferenceSGD(Optimizer):
    def __init__(self, parameters, lr=0.01, momentum=0.0, weight_decay=0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class _ReferenceAdam(Optimizer):
    def __init__(self, parameters, lr=0.001, betas=(0.9, 0.999), eps=1e-8, weight_decay=0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def _run_trajectory(optimizer_cls, rng_seed, n_steps=12, dtype=np.float64, **kwargs):
    rng = np.random.default_rng(rng_seed)
    params = [
        Parameter(rng.normal(size=(5, 3)).astype(dtype)),
        Parameter(rng.normal(size=(3,)).astype(dtype)),
    ]
    optimizer = optimizer_cls(params, **kwargs)
    grad_rng = np.random.default_rng(rng_seed + 1)
    for _ in range(n_steps):
        for param in params:
            param.grad = grad_rng.normal(size=param.data.shape).astype(dtype)
        optimizer.step()
    return [param.data.copy() for param in params]


class TestInPlaceOptimizers:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lr": 0.05},
            {"lr": 0.05, "momentum": 0.9},
            {"lr": 0.05, "momentum": 0.9, "weight_decay": 1e-3},
        ],
    )
    def test_sgd_trajectory_bitwise(self, kwargs):
        new = _run_trajectory(SGD, 7, **kwargs)
        ref = _run_trajectory(_ReferenceSGD, 7, **kwargs)
        for a, b in zip(new, ref):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize(
        "kwargs", [{"lr": 0.01}, {"lr": 0.01, "weight_decay": 1e-3}]
    )
    def test_adam_trajectory_bitwise(self, kwargs):
        new = _run_trajectory(Adam, 11, **kwargs)
        ref = _run_trajectory(_ReferenceAdam, 11, **kwargs)
        for a, b in zip(new, ref):
            assert np.array_equal(a, b)

    def test_adam_float32_stays_float32(self):
        (w, b) = _run_trajectory(Adam, 3, dtype=np.float32, lr=0.01, weight_decay=1e-4)
        assert w.dtype == np.float32 and b.dtype == np.float32

    def test_zero_grad_drops_buffers(self):
        param = Parameter(np.ones((4, 4)))
        loss = (param * param).sum()
        loss.backward()
        assert param.grad is not None
        Adam([param]).zero_grad()
        assert param.grad is None

    def test_early_stopping_tracker(self):
        stopper = EarlyStopping(patience=2, min_delta=0.1)
        assert not stopper.should_stop(1.0)
        assert not stopper.should_stop(0.8)   # improved
        assert not stopper.should_stop(0.75)  # < min_delta improvement: wait 1
        assert stopper.should_stop(0.74)      # wait 2 -> stop
        assert not EarlyStopping(patience=0).should_stop(5.0)


# ======================================================================
# Dtype plumbing
# ======================================================================
class TestDtypePlumbing:
    def test_default_dtype_context(self):
        assert get_default_dtype() == np.float64
        with default_dtype(np.float32):
            assert get_default_dtype() == np.float32
            assert Tensor([1.0, 2.0]).data.dtype == np.float32
        assert get_default_dtype() == np.float64

    def test_set_default_dtype_rejects_non_float(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)

    def test_float32_survives_scalar_arithmetic(self):
        x = Tensor(np.ones((3, 3), dtype=np.float32), requires_grad=True)
        y = ((x * 2.0 + 1.0) / 3.0 - 0.5) ** 2
        assert y.data.dtype == np.float32
        y.sum().backward()
        assert x.grad.dtype == np.float32

    def test_binary_ops_coerce_wrapped_operand(self):
        x = Tensor(np.ones(4, dtype=np.float32))
        assert (1.0 - x).data.dtype == np.float32
        assert (2.0 / (x + 1.0)).data.dtype == np.float32

    def test_existing_float64_arrays_keep_dtype_under_float32_default(self):
        with default_dtype(np.float32):
            assert Tensor(np.ones(3, dtype=np.float64)).data.dtype == np.float64

    def test_init_respects_default_dtype(self):
        from repro.nn import glorot_uniform, zeros

        rng = np.random.default_rng(0)
        with default_dtype(np.float32):
            assert glorot_uniform((4, 4), rng).dtype == np.float32
            assert zeros((4,)).dtype == np.float32
        # float32 draws are the rounded image of the float64 draw
        w64 = glorot_uniform((4, 4), np.random.default_rng(5))
        w32 = glorot_uniform((4, 4), np.random.default_rng(5), dtype=np.float32)
        assert np.array_equal(w32, w64.astype(np.float32))

    def test_load_state_dict_casts_to_model_dtype(self):
        from repro.nn import Linear

        with default_dtype(np.float32):
            layer = Linear(3, 2, np.random.default_rng(0))
        state = {k: v.astype(np.float64) for k, v in layer.state_dict().items()}
        layer.load_state_dict(state)
        assert layer.weight.data.dtype == np.float32

    def test_spmm_runs_in_input_dtype(self):
        import scipy.sparse as sp

        matrix = sp.random(6, 6, density=0.5, random_state=0, format="csr")
        x = Tensor(np.ones((6, 2), dtype=np.float32), requires_grad=True)
        out = spmm(matrix, x)
        assert out.data.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32


# ======================================================================
# Fused / batched kernels
# ======================================================================
class TestFusedKernels:
    def _unfused_loss(self, s_hat, s_target, a_hat, a_target, lam):
        structure_loss = ((s_hat - Tensor(s_target)) ** 2).mean()
        attribute_loss = ((a_hat - Tensor(a_target)) ** 2).mean()
        return structure_loss * lam + attribute_loss * (1.0 - lam)

    @pytest.mark.parametrize("workspace", [None, {}])
    def test_gae_loss_matches_unfused_bitwise(self, workspace):
        rng = np.random.default_rng(0)
        s_target = rng.normal(size=(12, 12))
        a_target = rng.normal(size=(12, 5))
        lam = 0.6

        def build_hats():
            z = Tensor(rng_state["z"].copy(), requires_grad=True)
            return z, (z @ z.T).sigmoid(), (z * 0.5).tanh() @ Tensor(rng_state["w"])

        rng_state = {"z": rng.normal(size=(12, 5)), "w": rng.normal(size=(5, 5))}
        z1, s1, a1 = build_hats()
        fused = gae_reconstruction_loss(s1, s_target, a1, a_target, lam, workspace=workspace)
        fused.backward()
        z2, s2, a2 = build_hats()
        unfused = self._unfused_loss(s2, s_target, a2, a_target, lam)
        unfused.backward()

        assert np.array_equal(fused.data, unfused.data)
        assert np.array_equal(z1.grad, z2.grad)

    def test_gae_loss_workspace_reused_across_epochs(self):
        rng = np.random.default_rng(1)
        workspace: dict = {}
        s_target = rng.normal(size=(6, 6))
        a_target = rng.normal(size=(6, 3))
        first_buffers = None
        for _ in range(3):
            s_hat = Tensor(rng.normal(size=(6, 6)), requires_grad=True)
            a_hat = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
            loss = gae_reconstruction_loss(s_hat, s_target, a_hat, a_target, 0.5, workspace=workspace)
            loss.backward()
            buffers = {k: id(v) for k, v in workspace.items()}
            if first_buffers is None:
                first_buffers = buffers
            assert buffers == first_buffers  # no reallocation epoch to epoch

    def test_segment_mean_matches_manual_means(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(9, 4)), requires_grad=True)
        out = segment_mean(x, [2, 3, 4])
        expected = np.stack(
            [x.data[0:2].mean(axis=0), x.data[2:5].mean(axis=0), x.data[5:9].mean(axis=0)]
        )
        np.testing.assert_allclose(out.data, expected, atol=1e-12)
        out.sum().backward()
        np.testing.assert_allclose(x.grad[0], np.full(4, 0.5), atol=1e-15)

    def test_segment_mean_validates_sizes(self):
        x = Tensor(np.ones((4, 2)))
        with pytest.raises(ValueError):
            segment_mean(x, [2, 3])
        with pytest.raises(ValueError):
            segment_mean(x, [])

    def _random_group_graphs(self, rng, n_graphs=6, n_features=4):
        graphs = []
        for _ in range(n_graphs):
            n = int(rng.integers(3, 9))
            edges = [(i, (i + 1) % n) for i in range(n)]
            extra = rng.integers(0, n, size=(3, 2))
            edges += [tuple(e) for e in extra if e[0] != e[1]]
            graphs.append(Graph(n, edges, rng.normal(size=(n, n_features))))
        return graphs

    def test_blockdiag_encode_matches_looped(self):
        rng = np.random.default_rng(3)
        graphs = self._random_group_graphs(rng)
        encoder = GroupEncoder(4, hidden_dim=8, embedding_dim=6, rng=np.random.default_rng(0))
        looped = encoder.encode_batch(graphs, batched=False)
        batched = encoder.encode_batch(graphs, batched=True)
        np.testing.assert_allclose(batched.data, looped.data, atol=1e-8)

    def test_blockdiag_encode_gradients_flow(self):
        rng = np.random.default_rng(4)
        graphs = self._random_group_graphs(rng, n_graphs=3)
        encoder = GroupEncoder(4, hidden_dim=8, embedding_dim=6, rng=np.random.default_rng(0))
        encoder.encode_batch(graphs, batched=True).sum().backward()
        for param in encoder.parameters():
            assert param.grad is not None and np.isfinite(param.grad).all()


# ======================================================================
# Tape-leakage sentinel: inference must record no backward graph
# ======================================================================
class TestTapeSentinel:
    def test_detect_only_and_embed_groups_build_no_tape(self, example_graph):
        detector = TPGrGAD(TPGrGADConfig.fast(seed=1))
        detector.fit_detect(example_graph)

        reset_tape_node_count()
        detector.detect_only(example_graph)  # the serve scoring path calls this
        assert tape_node_count() == 0

        groups = [Group.from_nodes(range(5)), Group.from_nodes(range(5, 10))]
        reset_tape_node_count()
        detector.tpgcl.embed_groups(example_graph, groups)
        assert tape_node_count() == 0

    def test_gae_inference_builds_no_tape(self, example_graph):
        gae = MultiHopGAE(MHGAEConfig(epochs=2, hidden_dim=8, embedding_dim=4))
        gae.fit(example_graph)
        reset_tape_node_count()
        gae.reconstruct()
        gae.embed()
        gae.score_nodes()
        assert tape_node_count() == 0

    def test_training_does_build_tape(self, example_graph):
        reset_tape_node_count()
        MultiHopGAE(MHGAEConfig(epochs=1, hidden_dim=8, embedding_dim=4)).fit(example_graph)
        assert tape_node_count() > 0


# ======================================================================
# Float32 fast-mode parity
# ======================================================================
class TestFloat32Parity:
    @pytest.mark.parametrize("graph_seed", [7, 11])
    def test_full_pipeline_decisions_identical(self, graph_seed):
        graph = make_example_graph(seed=graph_seed)
        r64 = TPGrGAD(TPGrGADConfig.fast(seed=1)).fit_detect(graph)
        r32 = TPGrGAD(TPGrGADConfig.fast(seed=1).accelerated()).fit_detect(graph)

        groups64 = sorted(tuple(sorted(g.nodes)) for g in r64.anomalous_groups)
        groups32 = sorted(tuple(sorted(g.nodes)) for g in r32.anomalous_groups)
        assert groups32 == groups64

        e64, e32 = r64.evaluate(graph), r32.evaluate(graph)
        assert e32.cr == e64.cr
        assert e32.f1 == e64.f1

    def test_warm_inference_scores_within_1e4(self, example_graph):
        detector = TPGrGAD(TPGrGADConfig.fast(seed=1))
        detector.fit_detect(example_graph)
        state = PipelineState.from_fitted(detector)

        r64 = TPGrGAD.from_state(state).detect_only(example_graph)
        state32 = PipelineState(
            config=state.config.accelerated(),
            n_features=state.n_features,
            mhgae_state={k: np.asarray(v, np.float32) for k, v in state.mhgae_state.items()},
            tpgcl_state=(
                {k: np.asarray(v, np.float32) for k, v in state.tpgcl_state.items()}
                if state.tpgcl_state is not None
                else None
            ),
            graph_fingerprint=state.graph_fingerprint,
            derived_stage_seeds=state.derived_stage_seeds,
        )
        r32 = TPGrGAD.from_state(state32).detect_only(example_graph)

        np.testing.assert_allclose(r32.scores, r64.scores, atol=1e-4)
        np.testing.assert_allclose(r32.node_scores, r64.node_scores, atol=1e-4)
        groups64 = sorted(tuple(sorted(g.nodes)) for g in r64.anomalous_groups)
        groups32 = sorted(tuple(sorted(g.nodes)) for g in r32.anomalous_groups)
        assert groups32 == groups64

    def test_float32_models_train_in_float32(self, example_graph):
        gae = MultiHopGAE(MHGAEConfig(epochs=2, hidden_dim=8, embedding_dim=4, dtype="float32"))
        gae.fit(example_graph)
        assert gae._model.encoder_1.linear.weight.data.dtype == np.float32
        assert gae.embed().dtype == np.float32

        groups = [Group.from_nodes(range(6)), Group.from_nodes(range(6, 12)), Group.from_nodes(range(12, 18))]
        model = TPGCL(TPGCLConfig(epochs=2, hidden_dim=8, embedding_dim=8, dtype="float32", batch_views=True))
        model.fit(example_graph, groups)
        assert model.encoder.dtype == np.float32
        assert model.embed_groups(example_graph, groups).dtype == np.float32

    def test_float64_default_unchanged_by_accelerated_clone(self):
        config = TPGrGADConfig.fast(seed=1)
        clone = config.accelerated(patience=3, min_delta=1e-5)
        assert config.mhgae.dtype == "float64" and config.tpgcl.dtype == "float64"
        assert not config.tpgcl.batch_views and config.mhgae.patience == 0
        assert clone.mhgae.dtype == "float32" and clone.tpgcl.batch_views
        assert clone.mhgae.patience == 3 and clone.tpgcl.min_delta == 1e-5
        assert clone.content_hash() != config.content_hash()


# ======================================================================
# Early stopping in the training loops
# ======================================================================
class TestEarlyStopping:
    def test_gae_early_stops_on_plateau(self, example_graph):
        full = GraphAutoEncoder(GAEConfig(epochs=40, hidden_dim=8, embedding_dim=4, seed=0))
        full.fit(example_graph)
        stopped = GraphAutoEncoder(
            GAEConfig(epochs=40, hidden_dim=8, embedding_dim=4, seed=0, patience=2, min_delta=1e-3)
        )
        stopped.fit(example_graph)
        assert stopped.training_result.early_stopped
        assert stopped.training_result.epochs_run < full.training_result.epochs_run
        # The common prefix of the trajectories is identical: stopping only
        # truncates, it never changes the steps that do run.
        prefix = stopped.training_result.epochs_run
        assert stopped.training_result.losses == full.training_result.losses[:prefix]

    def test_patience_zero_runs_all_epochs(self, example_graph):
        gae = GraphAutoEncoder(GAEConfig(epochs=5, hidden_dim=8, embedding_dim=4, seed=0))
        gae.fit(example_graph)
        assert gae.training_result.epochs_run == 5
        assert not gae.training_result.early_stopped

    def test_tpgcl_early_stops_on_plateau(self, example_graph):
        groups = [Group.from_nodes(range(i * 6, (i + 1) * 6)) for i in range(5)]
        model = TPGCL(
            TPGCLConfig(epochs=40, hidden_dim=8, embedding_dim=8, patience=1, min_delta=10.0, seed=0)
        )
        model.fit(example_graph, groups)
        assert model.training_result.early_stopped
        assert model.training_result.epochs_run < 40
