"""Durable job store (``repro.jobs``): state machine, dedup, quotas,
leases, crash recovery and the operational CLI.

The crash-recovery class is the subsystem's acceptance test: a worker
that dies mid-job (simulated by an expired lease and a re-opened store —
a new process would see exactly this) loses nothing, and the recovered
job's stored result is bit-identical to the synchronous scoring path.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import make_example_graph
from repro.gae import MHGAEConfig
from repro.gcl import TPGCLConfig
from repro.jobs import (
    JobStore,
    JobWorker,
    JobWorkerPool,
    QuotaExceededError,
    TenantQuota,
    UnknownJobError,
    dedup_key,
)
from repro.jobs.__main__ import main as jobs_main
from repro.persist import to_native
from repro.sampling import SamplerConfig
from repro.serve import MicroBatcher, ModelRegistry, ServeConfig


def _tiny_config(seed: int = 1) -> TPGrGADConfig:
    return TPGrGADConfig(
        mhgae=MHGAEConfig(epochs=8, hidden_dim=16, embedding_dim=8),
        sampler=SamplerConfig(max_candidates=60, max_anchor_pairs=80),
        tpgcl=TPGCLConfig(epochs=3, hidden_dim=16, embedding_dim=16, batch_size=16),
        max_anchors=15,
        seed=seed,
    )


@pytest.fixture()
def store(tmp_path):
    with JobStore(tmp_path / "jobs.sqlite") as store:
        yield store


def _submit(store, *, tenant="acme", fingerprint="fp-1", mode="detect_only",
            model="alpha", version=1, threshold=None, graph_json="{}"):
    """One store submission with throwaway identity values."""
    return store.submit(
        tenant=tenant,
        model=model,
        model_version=version,
        config_hash="cfg-1",
        mode=mode,
        graph_fingerprint=fingerprint,
        graph_json=graph_json,
        threshold=threshold,
    )


# ----------------------------------------------------------------------
class TestSubmitAndDedup:
    def test_submit_creates_queued_job(self, store):
        outcome = _submit(store)
        assert outcome.created and not outcome.revived
        record = outcome.record
        assert record.state == "queued"
        assert record.attempts == 0 and record.submit_count == 1
        assert store.get(record.job_id).job_id == record.job_id

    def test_duplicate_submission_returns_existing_record(self, store):
        first = _submit(store)
        second = _submit(store)
        assert not second.created
        assert second.record.job_id == first.record.job_id
        assert second.record.submit_count == 2
        stats = store.stats()
        assert stats["n_jobs"] == 1
        assert stats["dedup_hits_total"] == 1

    def test_dedup_key_covers_every_input(self, store):
        base = _submit(store).record
        for kwargs in (
            {"fingerprint": "fp-2"},
            {"mode": "fit_detect"},
            {"model": "beta"},
            {"version": 2},
            {"threshold": 0.5},
        ):
            assert _submit(store, **kwargs).created, kwargs
        assert store.stats()["n_jobs"] == 6
        assert base.dedup_key == dedup_key("fp-1", "cfg-1", "detect_only", "alpha", 1, None)

    def test_resubmit_revives_failed_and_cancelled_jobs(self, store):
        job_id = _submit(store).record.job_id
        store.claim("w", limit=1)
        store.fail(job_id, "boom", requeue=False)
        revived = _submit(store)
        assert not revived.created and revived.revived
        assert revived.record.state == "queued"
        assert revived.record.error is None

        other = _submit(store, fingerprint="fp-2").record
        store.cancel(other.job_id)
        assert _submit(store, fingerprint="fp-2").revived

    def test_queued_quota_enforced_at_submit(self, tmp_path):
        with JobStore(tmp_path / "q.sqlite", quota=TenantQuota(max_queued=2, max_running=8)) as store:
            _submit(store, fingerprint="a")
            existing = _submit(store, fingerprint="b").record
            with pytest.raises(QuotaExceededError) as excinfo:
                _submit(store, fingerprint="c")
            assert excinfo.value.tenant == "acme"
            assert excinfo.value.retry_after_s > 0
            # Dedup hits never create work, so they pass the full queue...
            assert _submit(store, fingerprint="b").record.job_id == existing.job_id
            # ...and other tenants have their own budget.
            assert _submit(store, fingerprint="c", tenant="zen").created


# ----------------------------------------------------------------------
class TestLeaseProtocol:
    def test_claim_moves_oldest_to_running_with_lease(self, store):
        first = _submit(store, fingerprint="a").record
        _submit(store, fingerprint="b")
        claimed = store.claim("worker-1", limit=1, lease_ttl_s=30)
        assert [record.job_id for record in claimed] == [first.job_id]
        record = claimed[0]
        assert record.state == "running"
        assert record.attempts == 1
        assert record.lease_owner == "worker-1"
        assert record.lease_expires_unix > time.time()
        assert record.started_unix is not None

    def test_claim_skips_tenants_at_max_running(self, tmp_path):
        with JobStore(tmp_path / "q.sqlite", quota=TenantQuota(max_queued=64, max_running=1)) as store:
            _submit(store, fingerprint="a", tenant="noisy")
            _submit(store, fingerprint="b", tenant="noisy")
            _submit(store, fingerprint="c", tenant="quiet")
            claimed = store.claim("w", limit=3)
            assert sorted(record.tenant for record in claimed) == ["noisy", "quiet"]
            # The second noisy job stays queued until the first finishes.
            assert store.counts("noisy") == {"queued": 1, "running": 1, "done": 0,
                                            "failed": 0, "cancelled": 0}

    def test_heartbeat_extends_only_the_owners_leases(self, store):
        job_id = _submit(store).record.job_id
        store.claim("worker-1", limit=1, lease_ttl_s=5)
        before = store.get(job_id).lease_expires_unix
        assert store.heartbeat([job_id], "intruder", lease_ttl_s=500) == 0
        assert store.heartbeat([job_id], "worker-1", lease_ttl_s=500) == 1
        assert store.get(job_id).lease_expires_unix > before

    def test_complete_stores_result_and_provenance(self, store):
        job_id = _submit(store).record.job_id
        store.claim("w", limit=1)
        record = store.complete(job_id, {"result": {"scores": [1, 2]}},
                                trace_id="t-1", score_digest="d-1")
        assert record.state == "done"
        assert record.result == {"result": {"scores": [1, 2]}}
        assert (record.trace_id, record.score_digest) == ("t-1", "d-1")
        assert record.lease_owner is None
        assert record.wait_seconds() is not None and record.run_seconds() is not None

    def test_fail_requeues_then_fails_permanently(self, store):
        job_id = _submit(store).record.job_id
        store.claim("w", limit=1)
        retried = store.fail(job_id, "transient", requeue=True)
        assert retried.state == "queued" and retried.attempts == 1
        assert retried.started_unix is None
        store.claim("w", limit=1)
        dead = store.fail(job_id, "fatal", requeue=False)
        assert dead.state == "failed" and dead.error == "fatal"

    def test_release_returns_job_unharmed(self, store):
        job_id = _submit(store).record.job_id
        store.claim("w", limit=1)
        released = store.release(job_id)
        assert released.state == "queued"
        assert released.error is None and released.lease_owner is None

    def test_expired_lease_requeued_for_recovery(self, store):
        job_id = _submit(store).record.job_id
        store.claim("doomed", limit=1, lease_ttl_s=0.01)
        time.sleep(0.05)
        recovered = store.requeue_expired()
        assert [record.job_id for record in recovered] == [job_id]
        assert store.get(job_id).state == "queued"
        # A live lease is never stolen.
        store.claim("alive", limit=1, lease_ttl_s=60)
        assert store.requeue_expired() == []

    def test_operator_requeue_rules(self, store):
        job_id = _submit(store).record.job_id
        store.claim("w", limit=1, lease_ttl_s=60)
        with pytest.raises(ValueError, match="live lease"):
            store.requeue(job_id)
        store.complete(job_id, {"result": {}})
        with pytest.raises(ValueError, match="done"):
            store.requeue(job_id)
        failed = _submit(store, fingerprint="fp-2").record
        store.claim("w", limit=1)
        store.fail(failed.job_id, "boom")
        assert store.requeue(failed.job_id).state == "queued"

    def test_cancel_only_touches_queued_jobs(self, store):
        job_id = _submit(store).record.job_id
        assert store.cancel(job_id).state == "cancelled"
        assert store.cancel(job_id).state == "cancelled"  # idempotent
        running = _submit(store, fingerprint="fp-2").record
        store.claim("w", limit=1)
        with pytest.raises(ValueError, match="running"):
            store.cancel(running.job_id)
        with pytest.raises(UnknownJobError):
            store.cancel("nope")


# ----------------------------------------------------------------------
class TestRetentionAndStats:
    def test_gc_prunes_terminal_jobs_only(self, store):
        done = _submit(store, fingerprint="a").record
        store.claim("w", limit=1)
        store.complete(done.job_id, {"result": {}})
        _submit(store, fingerprint="b")  # queued: must survive any gc
        assert store.gc(max_age_s=3600) == 0
        assert store.gc(max_age_s=0) == 1
        assert store.counts()["queued"] == 1

    def test_gc_keep_retains_newest(self, store):
        for index in range(4):
            record = _submit(store, fingerprint=f"fp-{index}").record
            store.claim("w", limit=1)
            store.complete(record.job_id, {"result": {"index": index}})
            time.sleep(0.01)
        assert store.gc(keep=2) == 2
        kept = store.list(state="done")
        assert [record.result["result"]["index"] for record in kept] == [3, 2]

    def test_wal_mode_survives_concurrent_submit_and_poll(self, tmp_path):
        """A second connection on the same file reads while we write."""
        path = tmp_path / "wal.sqlite"
        writer = JobStore(path)
        reader = JobStore(path)
        errors = []
        stop = threading.Event()

        def poll():
            try:
                while not stop.is_set():
                    reader.counts()
                    reader.list(limit=10)
            except Exception as error:  # noqa: BLE001 - assert below
                errors.append(error)

        poller = threading.Thread(target=poll)
        poller.start()
        try:
            for index in range(50):
                _submit(writer, fingerprint=f"fp-{index}")
        finally:
            stop.set()
            poller.join(10)
        assert errors == []
        assert reader.counts()["queued"] == 50
        assert writer._conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        writer.close()
        reader.close()


# ----------------------------------------------------------------------
class TestWorkerAndCrashRecovery:
    @pytest.fixture(scope="class")
    def registry(self, tmp_path_factory):
        graph = make_example_graph(seed=7)
        detector = TPGrGAD(_tiny_config())
        detector.fit_detect(graph)
        path = detector.save(tmp_path_factory.mktemp("jobs-artifact") / "alpha")
        registry = ModelRegistry()
        registry.load("alpha", path)
        return registry

    def _submit_graph(self, store, registry, graph, mode="detect_only"):
        entry = registry.get()
        return store.submit(
            tenant="acme",
            model=entry.name,
            model_version=entry.version,
            config_hash=entry.config_hash,
            mode=mode,
            graph_fingerprint=graph.fingerprint(),
            graph_json=json.dumps(to_native(graph.to_json_dict()), sort_keys=True),
        )

    async def _drain(self, store, registry, job_ids, **worker_kwargs):
        """Run one worker until every job id is terminal."""
        batcher = MicroBatcher(registry, ServeConfig(max_batch=8, max_wait_ms=2))
        await batcher.start()
        worker = JobWorker(store, batcher, poll_interval_s=0.01, **worker_kwargs)
        await worker.start()
        try:
            deadline = time.monotonic() + 60
            while any(store.get(job_id).state not in ("done", "failed", "cancelled")
                      for job_id in job_ids):
                assert time.monotonic() < deadline, "worker did not drain the queue"
                await asyncio.sleep(0.02)
        finally:
            await worker.stop()
            await batcher.stop()

    def test_worker_result_bit_identical_to_sync_path(self, tmp_path, registry):
        graph = make_example_graph(seed=11)

        async def scenario():
            store = JobStore(tmp_path / "jobs.sqlite")
            job_id = self._submit_graph(store, registry, graph).record.job_id
            await self._drain(store, registry, [job_id])

            batcher = MicroBatcher(registry, ServeConfig())
            await batcher.start()
            sync = await batcher.submit(graph)
            await batcher.stop()
            return store.get(job_id), sync

        record, sync = asyncio.run(scenario())
        assert record.state == "done"
        assert record.result["result"] == sync["result"]
        assert record.result["model"] == sync["model"]
        assert record.result["config_hash"] == sync["config_hash"]

    def test_crashed_worker_job_recovered_bit_identically(self, tmp_path, registry):
        """Expired lease + store reopen = worker death + process restart."""
        graph = make_example_graph(seed=13)
        path = tmp_path / "jobs.sqlite"

        async def scenario():
            store = JobStore(path)
            job_id = self._submit_graph(store, registry, graph).record.job_id
            # The "crash": a worker claims the job and dies without
            # heartbeating — its lease lapses with the job mid-"running".
            crashed = store.claim("crashed-worker", limit=1, lease_ttl_s=0.01)
            assert [record.job_id for record in crashed] == [job_id]
            store.close()
            await asyncio.sleep(0.05)

            reopened = JobStore(path)  # the restarted process
            assert reopened.get(job_id).state == "running"  # orphaned
            await self._drain(reopened, registry, [job_id])
            record = reopened.get(job_id)

            batcher = MicroBatcher(registry, ServeConfig())
            await batcher.start()
            sync = await batcher.submit(graph)
            await batcher.stop()
            reopened.close()
            return record, sync

        record, sync = asyncio.run(scenario())
        assert record.state == "done"
        assert record.attempts == 2  # the crashed try + the real one
        assert record.result["result"] == sync["result"]

    def test_worker_retries_bad_jobs_then_fails_permanently(self, tmp_path, registry):
        async def scenario():
            store = JobStore(tmp_path / "jobs.sqlite")
            entry = registry.get()
            job_id = store.submit(
                tenant="acme", model=entry.name, model_version=entry.version,
                config_hash=entry.config_hash, mode="detect_only",
                graph_fingerprint="bogus", graph_json='{"not": "a graph"}',
            ).record.job_id
            await self._drain(store, registry, [job_id], max_attempts=2)
            record = store.get(job_id)
            store.close()
            return record

        record = asyncio.run(scenario())
        assert record.state == "failed"
        assert record.attempts == 2
        assert record.error

    def test_pool_stop_releases_unfinished_claims(self, tmp_path, registry):
        graph = make_example_graph(seed=17)

        async def scenario():
            store = JobStore(tmp_path / "jobs.sqlite")
            job_id = self._submit_graph(store, registry, graph, mode="fit_detect").record.job_id
            batcher = MicroBatcher(registry, ServeConfig(max_batch=4, max_wait_ms=2))
            await batcher.start()
            pool = JobWorkerPool(store, batcher, n_workers=2,
                                 poll_interval_s=0.01, lease_ttl_s=30)
            await pool.start()
            # Stop as soon as the claim lands, before the fit can finish.
            deadline = time.monotonic() + 30
            while store.get(job_id).state == "queued" and time.monotonic() < deadline:
                await asyncio.sleep(0.002)
            await pool.stop()
            await batcher.stop()
            record = store.get(job_id)
            store.close()
            return record

        record = asyncio.run(scenario())
        # Either the score raced to completion, or the claim was released
        # with no attempt charged as a failure — never lost, never leased.
        assert record.state in ("queued", "done")
        assert record.lease_owner is None


# ----------------------------------------------------------------------
class TestJobsCli:
    @pytest.fixture()
    def populated(self, tmp_path):
        path = str(tmp_path / "jobs.sqlite")
        with JobStore(path) as store:
            done = _submit(store, fingerprint="a").record
            store.claim("w", limit=1)
            store.complete(done.job_id, {"result": {"ok": True}},
                           trace_id="t-1", score_digest="d-1")
            failed = _submit(store, fingerprint="b").record
            store.claim("w", limit=1)
            store.fail(failed.job_id, "boom")
            _submit(store, fingerprint="c")
            return path, done.job_id, failed.job_id

    def test_ls_table_and_json(self, populated, capsys):
        path, done_id, _ = populated
        assert jobs_main(["ls", "--store", path]) == 0
        table = capsys.readouterr().out
        assert done_id in table and "done=1" in table and "failed=1" in table
        assert jobs_main(["ls", "--store", path, "--state", "done", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [job["job_id"] for job in payload["jobs"]] == [done_id]
        assert payload["stats"]["states"]["queued"] == 1

    def test_show_record_and_result(self, populated, capsys):
        path, done_id, failed_id = populated
        assert jobs_main(["show", done_id, "--store", path]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["score_digest"] == "d-1"
        assert jobs_main(["show", done_id, "--store", path, "--result"]) == 0
        assert json.loads(capsys.readouterr().out) == {"result": {"ok": True}}
        # No result for a failed job; unknown ids are a clean error.
        assert jobs_main(["show", failed_id, "--store", path, "--result"]) == 1
        assert jobs_main(["show", "nope", "--store", path]) == 1
        assert "unknown job" in capsys.readouterr().err

    def test_requeue_and_gc(self, populated, capsys):
        path, done_id, failed_id = populated
        assert jobs_main(["requeue", failed_id, "--store", path]) == 0
        assert "queued" in capsys.readouterr().out
        assert jobs_main(["requeue", done_id, "--store", path]) == 1  # done is immutable
        assert jobs_main(["gc", "--store", path, "--max-age-s", "0"]) == 0
        assert "deleted 1" in capsys.readouterr().out  # only the done job was terminal
