"""Sharded execution: serial parity, seed derivation, cache counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import make_example_graph
from repro.gae import MHGAEConfig
from repro.gcl import TPGCLConfig
from repro.parallel import ParallelExecutor, default_worker_count, parallel_fit_detect_many
from repro.sampling import SamplerConfig
from repro.seeding import derive_stage_seeds, resolve_seed, spawn_seeds


def _tiny_config(seed: int = 1) -> TPGrGADConfig:
    return TPGrGADConfig(
        mhgae=MHGAEConfig(epochs=6, hidden_dim=16, embedding_dim=8),
        sampler=SamplerConfig(max_candidates=60, max_anchor_pairs=60),
        tpgcl=TPGCLConfig(epochs=3, hidden_dim=16, embedding_dim=16, batch_size=12),
        max_anchors=15,
        seed=seed,
    )


@pytest.fixture(scope="module")
def graphs():
    return [make_example_graph(seed=s) for s in (7, 11, 13)]


@pytest.fixture(scope="module")
def serial_results(graphs):
    return [r.to_json_dict() for r in TPGrGAD(_tiny_config()).fit_detect_many(graphs)]


class TestSeeding:
    def test_resolve_seed(self):
        assert resolve_seed(None) == 0
        assert resolve_seed(0) == 0
        assert resolve_seed(np.int64(5)) == 5

    def test_derive_stage_seeds_deterministic_and_distinct(self):
        a = derive_stage_seeds(3)
        assert a == derive_stage_seeds(3)
        assert len(set(a.values())) == 3
        assert a != derive_stage_seeds(4)

    def test_spawn_seeds_by_index_not_chunk(self):
        whole = spawn_seeds(9, 8)
        assert whole[:4] == spawn_seeds(9, 8)[:4]
        assert len(set(whole)) == 8

    def test_spawn_seeds_validates(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestShardedParity:
    def test_two_workers_match_serial(self, graphs, serial_results):
        executor = ParallelExecutor(_tiny_config(), n_workers=2)
        sharded = executor.fit_detect_many(graphs)
        assert [r.to_json_dict() for r in sharded] == serial_results

    def test_chunk_size_one_matches_serial(self, graphs, serial_results):
        executor = ParallelExecutor(_tiny_config(), n_workers=2, chunk_size=1)
        sharded = executor.fit_detect_many(graphs)
        assert [r.to_json_dict() for r in sharded] == serial_results

    def test_in_process_fallback_matches_serial(self, graphs, serial_results):
        executor = ParallelExecutor(_tiny_config(), n_workers=1)
        assert [r.to_json_dict() for r in executor.fit_detect_many(graphs)] == serial_results

    def test_pipeline_n_workers_route(self, graphs, serial_results):
        detector = TPGrGAD(_tiny_config())
        sharded = detector.fit_detect_many(graphs, n_workers=2)
        assert [r.to_json_dict() for r in sharded] == serial_results

    def test_pipeline_n_workers_keeps_post_fit_contract(self, graphs, tmp_path):
        """After a sharded batch the detector holds the last graph's models."""
        serial = TPGrGAD(_tiny_config())
        serial.fit_detect_many(graphs)
        serial_scores = serial.mhgae.score_nodes()

        sharded = TPGrGAD(_tiny_config())
        sharded.fit_detect_many(graphs, n_workers=2)
        assert sharded.mhgae is not None
        assert np.abs(sharded.mhgae.score_nodes() - serial_scores).max() <= 1e-12
        # And the detector is saveable, exactly as after a serial batch.
        sharded.save(tmp_path / "after-sharded")
        warm = TPGrGAD.load(tmp_path / "after-sharded").detect_only(graphs[-1])
        assert np.abs(warm.scores - serial.fit_detect(graphs[-1]).scores).max() <= 1e-8

    def test_convenience_wrapper(self, graphs, serial_results):
        results = parallel_fit_detect_many(graphs, _tiny_config(), n_workers=2)
        assert [r.to_json_dict() for r in results] == serial_results

    def test_empty_batch(self):
        assert ParallelExecutor(_tiny_config(), n_workers=2).fit_detect_many([]) == []

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            ParallelExecutor(_tiny_config(), chunk_size=0)


class TestDuplicateCollapse:
    def test_cache_counters_match_serial_detector(self, graphs):
        batch = [graphs[0], graphs[1], graphs[0], graphs[1]]

        serial = TPGrGAD(_tiny_config())
        serial_results = serial.fit_detect_many(batch)

        executor = ParallelExecutor(_tiny_config(), n_workers=2)
        sharded = executor.fit_detect_many(batch)

        assert executor.cache_hits == serial.cache_hits == 2
        assert executor.cache_misses == serial.cache_misses == 2
        assert [r.to_json_dict() for r in sharded] == [r.to_json_dict() for r in serial_results]

    def test_duplicate_results_are_independent_copies(self, graphs):
        executor = ParallelExecutor(_tiny_config(), n_workers=1)
        results = executor.fit_detect_many([graphs[0], graphs[0]])
        results[0].embeddings[:] = 0.0
        assert np.abs(results[1].embeddings).sum() > 0.0

    def test_pipeline_route_merges_counters(self, graphs):
        detector = TPGrGAD(_tiny_config())
        detector.fit_detect_many([graphs[0], graphs[0]], n_workers=2)
        assert detector.cache_hits == 1
        assert detector.cache_misses == 1

    def test_sharded_batch_supersedes_loaded_artifact_state(self, graphs, tmp_path):
        """A loaded detector that runs a sharded batch saves the new models."""
        from repro.persist import PipelineState

        original = TPGrGAD(_tiny_config())
        original.fit_detect(graphs[0])
        original.save(tmp_path / "old")

        loaded = TPGrGAD.load(tmp_path / "old")
        loaded.fit_detect_many([graphs[1]], n_workers=2)
        loaded.save(tmp_path / "new")
        assert (
            PipelineState.load(tmp_path / "new").graph_fingerprint
            == graphs[1].fingerprint()
        )

    def test_cache_size_zero_disables_collapse_like_serial(self, graphs):
        config = _tiny_config()
        config.cache_size = 0
        batch = [graphs[0], graphs[0]]

        serial = TPGrGAD(config)
        serial_results = serial.fit_detect_many(batch)

        executor = ParallelExecutor(config, n_workers=2)
        sharded = executor.fit_detect_many(batch)
        assert executor.cache_hits == serial.cache_hits == 0
        assert executor.cache_misses == serial.cache_misses == 2
        assert [r.to_json_dict() for r in sharded] == [r.to_json_dict() for r in serial_results]


class TestDerivedSeeds:
    def test_sharding_invariant(self, graphs):
        one = ParallelExecutor(_tiny_config(), n_workers=1, derive_seeds=True)
        two = ParallelExecutor(_tiny_config(), n_workers=2, derive_seeds=True, chunk_size=1)
        a = one.fit_detect_many(graphs)
        b = two.fit_detect_many(graphs)
        assert [r.to_json_dict() for r in a] == [r.to_json_dict() for r in b]

    def test_identical_graphs_get_distinct_streams(self, graphs):
        executor = ParallelExecutor(_tiny_config(), n_workers=1, derive_seeds=True)
        results = executor.fit_detect_many([graphs[0], graphs[0]])
        # Distinct per-index master seeds: same graph, different pipelines.
        assert results[0].to_json_dict() != results[1].to_json_dict()
        # And no duplicate-collapse hits were (wrongly) recorded.
        assert executor.cache_hits == 0


class TestArtifactBroadcast:
    def test_workers_serve_detect_only_from_artifact(self, tmp_path, graphs):
        detector = TPGrGAD(_tiny_config())
        oracle = [detector.fit_detect(graph) for graph in graphs]
        artifact = tmp_path / "artifact"
        # Save the pipeline fitted on the *last* graph; warm parity is only
        # exact on that graph, the others are warm-served approximations.
        detector.save(artifact)

        executor = ParallelExecutor(n_workers=2, artifact=str(artifact))
        warm = executor.fit_detect_many(graphs)
        assert len(warm) == len(graphs)
        assert np.abs(warm[-1].scores - oracle[-1].scores).max() <= 1e-8
        for result in warm:
            assert np.isfinite(result.scores).all()

    def test_artifact_mode_collapses_duplicate_graphs(self, tmp_path, graphs):
        detector = TPGrGAD(_tiny_config())
        detector.fit_detect(graphs[0])
        artifact = tmp_path / "artifact"
        detector.save(artifact)

        executor = ParallelExecutor(n_workers=1, artifact=str(artifact))
        results = executor.fit_detect_many([graphs[0], graphs[1], graphs[0], graphs[1]])
        # Warm detect_only is deterministic per graph, so duplicates are
        # scored once and fanned out (counted like stage-cache hits) —
        # what the scoring service's sharded micro-batches rely on.
        assert executor.cache_hits == 2
        assert results[0].to_json_dict() == results[2].to_json_dict()
        assert results[1].to_json_dict() == results[3].to_json_dict()
        direct = TPGrGAD.load(str(artifact)).detect_only(graphs[1])
        assert np.abs(results[1].scores - direct.scores).max() <= 1e-8


class TestThreadBackend:
    @pytest.fixture()
    def artifact(self, tmp_path, graphs):
        detector = TPGrGAD(_tiny_config())
        detector.fit_detect(graphs[0])
        path = tmp_path / "artifact"
        detector.save(path)
        return str(path)

    def test_thread_backend_matches_serial_warm_path(self, artifact, graphs):
        warm = TPGrGAD.load(artifact)
        serial = [warm.detect_only(graph).to_json_dict() for graph in graphs]
        executor = ParallelExecutor(
            n_workers=2, chunk_size=1, artifact=artifact, backend="thread"
        )
        threaded = [r.to_json_dict() for r in executor.fit_detect_many(graphs)]
        assert threaded == serial

    def test_thread_backend_collapses_duplicates_and_shares_detector(self, artifact, graphs):
        executor = ParallelExecutor(n_workers=2, artifact=artifact, backend="thread")
        results = executor.fit_detect_many([graphs[0], graphs[1], graphs[0]])
        assert executor.cache_hits == 1
        assert results[0].to_json_dict() == results[2].to_json_dict()
        # One detector, loaded once in the parent, reused across batches.
        first = executor._shared_detector()
        executor.fit_detect_many(graphs)
        assert executor._shared_detector() is first

    def test_thread_backend_requires_artifact(self):
        with pytest.raises(ValueError, match="requires a broadcast artifact"):
            ParallelExecutor(_tiny_config(), backend="thread")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend must be"):
            ParallelExecutor(_tiny_config(), backend="greenlet")

    def test_thread_backend_merges_trace_spans(self, artifact, graphs):
        from repro.obs.tracer import Tracer, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            executor = ParallelExecutor(
                n_workers=2, chunk_size=1, artifact=artifact, backend="thread"
            )
            executor.fit_detect_many(graphs)
        names = [span.name for span in tracer.spans]
        assert "parallel.fit_detect_many" in names
        assert names.count("parallel.chunk") == len(graphs)
        # Every chunk span continues the parent trace.
        assert {span.trace_id for span in tracer.spans} == {tracer.trace_id}


class TestExperimentSharding:
    def test_registry_shards_and_preserves_order(self):
        from repro.experiments import ExperimentSettings

        settings = ExperimentSettings(datasets=["simml"], scale=0.05, seeds=(0,))
        executor = ParallelExecutor(n_workers=2)
        runs = executor.run_experiments(["table1", "table1"], settings)
        assert [name for name, _, _ in runs] == ["table1", "table1"]
        # Same experiment, same settings: identical records and rendering.
        assert runs[0][1] == runs[1][1]
        assert "simML" in runs[0][2]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="unknown experiments"):
            ParallelExecutor(n_workers=1).run_experiments(["nope"], None)

    def test_empty_names(self):
        assert ParallelExecutor(n_workers=1).run_experiments([], None) == []


def test_default_worker_count_positive():
    assert default_worker_count() >= 1
