"""Parity tests between the sparse-first engine and the seed implementations.

The vectorised adjacency transforms introduced by the sparse-first refactor
must reproduce the original (looped / dense) implementations exactly.  The
seed algorithms are kept *inside this module* as regression oracles so the
production code can evolve freely while parity stays pinned:

* ``normalized_adjacency``   vs dense ``D^{-1/2} (A + I) D^{-1/2}``,
* ``k_hop_matrix``           vs ``np.linalg.matrix_power``,
* ``graphsnn_weighted_adjacency`` vs the per-edge overlap-subgraph loop,

each to ≤ 1e-8 on random graphs, for both the dense and the sparse return
layouts.  The same file checks the CSR-derived ``Graph`` queries and the
``spmm`` autodiff op against their dense counterparts.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import (
    Graph,
    graphsnn_weighted_adjacency,
    k_hop_matrix,
    normalized_adjacency,
    row_normalize,
)
from repro.tensor import Tensor, spmm

TOLERANCE = 1e-8


# ----------------------------------------------------------------------
# Seed implementations (regression oracles — do not "optimise" these)
# ----------------------------------------------------------------------
def seed_normalized_adjacency(graph: Graph, add_self_loops: bool = True) -> np.ndarray:
    adjacency = graph.adjacency(sparse=False)
    if add_self_loops:
        adjacency = adjacency + np.eye(graph.n_nodes)
    degrees = adjacency.sum(axis=1)
    with np.errstate(divide="ignore"):
        inv_sqrt = np.where(degrees > 0, degrees ** -0.5, 0.0)
    return (adjacency * inv_sqrt[:, None]) * inv_sqrt[None, :]


def seed_k_hop_matrix(graph: Graph, k: int, standardize: bool = True) -> np.ndarray:
    adjacency = graph.adjacency(sparse=False)
    power = np.linalg.matrix_power(adjacency, k)
    if standardize:
        maximum = power.max()
        if maximum > 0:
            power = power / maximum
    return power


def seed_graphsnn_weighted_adjacency(graph: Graph, lam: float = 1.0, normalize: bool = True) -> np.ndarray:
    # A second copy of this loop lives in benchmarks/test_scaling_sparse.py
    # as the timing baseline; change both or neither.
    n = graph.n_nodes
    weighted = np.zeros((n, n), dtype=np.float64)
    closed_neighborhoods = [set(graph.neighbors(v)) | {v} for v in range(n)]
    edge_lookup = {frozenset(e) for e in graph.edges}
    for u, v in graph.edges:
        overlap_nodes = closed_neighborhoods[u] & closed_neighborhoods[v]
        size = len(overlap_nodes)
        if size < 2:
            weight = 1.0
        else:
            overlap_edges = 0
            overlap_list = sorted(overlap_nodes)
            for i, a in enumerate(overlap_list):
                for b in overlap_list[i + 1 :]:
                    if frozenset((a, b)) in edge_lookup:
                        overlap_edges += 1
            weight = overlap_edges / (size * (size - 1)) * (size ** lam)
            if weight <= 0.0:
                weight = 1.0 / size
        weighted[u, v] = weight
        weighted[v, u] = weight
    if normalize and weighted.max() > 0:
        weighted = weighted / weighted.max()
    return weighted


# ----------------------------------------------------------------------
# Random-graph fixture helpers
# ----------------------------------------------------------------------
def random_graph(seed: int, n_nodes: int = 70, edge_probability: float = 0.08) -> Graph:
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.random((n_nodes, n_nodes)) < edge_probability, k=1)
    edges = np.argwhere(upper)
    return Graph(n_nodes, edges, features=rng.normal(size=(n_nodes, 4)), name=f"random-{seed}")


GRAPH_SEEDS = [0, 1, 2]


# ----------------------------------------------------------------------
# Transform parity
# ----------------------------------------------------------------------
class TestTransformParity:
    @pytest.mark.parametrize("seed", GRAPH_SEEDS)
    @pytest.mark.parametrize("add_self_loops", [True, False])
    def test_normalized_adjacency_matches_seed(self, seed, add_self_loops):
        graph = random_graph(seed)
        oracle = seed_normalized_adjacency(graph, add_self_loops)
        dense = normalized_adjacency(graph, add_self_loops)
        assert np.abs(dense - oracle).max() <= TOLERANCE
        csr = normalized_adjacency(graph, add_self_loops, sparse=True)
        assert sp.issparse(csr)
        assert np.abs(csr.toarray() - oracle).max() <= TOLERANCE

    @pytest.mark.parametrize("seed", GRAPH_SEEDS)
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_k_hop_matrix_matches_seed(self, seed, k):
        graph = random_graph(seed)
        oracle = seed_k_hop_matrix(graph, k)
        assert np.abs(k_hop_matrix(graph, k) - oracle).max() <= TOLERANCE
        csr = k_hop_matrix(graph, k, sparse=True)
        assert sp.issparse(csr)
        assert np.abs(csr.toarray() - oracle).max() <= TOLERANCE

    @pytest.mark.parametrize("seed", GRAPH_SEEDS)
    @pytest.mark.parametrize("lam", [0.5, 1.0, 2.0])
    @pytest.mark.parametrize("normalize", [True, False])
    def test_graphsnn_matches_seed(self, seed, lam, normalize):
        graph = random_graph(seed)
        oracle = seed_graphsnn_weighted_adjacency(graph, lam=lam, normalize=normalize)
        dense = graphsnn_weighted_adjacency(graph, lam=lam, normalize=normalize)
        assert np.abs(dense - oracle).max() <= TOLERANCE
        csr = graphsnn_weighted_adjacency(graph, lam=lam, normalize=normalize, sparse=True)
        assert sp.issparse(csr)
        assert np.abs(csr.toarray() - oracle).max() <= TOLERANCE

    def test_graphsnn_on_triangle_dense_overlap(self):
        # Fully connected K4: every edge's overlap subgraph is the whole clique.
        graph = Graph(4, [(a, b) for a in range(4) for b in range(a + 1, 4)])
        oracle = seed_graphsnn_weighted_adjacency(graph, normalize=False)
        dense = graphsnn_weighted_adjacency(graph, normalize=False)
        assert np.abs(dense - oracle).max() <= TOLERANCE

    def test_graphsnn_empty_graph(self):
        graph = Graph(5, [])
        assert graphsnn_weighted_adjacency(graph).sum() == 0.0
        assert graphsnn_weighted_adjacency(graph, sparse=True).nnz == 0

    @pytest.mark.parametrize("seed", GRAPH_SEEDS)
    def test_row_normalize_sparse_matches_dense(self, seed):
        graph = random_graph(seed)
        dense_target = graph.adjacency() + np.eye(graph.n_nodes)
        sparse_target = sp.csr_matrix(dense_target)
        dense = row_normalize(dense_target)
        sparse_result = row_normalize(sparse_target)
        assert sp.issparse(sparse_result)
        assert np.abs(sparse_result.toarray() - dense).max() <= TOLERANCE

    def test_row_normalize_sparse_keeps_zero_rows(self):
        matrix = sp.csr_matrix(np.array([[2.0, 2.0], [0.0, 0.0]]))
        normalized = row_normalize(matrix).toarray()
        assert normalized[0].sum() == pytest.approx(1.0)
        assert normalized[1].sum() == pytest.approx(0.0)


# ----------------------------------------------------------------------
# Graph query parity
# ----------------------------------------------------------------------
class TestGraphQueryParity:
    @pytest.mark.parametrize("seed", GRAPH_SEEDS)
    def test_degree_vector_matches_edge_scan(self, seed):
        graph = random_graph(seed)
        oracle = np.zeros(graph.n_nodes, dtype=np.int64)
        for u, v in graph.edges:
            oracle[u] += 1
            oracle[v] += 1
        assert (graph.degree() == oracle).all()
        for node in range(0, graph.n_nodes, 7):
            assert graph.degree(node) == oracle[node]

    @pytest.mark.parametrize("seed", GRAPH_SEEDS)
    def test_has_edge_matches_edge_set(self, seed):
        graph = random_graph(seed)
        edge_set = set(graph.edges)
        rng = np.random.default_rng(seed + 100)
        pairs = rng.integers(0, graph.n_nodes, size=(300, 2))
        for u, v in pairs:
            expected = (min(u, v), max(u, v)) in edge_set and u != v
            assert graph.has_edge(u, v) == expected

    @pytest.mark.parametrize("seed", GRAPH_SEEDS)
    def test_subgraph_matches_python_scan(self, seed):
        graph = random_graph(seed)
        rng = np.random.default_rng(seed + 200)
        nodes = sorted(rng.choice(graph.n_nodes, size=25, replace=False).tolist())
        index = {node: i for i, node in enumerate(nodes)}
        node_set = set(nodes)
        oracle = sorted(
            (index[u], index[v]) for u, v in graph.edges if u in node_set and v in node_set
        )
        sub = graph.subgraph(nodes)
        assert sub.n_nodes == len(nodes)
        assert list(sub.edges) == oracle
        assert sub.features == pytest.approx(graph.features[nodes])

    def test_subgraph_out_of_range_raises(self):
        graph = random_graph(0)
        with pytest.raises(ValueError):
            graph.subgraph([0, graph.n_nodes + 3])

    @pytest.mark.parametrize("seed", GRAPH_SEEDS)
    def test_edge_index_is_canonical_and_matches_edges(self, seed):
        graph = random_graph(seed)
        u, v = graph.edge_index
        assert (u < v).all()
        assert list(map(tuple, graph.edge_index.T.tolist())) == list(graph.edges)

    def test_edge_index_read_only(self):
        graph = random_graph(0)
        with pytest.raises(ValueError):
            graph.edge_index[0, 0] = 99

    @pytest.mark.parametrize("seed", GRAPH_SEEDS)
    def test_connected_components_match_neighbor_bfs(self, seed):
        graph = random_graph(seed, n_nodes=40, edge_probability=0.04)
        fast = {frozenset(c) for c in graph.connected_components()}
        slow = {frozenset(c) for c in graph.connected_components(range(graph.n_nodes))}
        assert fast == slow


# ----------------------------------------------------------------------
# spmm autodiff parity
# ----------------------------------------------------------------------
class TestSpmmParity:
    def test_forward_matches_dense_matmul(self):
        rng = np.random.default_rng(0)
        matrix = sp.random(30, 30, density=0.2, random_state=0, format="csr")
        x = rng.normal(size=(30, 5))
        out = spmm(matrix, Tensor(x))
        assert out.numpy() == pytest.approx(matrix.toarray() @ x, abs=1e-12)

    def test_backward_matches_dense_matmul(self):
        rng = np.random.default_rng(1)
        dense = rng.normal(size=(20, 20)) * (rng.random((20, 20)) < 0.25)
        matrix = sp.csr_matrix(dense)
        x_data = rng.normal(size=(20, 4))

        x_sparse = Tensor(x_data, requires_grad=True)
        spmm(matrix, x_sparse).sum().backward()

        x_dense = Tensor(x_data, requires_grad=True)
        (Tensor(dense) @ x_dense).sum().backward()

        assert x_sparse.grad == pytest.approx(x_dense.grad, abs=1e-10)

    def test_dense_matrix_falls_back(self):
        rng = np.random.default_rng(2)
        matrix = rng.normal(size=(6, 6))
        x = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        out = spmm(matrix, x)
        assert out.numpy() == pytest.approx(matrix @ x.numpy())
        out.sum().backward()
        assert x.grad == pytest.approx(matrix.T @ np.ones((6, 3)))

    def test_gcnconv_sparse_dense_equivalence(self):
        from repro.nn import GCNConv

        graph = random_graph(3, n_nodes=40)
        dense_prop = normalized_adjacency(graph)
        sparse_prop = normalized_adjacency(graph, sparse=True)
        conv_a = GCNConv(4, 8, np.random.default_rng(0))
        conv_b = GCNConv(4, 8, np.random.default_rng(0))
        features = Tensor(graph.features)
        out_dense = conv_a(features, dense_prop).numpy()
        out_sparse = conv_b(features, sparse_prop).numpy()
        assert np.abs(out_dense - out_sparse).max() <= TOLERANCE

    def test_graphsnnconv_sparse_dense_equivalence(self):
        from repro.nn import GraphSNNConv

        graph = random_graph(4, n_nodes=40)
        dense_weighted = graphsnn_weighted_adjacency(graph)
        sparse_weighted = graphsnn_weighted_adjacency(graph, sparse=True)
        conv_a = GraphSNNConv(4, 8, np.random.default_rng(0))
        conv_b = GraphSNNConv(4, 8, np.random.default_rng(0))
        features = Tensor(graph.features)
        out_dense = conv_a(features, dense_weighted).numpy()
        out_sparse = conv_b(features, sparse_weighted).numpy()
        assert np.abs(out_dense - out_sparse).max() <= TOLERANCE
