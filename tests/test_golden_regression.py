"""Golden end-to-end regression fixtures for ``fit_detect`` / ``fit_detect_many``.

Two seeded example graphs are run through the full pipeline with a pinned
fast config; the resulting :class:`GroupDetectionResult` (scores to 1e-8,
candidate and flagged node sets, threshold, anchors) is diffed against
stored JSON oracles in ``tests/golden/``.  Any refactor of the sampler,
the pipeline stages or the batched API that changes end-to-end output
shows up here as an exact diff.

Regenerate the fixtures after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/test_golden_regression.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import make_example_graph

GOLDEN_DIR = Path(__file__).parent / "golden"
SCORE_TOLERANCE = 1e-8

# (fixture name, example-graph seed); the pipeline config is pinned below.
CASES = [("example_seed7", 7), ("example_seed11", 11)]


def _pinned_config() -> TPGrGADConfig:
    return TPGrGADConfig.fast(seed=1)


def _run_case(graph_seed: int) -> dict:
    graph = make_example_graph(seed=graph_seed)
    return TPGrGAD(_pinned_config()).fit_detect(graph).to_json_dict()


def _load_fixture(name: str) -> dict:
    with open(GOLDEN_DIR / f"{name}.json") as handle:
        return json.load(handle)


def _assert_matches_fixture(actual: dict, fixture: dict) -> None:
    assert actual["candidate_groups"] == fixture["candidate_groups"]
    assert actual["anomalous_groups"] == fixture["anomalous_groups"]
    assert actual["anchor_nodes"] == fixture["anchor_nodes"]
    assert actual["threshold"] == pytest.approx(fixture["threshold"], abs=SCORE_TOLERANCE)
    assert len(actual["scores"]) == len(fixture["scores"])
    for actual_score, pinned_score in zip(actual["scores"], fixture["scores"]):
        assert actual_score == pytest.approx(pinned_score, abs=SCORE_TOLERANCE)


@pytest.mark.parametrize("name,graph_seed", CASES)
def test_fit_detect_matches_golden_fixture(name, graph_seed):
    _assert_matches_fixture(_run_case(graph_seed), _load_fixture(name))


def test_fit_detect_many_matches_golden_fixtures():
    """The batched API reproduces the single-graph oracles in one call."""
    graphs = [make_example_graph(seed=graph_seed) for _, graph_seed in CASES]
    results = TPGrGAD(_pinned_config()).fit_detect_many(graphs)
    for (name, _), result in zip(CASES, results):
        _assert_matches_fixture(result.to_json_dict(), _load_fixture(name))


def regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, graph_seed in CASES:
        path = GOLDEN_DIR / f"{name}.json"
        with open(path, "w") as handle:
            json.dump(_run_case(graph_seed), handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
