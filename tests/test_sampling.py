"""Unit tests for candidate-group sampling (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Graph
from repro.sampling import CandidateGroupSampler, SamplerConfig, cycle_search, path_search, tree_search
from repro.sampling.searches import merge_groups


@pytest.fixture
def ring_graph() -> Graph:
    """An 8-node ring plus a chord, giving paths, trees and cycles to find."""
    edges = [(i, (i + 1) % 8) for i in range(8)] + [(0, 4)]
    return Graph(8, edges, np.zeros((8, 2)))


class TestPathSearch:
    def test_shortest_path_found(self, ring_graph):
        group = path_search(ring_graph, 0, 3)
        assert group is not None
        assert group.label == "path"
        # The chord (0, 4) makes 0-4-3 the shortest route.
        assert len(group) == 3
        assert {0, 3} <= group.nodes

    def test_uses_chord_shortcut(self, ring_graph):
        group = path_search(ring_graph, 1, 4)
        assert len(group) <= 4

    def test_disconnected_returns_none(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        assert path_search(graph, 0, 3) is None

    def test_max_length_cutoff(self, ring_graph):
        assert path_search(ring_graph, 2, 7, max_length=2) is None

    def test_same_node_returns_none(self, ring_graph):
        assert path_search(ring_graph, 2, 2) is None


class TestTreeSearch:
    def test_tree_contains_root_neighbourhood(self, ring_graph):
        group = tree_search(ring_graph, 0, 2, depth=1)
        assert group is not None
        assert group.label == "tree"
        assert 0 in group and 1 in group and 7 in group

    def test_tree_includes_far_anchor_when_reachable(self, ring_graph):
        group = tree_search(ring_graph, 0, 2, depth=2)
        assert 2 in group

    def test_tree_edges_form_a_tree(self, ring_graph):
        group = tree_search(ring_graph, 0, 5, depth=2, max_nodes=10)
        assert len(group.edges) == len(group) - 1

    def test_max_nodes_bound(self, ring_graph):
        group = tree_search(ring_graph, 0, 4, depth=4, max_nodes=4)
        assert len(group) <= 5  # max_nodes plus possibly the target anchor's chain

    def test_isolated_root_returns_none(self):
        graph = Graph(3, [(1, 2)])
        assert tree_search(graph, 0, 1) is None


class TestCycleSearch:
    def test_finds_ring_cycle(self, ring_graph):
        cycles = cycle_search(ring_graph, 0, max_cycle_length=8, max_cycles=5)
        assert cycles
        assert all(c.label == "cycle" for c in cycles)
        assert any(len(c) == 5 for c in cycles)  # 0-1-2-3-4 via chord

    def test_no_cycle_in_tree(self):
        graph = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert cycle_search(graph, 0) == []

    def test_respects_max_cycles(self, ring_graph):
        cycles = cycle_search(ring_graph, 0, max_cycle_length=8, max_cycles=1)
        assert len(cycles) == 1

    def test_respects_max_length(self, ring_graph):
        cycles = cycle_search(ring_graph, 0, max_cycle_length=4, max_cycles=5)
        assert all(len(c) <= 5 for c in cycles)


class TestMergeAndSampler:
    def test_merge_groups_removes_duplicates(self, ring_graph):
        a = path_search(ring_graph, 0, 3)
        b = path_search(ring_graph, 0, 3)
        c = path_search(ring_graph, 0, 2)
        assert len(merge_groups([a, b, c])) == 2

    def test_sampler_returns_groups_within_bounds(self, ring_graph):
        sampler = CandidateGroupSampler(SamplerConfig(max_group_size=6, min_group_size=2))
        groups = sampler.sample(ring_graph, [0, 3, 5])
        assert groups
        assert all(2 <= len(g) <= 6 for g in groups)

    def test_sampler_empty_anchor_list(self, ring_graph):
        assert CandidateGroupSampler().sample(ring_graph, []) == []

    def test_sampler_respects_max_candidates(self, ring_graph):
        sampler = CandidateGroupSampler(SamplerConfig(max_candidates=3))
        groups = sampler.sample(ring_graph, list(range(8)))
        assert len(groups) <= 3

    def test_sampler_deterministic(self, ring_graph):
        sampler_a = CandidateGroupSampler(SamplerConfig(seed=5))
        sampler_b = CandidateGroupSampler(SamplerConfig(seed=5))
        groups_a = sampler_a.sample(ring_graph, [0, 2, 4])
        groups_b = sampler_b.sample(ring_graph, [0, 2, 4])
        assert [g.node_tuple() for g in groups_a] == [g.node_tuple() for g in groups_b]

    def test_repeated_calls_advance_the_rng(self):
        """Repeated ``sample`` calls must not reuse the same subsampled pairs.

        The seed implementation rebuilt ``default_rng(config.seed)`` inside
        every call, so scoring a batch of graphs re-drew identical pair
        indices each time.  The stream now persists across calls: the first
        call is bit-identical to the historical behaviour, later calls draw
        fresh subsamples.
        """
        rng = np.random.default_rng(0)
        graph = Graph(40, rng.integers(0, 40, size=(100, 2)), np.zeros((40, 1)))
        anchors = list(range(20))  # 190 pairs, far above the cap below
        config = SamplerConfig(max_anchor_pairs=25, seed=9)

        sampler = CandidateGroupSampler(config)
        first = [g.node_tuple() for g in sampler.sample(graph, anchors)]
        second = [g.node_tuple() for g in sampler.sample(graph, anchors)]
        fresh = [g.node_tuple() for g in CandidateGroupSampler(config).sample(graph, anchors)]
        assert first == fresh  # first call unchanged vs. a fresh sampler
        assert first != second  # the stream advanced between calls

    def test_explicit_rng_overrides_persistent_stream(self):
        rng = np.random.default_rng(0)
        graph = Graph(40, rng.integers(0, 40, size=(100, 2)), np.zeros((40, 1)))
        anchors = list(range(20))
        config = SamplerConfig(max_anchor_pairs=25, seed=9)

        sampler = CandidateGroupSampler(config)
        baseline = [g.node_tuple() for g in sampler.sample(graph, anchors)]
        # An explicit rng seeded like the config reproduces the first call,
        # regardless of how far the persistent stream has advanced.
        explicit = [
            g.node_tuple()
            for g in sampler.sample(graph, anchors, rng=np.random.default_rng(9))
        ]
        assert explicit == baseline

    def test_reset_rng_rewinds_the_stream(self):
        rng = np.random.default_rng(0)
        graph = Graph(40, rng.integers(0, 40, size=(100, 2)), np.zeros((40, 1)))
        anchors = list(range(20))
        sampler = CandidateGroupSampler(SamplerConfig(max_anchor_pairs=25, seed=9))
        first = [g.node_tuple() for g in sampler.sample(graph, anchors)]
        sampler.sample(graph, anchors)
        sampler.reset_rng()
        assert [g.node_tuple() for g in sampler.sample(graph, anchors)] == first

    def test_sampler_covers_planted_group(self, example_graph):
        """Anchors inside a planted group should produce a candidate covering most of it."""
        target = example_graph.groups[0]
        anchors = sorted(target.nodes)[:3]
        groups = CandidateGroupSampler(SamplerConfig(max_path_length=15)).sample(example_graph, anchors)
        best_overlap = max(len(g.nodes & target.nodes) / len(target.nodes) for g in groups)
        assert best_overlap >= 0.5

    def test_sample_with_scores_attaches_mean_scores(self, ring_graph):
        node_scores = np.arange(8, dtype=float)
        groups = CandidateGroupSampler().sample_with_scores(ring_graph, [0, 4], node_scores)
        assert all(g.score is not None for g in groups)
        for group in groups:
            assert group.score == pytest.approx(node_scores[list(group.nodes)].mean())
