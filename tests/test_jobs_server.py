"""HTTP end-to-end tests of the async job API (``/jobs``).

Pins the serving-layer acceptance criteria of the jobs subsystem:

* submit → poll → result over real HTTP, with the stored ``fit_detect``
  / ``detect_only`` response **bit-identical** to the synchronous
  ``/score`` path on the same server;
* duplicate submissions return the same job id with a dedup marker;
* per-tenant quotas surface as ``429`` + ``Retry-After`` and tenants are
  keyed by the ``X-API-Key`` header;
* job metrics appear in both the JSON snapshot and the Prometheus
  exposition;
* graceful drain releases claims, and a *new* server booted on the same
  sqlite store finishes the work — durability across restarts.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import make_example_graph
from repro.gae import MHGAEConfig
from repro.gcl import TPGCLConfig
from repro.jobs import JobStore
from repro.sampling import SamplerConfig
from repro.serve import (
    JobFailedError,
    LoadShedError,
    ModelRegistry,
    ScoringClient,
    ServeConfig,
    ServeError,
    start_server_thread,
)


def _tiny_config(seed: int = 1) -> TPGrGADConfig:
    return TPGrGADConfig(
        mhgae=MHGAEConfig(epochs=8, hidden_dim=16, embedding_dim=8),
        sampler=SamplerConfig(max_candidates=60, max_anchor_pairs=80),
        tpgcl=TPGCLConfig(epochs=3, hidden_dim=16, embedding_dim=16, batch_size=16),
        max_anchors=15,
        seed=seed,
    )


GRAPH = make_example_graph(seed=7)
OTHER = make_example_graph(seed=11)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    detector = TPGrGAD(_tiny_config())
    detector.fit_detect(GRAPH)
    return str(detector.save(tmp_path_factory.mktemp("jobs-serve") / "alpha"))


@pytest.fixture()
def registry(artifact):
    registry = ModelRegistry()
    registry.load("alpha", artifact)
    return registry


def _serve_config(tmp_path, **overrides) -> ServeConfig:
    defaults = dict(
        max_batch=8,
        max_wait_ms=2,
        job_store_path=str(tmp_path / "jobs.sqlite"),
        job_workers=1,
        job_poll_interval_s=0.01,
        provenance_path=str(tmp_path / "provenance.jsonl"),
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


@pytest.fixture()
def running(registry, tmp_path):
    """Fast-draining server: jobs complete within milliseconds."""
    handle = start_server_thread(registry, _serve_config(tmp_path))
    client = ScoringClient(port=handle.port)
    try:
        yield handle, client
    finally:
        client.close()
        handle.stop()


@pytest.fixture()
def idle(registry, tmp_path):
    """Slow-claiming server: jobs stay ``queued`` for ~30s — the window
    the cancel/quota/409 tests need."""
    handle = start_server_thread(
        registry, _serve_config(tmp_path, job_poll_interval_s=30.0)
    )
    client = ScoringClient(port=handle.port)
    time.sleep(0.3)  # let the first (empty) claim pass → workers asleep
    try:
        yield handle, client
    finally:
        client.close()
        handle.stop()


# ----------------------------------------------------------------------
class TestSubmitPollResult:
    def test_roundtrip_bit_identical_to_sync_score(self, running):
        _, client = running
        sync = client.score(GRAPH)

        accepted = client.submit_job(GRAPH)
        assert accepted["deduplicated"] is False
        assert accepted["model"] == "alpha" and accepted["version"] == 1

        result = client.wait_job(accepted["job_id"], timeout=60)
        assert result["state"] == "done"
        response = result["response"]
        assert response["result"] == sync["result"]
        assert response["model"] == sync["model"]
        assert response["config_hash"] == sync["config_hash"]
        # Provenance carried into the stored record itself.
        record = client.job(accepted["job_id"])
        assert record["state"] == "done"
        assert record["score_digest"] == response["provenance"]["score_digest"]
        assert record["wait_seconds"] is not None and record["run_seconds"] is not None

    def test_fit_detect_job_matches_sync_fit_detect(self, running):
        _, client = running
        sync = client.score(OTHER, mode="fit_detect")
        accepted = client.submit_job(OTHER, mode="fit_detect")
        result = client.wait_job(accepted["job_id"], timeout=120)
        assert result["response"]["result"] == sync["result"]
        assert result["response"]["mode"] == "fit_detect"

    def test_duplicate_submission_returns_same_job(self, running):
        _, client = running
        first = client.submit_job(GRAPH, threshold=0.25)
        second = client.submit_job(GRAPH, threshold=0.25)
        assert second["job_id"] == first["job_id"]
        assert second["deduplicated"] is True
        assert second["submit_count"] == 2
        # A different threshold is different work.
        third = client.submit_job(GRAPH, threshold=0.75)
        assert third["job_id"] != first["job_id"]
        client.wait_job(first["job_id"], timeout=60)
        metrics = client.metrics()["jobs"]
        assert metrics["deduplicated_total"] >= 1

    def test_validation_errors(self, running):
        _, client = running
        with pytest.raises(ServeError) as excinfo:
            client.submit_job(GRAPH, mode="training")
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client.submit_job(GRAPH, model="ghost")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            client.job("nope")
        assert excinfo.value.status == 404


# ----------------------------------------------------------------------
class TestCancelAndPending:
    def test_cancel_queued_job(self, idle, tmp_path):
        _, client = idle
        accepted = client.submit_job(GRAPH)
        assert accepted["state"] == "queued"
        cancelled = client.cancel_job(accepted["job_id"])
        assert cancelled["state"] == "cancelled"
        # Result endpoint reports 410 Gone; wait_job surfaces it.
        with pytest.raises(ServeError) as excinfo:
            client.job_result(accepted["job_id"])
        assert excinfo.value.status == 410
        with pytest.raises(JobFailedError):
            client.wait_job(accepted["job_id"], timeout=5)
        assert client.metrics()["jobs"]["cancelled_total"] == 1

    def test_pending_result_is_409_with_retry_after(self, idle):
        _, client = idle
        accepted = client.submit_job(OTHER)
        status, headers, body = client._request(
            "GET", f"/jobs/{accepted['job_id']}/result"
        )
        assert status == 409
        assert headers.get("Retry-After") == "1"
        assert body["state"] == "queued"

    def test_queued_quota_is_429_with_retry_after(self, registry, tmp_path):
        handle = start_server_thread(
            registry,
            _serve_config(tmp_path, job_poll_interval_s=30.0, job_max_queued=2),
        )
        client = ScoringClient(port=handle.port)
        time.sleep(0.3)
        try:
            client.submit_job(GRAPH, threshold=0.1)
            client.submit_job(GRAPH, threshold=0.2)
            with pytest.raises(LoadShedError) as excinfo:
                client.submit_job(GRAPH, threshold=0.3)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after_s > 0
            # Dedup resubmission still succeeds at the quota boundary.
            assert client.submit_job(GRAPH, threshold=0.1)["deduplicated"] is True
            assert client.metrics()["jobs"]["quota_shed_total"] == 1
        finally:
            client.close()
            handle.stop()

    def test_jobs_endpoint_disabled_without_store(self, registry):
        handle = start_server_thread(registry, ServeConfig())
        client = ScoringClient(port=handle.port)
        try:
            with pytest.raises(ServeError) as excinfo:
                client.submit_job(GRAPH)
            assert excinfo.value.status == 503
        finally:
            client.close()
            handle.stop()


# ----------------------------------------------------------------------
class TestTenantsAndListing:
    def test_api_key_scopes_tenant_and_listing(self, idle):
        handle, _ = idle
        team_a = ScoringClient(port=handle.port, api_key="team-a")
        team_b = ScoringClient(port=handle.port, api_key="team-b")
        try:
            a_job = team_a.submit_job(GRAPH)
            team_b.submit_job(OTHER)
            assert a_job["tenant"] == "team-a"
            listing = team_a.jobs(tenant="team-a")
            assert [job["job_id"] for job in listing["jobs"]] == [a_job["job_id"]]
            assert listing["counts"]["queued"] == 1
            everything = team_a.jobs()
            assert len(everything["jobs"]) == 2
            queued = team_a.jobs(state="queued", limit=1)
            assert len(queued["jobs"]) == 1
        finally:
            team_a.close()
            team_b.close()

    def test_metrics_json_and_prometheus_cover_jobs(self, running):
        handle, client = running
        client.submit_job(GRAPH)
        client.wait_job(client.submit_job(OTHER)["job_id"], timeout=60)

        jobs = client.metrics()["jobs"]
        assert jobs["submitted_total"] == 2
        assert jobs["completed_total"] >= 1
        assert "queue_depth" in jobs and set(jobs["queue_depth"]) == {
            "queued", "running", "done", "failed", "cancelled"
        }
        assert jobs["quota"] == {"max_queued": 64, "max_running": 8}
        assert "public" in jobs["tenants"]
        assert "wait_p95_ms" in jobs and "run_p95_ms" in jobs

        conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=10)
        try:
            conn.request("GET", "/metrics?format=prometheus")
            response = conn.getresponse()
            text = response.read().decode()
        finally:
            conn.close()
        assert response.status == 200
        assert "repro_jobs_submitted_total 2" in text
        assert 'repro_jobs_queue_depth{state="done"}' in text
        assert 'repro_jobs_tenant_submitted_total{tenant="public"}' in text


# ----------------------------------------------------------------------
class TestGracefulDrainAndRestart:
    def test_drain_releases_claims_and_restart_completes(self, registry, tmp_path):
        store_path = str(tmp_path / "jobs.sqlite")
        config = _serve_config(tmp_path, job_poll_interval_s=30.0)

        first = start_server_thread(registry, config)
        client = ScoringClient(port=first.port)
        time.sleep(0.3)
        job_id = client.submit_job(GRAPH)["job_id"]
        client.close()
        first.stop(drain=True)

        # The store was closed cleanly and the job survived, unleased.
        with JobStore(store_path) as store:
            record = store.get(job_id)
            assert record.state == "queued"
            assert record.lease_owner is None

        second = start_server_thread(registry, _serve_config(tmp_path))
        client = ScoringClient(port=second.port)
        try:
            result = client.wait_job(job_id, timeout=60)
            assert result["state"] == "done"
            sync = client.score(GRAPH)
            assert result["response"]["result"] == sync["result"]
        finally:
            client.close()
            second.stop()

    def test_drain_answers_admitted_sync_requests(self, registry, tmp_path):
        handle = start_server_thread(registry, _serve_config(tmp_path))
        client = ScoringClient(port=handle.port)
        try:
            response = client.score(GRAPH)
            assert len(response["result"]["scores"]) > 0
        finally:
            client.close()
        handle.stop(drain=True)
        # Idempotent: a second stop on a drained server is a no-op.
        handle.stop()
