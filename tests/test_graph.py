"""Unit tests for the graph substrate (Graph, Group, adjacency transforms, builders)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graph import (
    Graph,
    Group,
    adjacency_matrix,
    graph_from_networkx,
    graph_to_networkx,
    graphsnn_weighted_adjacency,
    k_hop_matrix,
    normalized_adjacency,
    row_normalize,
    union_of_groups,
)
from repro.graph.adjacency import reconstruction_target
from repro.graph.builders import groups_from_components


class TestGroup:
    def test_from_nodes(self):
        group = Group.from_nodes([3, 1, 2])
        assert len(group) == 3
        assert 1 in group and 5 not in group
        assert group.node_tuple() == (1, 2, 3)

    def test_from_path_edges(self):
        group = Group.from_path([0, 1, 2])
        assert group.edges == frozenset({(0, 1), (1, 2)})
        assert group.label == "path"

    def test_from_cycle_edges(self):
        group = Group.from_cycle([0, 1, 2, 3])
        assert (0, 3) in group.edges
        assert len(group.edges) == 4

    def test_from_cycle_too_small(self):
        with pytest.raises(ValueError):
            Group.from_cycle([0, 1])

    def test_edge_outside_nodes_raises(self):
        with pytest.raises(ValueError):
            Group(nodes=frozenset({0, 1}), edges=frozenset({(0, 2)}))

    def test_edges_canonicalised(self):
        group = Group(nodes=frozenset({0, 1}), edges=frozenset({(1, 0)}))
        assert group.edges == frozenset({(0, 1)})

    def test_overlap_and_jaccard(self):
        a = Group.from_nodes([0, 1, 2, 3])
        b = Group.from_nodes([2, 3, 4, 5])
        assert a.overlap(b) == 2
        assert a.jaccard(b) == pytest.approx(2 / 6)

    def test_with_score_and_label_do_not_mutate(self):
        group = Group.from_nodes([0, 1])
        scored = group.with_score(0.7)
        assert group.score is None
        assert scored.score == pytest.approx(0.7)
        assert scored.with_label("x").label == "x"

    def test_iteration_sorted(self):
        assert list(Group.from_nodes([5, 2, 9])) == [2, 5, 9]


class TestGraphContainer:
    def test_basic_statistics(self, tiny_graph):
        stats = tiny_graph.statistics()
        assert stats["nodes"] == 6
        assert stats["edges"] == 6
        assert stats["attributes"] == 2
        assert stats["anomaly_groups"] == 0

    def test_self_loops_dropped_and_duplicates_merged(self):
        graph = Graph(3, [(0, 0), (0, 1), (1, 0), (1, 2)])
        assert graph.n_edges == 2

    def test_out_of_range_edge_raises(self):
        with pytest.raises(ValueError):
            Graph(3, [(0, 5)])

    def test_feature_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            Graph(3, [], features=np.ones((2, 2)))

    def test_group_outside_graph_raises(self):
        with pytest.raises(ValueError):
            Graph(3, [], groups=[Group.from_nodes([7])])

    def test_adjacency_symmetric(self, tiny_graph):
        adjacency = tiny_graph.adjacency()
        assert adjacency == pytest.approx(adjacency.T)
        assert adjacency.sum() == 2 * tiny_graph.n_edges

    def test_adjacency_sparse_matches_dense(self, tiny_graph):
        assert tiny_graph.adjacency(sparse=True).toarray() == pytest.approx(tiny_graph.adjacency())

    def test_neighbors_and_degree(self, tiny_graph):
        assert tiny_graph.neighbors(2) == (0, 1, 3)
        assert tiny_graph.degree(2) == 3
        assert tiny_graph.degree().sum() == 2 * tiny_graph.n_edges

    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(0, 1)
        assert not tiny_graph.has_edge(0, 5)

    def test_subgraph_relabels_nodes(self, tiny_graph):
        sub = tiny_graph.subgraph([2, 3, 4])
        assert sub.n_nodes == 3
        assert sub.n_edges == 2  # edges (2,3) and (3,4)
        assert sub.features == pytest.approx(tiny_graph.features[[2, 3, 4]])

    def test_subgraph_empty_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.subgraph([])

    def test_group_subgraph(self, labelled_graph):
        sub = labelled_graph.group_subgraph(labelled_graph.groups[0])
        assert sub.n_nodes == 4
        assert sub.n_edges == 3

    def test_with_groups_and_features_copy(self, tiny_graph):
        annotated = tiny_graph.with_groups([Group.from_nodes([0, 1])])
        assert annotated.n_groups == 1 and tiny_graph.n_groups == 0
        replaced = tiny_graph.with_features(np.zeros((6, 4)))
        assert replaced.n_features == 4 and tiny_graph.n_features == 2

    def test_add_nodes_and_edges(self, tiny_graph):
        grown = tiny_graph.add_nodes_and_edges(np.ones((2, 2)), [(5, 6), (6, 7)])
        assert grown.n_nodes == 8
        assert grown.has_edge(6, 7)
        assert tiny_graph.n_nodes == 6  # original untouched

    def test_add_nodes_feature_dim_mismatch(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.add_nodes_and_edges(np.ones((1, 5)), [])

    def test_anomaly_node_mask(self, labelled_graph):
        mask = labelled_graph.anomaly_node_mask()
        assert mask.sum() == 4
        assert mask[6] and not mask[0]

    def test_average_group_size(self, labelled_graph, tiny_graph):
        assert labelled_graph.average_group_size() == pytest.approx(4.0)
        assert tiny_graph.average_group_size() == 0.0

    def test_connected_components_whole_graph(self, tiny_graph):
        components = tiny_graph.connected_components()
        assert len(components) == 1
        assert components[0] == set(range(6))

    def test_connected_components_subset(self, tiny_graph):
        components = tiny_graph.connected_components([0, 1, 4, 5])
        assert sorted(len(c) for c in components) == [2, 2]

    def test_bfs_tree_depth_limit(self, tiny_graph):
        parents = tiny_graph.bfs_tree(0, depth=1)
        assert set(parents) == {0, 1, 2}
        assert parents[0] == 0

    def test_shortest_path(self, tiny_graph):
        assert tiny_graph.shortest_path(0, 5) == [0, 2, 3, 4, 5]
        assert tiny_graph.shortest_path(0, 0) == [0]

    def test_shortest_path_cutoff(self, tiny_graph):
        assert tiny_graph.shortest_path(0, 5, cutoff=2) is None

    def test_shortest_path_disconnected(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        assert graph.shortest_path(0, 3) is None

    def test_validate_detects_nan_features(self):
        graph = Graph(2, [(0, 1)], features=np.array([[np.nan], [1.0]]))
        with pytest.raises(ValueError):
            graph.validate()

    def test_validate_passes_on_clean_graph(self, tiny_graph):
        tiny_graph.validate()


class TestAdjacencyTransforms:
    def test_row_normalize_rows_sum_to_one(self):
        matrix = np.array([[1.0, 3.0], [0.0, 0.0]])
        normalized = row_normalize(matrix)
        assert normalized[0].sum() == pytest.approx(1.0)
        assert normalized[1].sum() == pytest.approx(0.0)

    def test_normalized_adjacency_symmetric_and_bounded(self, tiny_graph):
        matrix = normalized_adjacency(tiny_graph)
        assert matrix == pytest.approx(matrix.T)
        eigenvalues = np.linalg.eigvalsh(matrix)
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_normalized_adjacency_no_self_loops(self, tiny_graph):
        with_loops = normalized_adjacency(tiny_graph, add_self_loops=True)
        without = normalized_adjacency(tiny_graph, add_self_loops=False)
        assert with_loops.trace() > 0
        assert without.trace() == pytest.approx(0.0)

    def test_k_hop_matrix_standardised(self, tiny_graph):
        matrix = k_hop_matrix(tiny_graph, 3)
        assert matrix.max() == pytest.approx(1.0)
        assert (matrix >= 0).all()

    def test_k_hop_one_equals_scaled_adjacency(self, tiny_graph):
        assert k_hop_matrix(tiny_graph, 1) == pytest.approx(tiny_graph.adjacency())

    def test_k_hop_invalid_k(self, tiny_graph):
        with pytest.raises(ValueError):
            k_hop_matrix(tiny_graph, 0)

    def test_graphsnn_symmetric_nonnegative_and_on_edges_only(self, tiny_graph):
        weighted = graphsnn_weighted_adjacency(tiny_graph)
        adjacency = tiny_graph.adjacency()
        assert weighted == pytest.approx(weighted.T)
        assert (weighted >= 0).all()
        assert ((weighted > 0) == (adjacency > 0)).all()

    def test_graphsnn_triangle_edges_weighted_higher_than_bridge(self, tiny_graph):
        # Edge (0,1) belongs to a triangle; edge (3,4) is a bridge on the path.
        weighted = graphsnn_weighted_adjacency(tiny_graph, normalize=False)
        assert weighted[0, 1] > weighted[3, 4]

    def test_reconstruction_target_dispatch(self, tiny_graph):
        assert reconstruction_target(tiny_graph, "adjacency") == pytest.approx(adjacency_matrix(tiny_graph))
        assert reconstruction_target(tiny_graph, "k_hop", k=2) == pytest.approx(k_hop_matrix(tiny_graph, 2))
        with pytest.raises(ValueError):
            reconstruction_target(tiny_graph, "k_hop")
        with pytest.raises(ValueError):
            reconstruction_target(tiny_graph, "nonsense")


class TestBuilders:
    def test_networkx_roundtrip(self, tiny_graph):
        nx_graph = graph_to_networkx(tiny_graph)
        back = graph_from_networkx(nx_graph)
        assert back.n_nodes == tiny_graph.n_nodes
        assert set(back.edges) == set(tiny_graph.edges)
        assert back.features == pytest.approx(tiny_graph.features)

    def test_graph_from_networkx_without_features(self):
        nx_graph = nx.path_graph(4)
        graph = graph_from_networkx(nx_graph)
        assert graph.n_features == 1
        assert graph.n_edges == 3

    def test_union_of_groups(self):
        groups = [Group.from_nodes([0, 1]), Group.from_nodes([1, 2, 3])]
        assert union_of_groups(groups) == {0, 1, 2, 3}

    def test_groups_from_components_respects_min_size(self, tiny_graph):
        groups = groups_from_components(tiny_graph, [0, 1, 4], min_size=2)
        assert len(groups) == 1
        assert groups[0].nodes == frozenset({0, 1})

    def test_groups_from_components_includes_internal_edges(self, tiny_graph):
        groups = groups_from_components(tiny_graph, [0, 1, 2], min_size=2)
        assert groups[0].edges == frozenset({(0, 1), (0, 2), (1, 2)})


class TestMultiSourceBFS:
    def test_distances_match_sequential_bfs(self, tiny_graph):
        bfs = tiny_graph.multi_source_bfs(range(tiny_graph.n_nodes))
        for source in range(tiny_graph.n_nodes):
            for target in range(tiny_graph.n_nodes):
                path = tiny_graph.shortest_path(source, target)
                if path is None:
                    assert bfs.dist[source, target] == -1
                else:
                    assert bfs.dist[source, target] == len(path) - 1

    def test_path_reconstruction_matches_shortest_path(self, tiny_graph):
        sources = [0, 3, 5]
        bfs = tiny_graph.multi_source_bfs(sources)
        for row, source in enumerate(sources):
            for target in range(tiny_graph.n_nodes):
                assert bfs.path(row, target) == tiny_graph.shortest_path(source, target)

    def test_depth_bound_limits_exploration(self, tiny_graph):
        bfs = tiny_graph.multi_source_bfs([0], depth=1)
        reached = set(np.flatnonzero(bfs.dist[0] >= 0).tolist())
        assert reached == {0, 1, 2}

    def test_parents_match_bfs_tree(self, tiny_graph):
        bfs = tiny_graph.multi_source_bfs([0, 4], depth=2)
        for row, source in enumerate([0, 4]):
            parents = tiny_graph.bfs_tree(source, 2)
            for node, parent in parents.items():
                assert int(bfs.parent[row, node]) == parent

    def test_discovery_order_is_level_then_parent_then_id(self, tiny_graph):
        bfs = tiny_graph.multi_source_bfs([0])
        order = bfs.order[0]
        dist = bfs.dist[0]
        reached = np.flatnonzero(dist >= 0)
        # Orders are a permutation of 0..k-1 and respect BFS levels.
        assert sorted(order[reached].tolist()) == list(range(reached.size))
        for u in reached:
            for v in reached:
                if dist[u] < dist[v]:
                    assert order[u] < order[v]

    def test_empty_source_list(self, tiny_graph):
        bfs = tiny_graph.multi_source_bfs([])
        assert bfs.dist.shape == (0, tiny_graph.n_nodes)

    def test_source_out_of_range_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.multi_source_bfs([99])

    def test_duplicate_sources_get_identical_rows(self, tiny_graph):
        bfs = tiny_graph.multi_source_bfs([2, 2])
        assert (bfs.dist[0] == bfs.dist[1]).all()
        assert (bfs.parent[0] == bfs.parent[1]).all()
        assert (bfs.order[0] == bfs.order[1]).all()

    def test_depth_bound_masks_parent_and_order(self, tiny_graph):
        bounded = tiny_graph.multi_source_bfs([0], depth=2)
        unbounded = tiny_graph.multi_source_bfs([0])
        beyond = unbounded.dist[0] > 2
        assert (bounded.dist[0][beyond] == -1).all()
        assert (bounded.parent[0][beyond] == -1).all()
        assert (bounded.order[0][beyond] == -1).all()
        within = ~beyond & (unbounded.dist[0] >= 0)
        assert (bounded.dist[0][within] == unbounded.dist[0][within]).all()
        assert (bounded.parent[0][within] == unbounded.parent[0][within]).all()

    def test_k_hop_nodes(self, tiny_graph):
        hops = tiny_graph.k_hop_nodes([0, 5], k=2)
        assert set(hops[0].tolist()) == {0, 1, 2, 3}
        assert set(hops[1].tolist()) == {3, 4, 5}


class TestFingerprint:
    def test_stable_across_equal_graphs(self, tiny_graph):
        edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]
        features = np.arange(12, dtype=float).reshape(6, 2)
        twin = Graph(6, edges, features, name="other-name")
        assert tiny_graph.fingerprint() == twin.fingerprint()

    def test_sensitive_to_topology_and_features(self, tiny_graph):
        extra_edge = Graph(6, list(tiny_graph.edges) + [(0, 5)], tiny_graph.features)
        assert extra_edge.fingerprint() != tiny_graph.fingerprint()
        shifted = tiny_graph.with_features(tiny_graph.features + 1.0)
        assert shifted.fingerprint() != tiny_graph.fingerprint()

    def test_ignores_ground_truth_groups(self, tiny_graph):
        annotated = tiny_graph.with_groups([Group.from_nodes([0, 1, 2])])
        assert annotated.fingerprint() == tiny_graph.fingerprint()


class TestJsonWireFormat:
    def test_roundtrip_preserves_fingerprint(self, tiny_graph):
        import json

        payload = json.loads(json.dumps(tiny_graph.to_json_dict()))
        clone = Graph.from_json_dict(payload)
        assert clone.fingerprint() == tiny_graph.fingerprint()
        assert clone.name == tiny_graph.name
        assert clone.n_edges == tiny_graph.n_edges

    def test_groups_are_not_shipped(self, labelled_graph):
        payload = labelled_graph.to_json_dict()
        assert "groups" not in payload
        assert Graph.from_json_dict(payload).n_groups == 0

    def test_minimal_hand_written_payload(self):
        graph = Graph.from_json_dict({"n_nodes": 3, "edges": [[0, 1], [1, 2]]})
        assert graph.n_nodes == 3 and graph.n_edges == 2
        assert graph.features.shape == (3, 1)  # default all-zeros attribute

    def test_missing_n_nodes_rejected(self):
        with pytest.raises(ValueError, match="n_nodes"):
            Graph.from_json_dict({"edges": [[0, 1]]})
