"""Tests for the observability subsystem (``repro.obs``).

Covers the guarantees the subsystem advertises:

* **Tracer** — nesting/parenting through :mod:`contextvars`, counters
  and attributes, JSONL round-trips, bounded retention, the reusable
  no-op default, and propagation across threads and worker processes.
* **Bit-identity** — ``fit_detect`` with tracing enabled produces
  exactly the result of the untraced run (instrumentation touches no
  RNG), while emitting the expected span names.
* **Stats parity** — the shared :mod:`repro.obs.stats` helpers compute
  exactly what ``ServerMetrics`` and ``ReplaySummary`` computed before
  the refactor (both surfaces now delegate to them).
* **Prometheus rendering** — counter/gauge typing, label escaping, the
  per-model section.
* **Logging** — trace-id correlation in formatted records.
* **Provenance** — record build/append/read round-trip, bit-for-bit
  replay verification, and tamper / wrong-graph detection.
* **CLI** — ``python -m repro.obs summarize|diff|verify``.
"""

from __future__ import annotations

import contextvars
import json
import logging
import threading
from concurrent.futures import ThreadPoolExecutor
from io import StringIO

import numpy as np
import pytest

from repro.core import TPGrGAD, TPGrGADConfig
from repro.datasets import make_example_graph
from repro.gae import MHGAEConfig
from repro.gcl import TPGCLConfig
from repro.graph import Graph
from repro.obs import (
    NULL_TRACER,
    LatencyWindow,
    ProvenanceLog,
    Span,
    Tracer,
    build_record,
    canonical_json,
    get_tracer,
    percentile,
    read_log,
    score_digest,
    set_tracer,
    use_tracer,
    verify_log,
    verify_record,
)
from repro.obs.__main__ import diff_summaries, main as obs_main, summarize_spans
from repro.obs.logging import get_logger, setup_logging
from repro.obs.prometheus import render_prometheus
from repro.obs.tracer import current_span_id, current_trace_id
from repro.sampling import SamplerConfig


def _tiny_config(seed: int = 3) -> TPGrGADConfig:
    return TPGrGADConfig(
        mhgae=MHGAEConfig(epochs=6, hidden_dim=16, embedding_dim=8),
        sampler=SamplerConfig(max_candidates=60, max_anchor_pairs=80),
        tpgcl=TPGCLConfig(epochs=2, hidden_dim=16, embedding_dim=16, batch_size=16),
        max_anchors=12,
        seed=seed,
    )


GRAPH = make_example_graph(seed=5)


# ----------------------------------------------------------------------
class TestTracerCore:
    def test_null_tracer_is_the_default_and_free(self):
        tracer = get_tracer()
        assert tracer is NULL_TRACER
        assert not tracer.enabled
        assert current_trace_id() is None
        handle = tracer.span("anything", attr=1)
        # Reusable singleton handle: no allocation on the disabled path.
        assert tracer.span("other") is handle
        with handle as h:
            h.add("counter")
            h.set("key", "value")
        assert tracer.spans == []

    def test_span_nesting_and_parenting(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("outer") as outer:
                assert current_span_id() == outer.span.span_id
                with tracer.span("inner") as inner:
                    assert inner.span.parent_id == outer.span.span_id
                    with tracer.span("leaf") as leaf:
                        assert leaf.span.parent_id == inner.span.span_id
        spans = {s.name: s for s in tracer.spans}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["leaf"].parent_id == spans["inner"].span_id
        assert all(s.trace_id == tracer.trace_id for s in tracer.spans)
        assert all(s.duration_s >= 0.0 for s in tracer.spans)

    def test_counters_attrs_and_tracer_add(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("work", kind="test") as span:
                span.add("items", 3)
                span.add("items", 2)
                # tracer.add targets the innermost open span in-context.
                tracer.add("cache_hits")
                span.set("note", "hello")
        (span,) = tracer.spans
        assert span.counters == {"items": 5, "cache_hits": 1}
        assert span.attrs == {"kind": "test", "note": "hello"}

    def test_exception_marks_error_and_still_records(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with pytest.raises(RuntimeError):
                with tracer.span("doomed"):
                    raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.attrs["error"] == "RuntimeError"

    def test_max_spans_bounds_memory(self):
        tracer = Tracer(max_spans=3)
        with use_tracer(tracer):
            for i in range(5):
                with tracer.span(f"s{i}"):
                    pass
        assert len(tracer.spans) == 3
        assert tracer.dropped == 2

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("a", k="v") as span:
                span.add("n", 2)
                with tracer.span("b"):
                    pass
        path = tracer.dump_jsonl(str(tmp_path / "trace.jsonl"))
        loaded = Tracer.load_jsonl(path)
        assert [s.to_json_dict() for s in loaded] == [s.to_json_dict() for s in tracer.spans]

    def test_use_tracer_restores_previous(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
            inner = Tracer()
            with use_tracer(inner):
                assert get_tracer() is inner
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_copied_context_carries_span_into_threads(self):
        """The serve executor pattern: copy_context().run on a thread."""
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("batch") as batch:
                context = contextvars.copy_context()

                def work():
                    with tracer.span("scored"):
                        pass

                with ThreadPoolExecutor(max_workers=1) as pool:
                    pool.submit(context.run, work).result()
        spans = {s.name: s for s in tracer.spans}
        assert spans["scored"].parent_id == batch.span.span_id

    def test_plain_threads_start_fresh_chains(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("main-chain"):
                done = threading.Event()

                def work():
                    with tracer.span("other-thread"):
                        pass
                    done.set()

                thread = threading.Thread(target=work)
                thread.start()
                thread.join()
                assert done.is_set()
        spans = {s.name: s for s in tracer.spans}
        assert spans["other-thread"].parent_id is None

    def test_worker_shard_tracer_parents_under_scheduling_span(self):
        """What executor workers do: child tracer with inherited ids."""
        parent = Tracer()
        with use_tracer(parent):
            with parent.span("parallel.fit_detect_many") as sched:
                child = Tracer(trace_id=parent.trace_id, parent_span_id=sched.span.span_id)
                with use_tracer(child):
                    with child.span("parallel.chunk"):
                        pass
                merged = parent.ingest(child.spans)
        assert merged == 1
        spans = {s.name: s for s in parent.spans}
        chunk = spans["parallel.chunk"]
        assert chunk.trace_id == parent.trace_id
        assert chunk.parent_id == spans["parallel.fit_detect_many"].span_id


# ----------------------------------------------------------------------
class TestPipelineInstrumentation:
    def test_traced_fit_detect_is_bit_identical_and_emits_spans(self):
        baseline = TPGrGAD(_tiny_config()).fit_detect(GRAPH)
        tracer = Tracer()
        with use_tracer(tracer):
            traced = TPGrGAD(_tiny_config()).fit_detect(GRAPH)
        assert canonical_json(traced.to_json_dict()) == canonical_json(baseline.to_json_dict())

        names = {s.name for s in tracer.spans}
        assert {
            "pipeline.fit_detect", "stage.anchors", "stage.sampling", "stage.embed",
            "stage.score", "gae.fit", "gae.epoch", "tpgcl.fit", "tpgcl.epoch",
            "tpgcl.augment",
        } <= names
        fit = next(s for s in tracer.spans if s.name == "pipeline.fit_detect")
        assert fit.counters.get("cache_misses") == 1
        assert fit.attrs["n_nodes"] == GRAPH.n_nodes
        gae = next(s for s in tracer.spans if s.name == "gae.fit")
        assert gae.counters["optimizer_steps"] > 0
        assert gae.counters["tape_node_count"] > 0
        tpgcl = next(s for s in tracer.spans if s.name == "tpgcl.fit")
        assert tpgcl.counters["optimizer_steps"] > 0

    def test_detect_only_and_cache_hit_spans(self):
        detector = TPGrGAD(_tiny_config())
        detector.fit_detect(GRAPH)
        tracer = Tracer()
        with use_tracer(tracer):
            detector.detect_only(GRAPH)
            detector.fit_detect(GRAPH)  # stage cache hit
        names = [s.name for s in tracer.spans]
        assert "pipeline.detect_only" in names
        assert "stage.warm_bind" in names and "stage.warm_embed" in names
        cached_fit = [s for s in tracer.spans if s.name == "pipeline.fit_detect"]
        assert cached_fit and cached_fit[0].counters.get("cache_hits") == 1

    def test_stream_tick_spans(self):
        from repro.datasets.stream import make_event_stream
        from repro.stream import IncrementalTPGrGAD, StreamConfig

        stream = make_event_stream(dataset="example", seed=0, n_ticks=2)
        detector = IncrementalTPGrGAD(
            stream.base, _tiny_config(), StreamConfig(refit_policy="never")
        )
        tracer = Tracer()
        with use_tracer(tracer):
            for delta in stream.deltas:
                detector.update(delta)
        ticks = [s for s in tracer.spans if s.name == "stream.tick"]
        assert len(ticks) == len(stream.deltas)
        assert all("mode" in s.attrs and "dirty_fraction" in s.attrs for s in ticks)
        assert all(s.counters.get("n_touched", 0) >= 0 for s in ticks)

    def test_parallel_workers_merge_shards_into_parent_trace(self):
        from repro.parallel import ParallelExecutor

        graphs = [make_example_graph(seed=s) for s in (5, 6)]
        executor = ParallelExecutor(_tiny_config(), n_workers=2, chunk_size=1)
        tracer = Tracer()
        with use_tracer(tracer):
            results = executor.fit_detect_many(graphs)
        assert len(results) == 2
        spans = tracer.spans
        sched = next(s for s in spans if s.name == "parallel.fit_detect_many")
        chunks = [s for s in spans if s.name == "parallel.chunk"]
        assert len(chunks) == 2
        assert all(c.trace_id == tracer.trace_id for c in chunks)
        assert all(c.parent_id == sched.span_id for c in chunks)
        # Worker pipeline spans came along inside the shard files.
        assert sum(1 for s in spans if s.name == "pipeline.fit_detect") == 2


# ----------------------------------------------------------------------
class TestStatsParity:
    def test_percentile_matches_numpy_and_empty_convention(self):
        rng = np.random.default_rng(0)
        values = rng.exponential(0.05, size=257).tolist()
        for q in (50, 90, 95, 99):
            assert percentile(values, q) == float(np.percentile(values, q))
        assert percentile([], 95) == 0.0

    def test_latency_window_matches_seed_server_metrics_math(self):
        """Byte-for-byte what ServerMetrics computed before the refactor."""
        rng = np.random.default_rng(1)
        window = LatencyWindow(maxlen=64)
        samples = []
        t = 100.0
        for latency in rng.exponential(0.02, size=100):
            t += float(rng.uniform(0.001, 0.05))
            window.record(float(latency), at=t)
            samples.append((t, float(latency)))
        samples = samples[-64:]  # the seed's deque(maxlen=...) behaviour

        values = [s for _, s in samples]
        expected = {
            "p50_latency_ms": round(float(np.percentile(values, 50)) * 1e3, 3),
            "p95_latency_ms": round(float(np.percentile(values, 95)) * 1e3, 3),
        }
        assert window.percentiles_ms((50, 95)) == expected

        now = t + 0.5
        expected_qps = len(samples) / max(now - samples[0][0], 1e-9)
        assert window.window_qps(now) == expected_qps

    def test_window_qps_fewer_than_two_samples_is_zero(self):
        window = LatencyWindow()
        assert window.window_qps(10.0) == 0.0
        window.record(0.01, at=1.0)
        assert window.window_qps(10.0) == 0.0
        window.record(0.01, at=2.0)
        assert window.window_qps(10.0) > 0.0

    def test_replay_summary_percentile_delegates_to_shared_helper(self):
        from repro.stream.replay import ReplaySummary

        values = [0.4, 0.1, 0.25, 0.9, 0.02]
        assert ReplaySummary._percentile(values, 95) == percentile(values, 95)
        assert ReplaySummary._percentile([], 50) == 0.0

    def test_server_metrics_uses_shared_window(self):
        from repro.serve.metrics import ServerMetrics

        metrics = ServerMetrics(latency_window=8)
        assert isinstance(metrics._latencies, LatencyWindow)
        for latency in (0.010, 0.020, 0.030):
            metrics.record_scored(latency)
            metrics.record_admitted()
        snap = metrics.snapshot()
        assert snap["p50_latency_ms"] == round(float(np.percentile([10.0, 20.0, 30.0], 50)), 3)
        assert snap["scored_total"] == 3


# ----------------------------------------------------------------------
class TestPrometheus:
    SNAPSHOT = {
        "uptime_seconds": 12.5,
        "requests_total": 7,
        "scored_total": 6,
        "responses_by_status": {200: 6, 429: 1},
        "batch_size_histogram": {1: 2, 4: 1},
        "p50_latency_ms": 4.2,
        "queue": {"depth": 0, "capacity": 128},
        "models": {
            "fraud": {
                "version": 3,
                "swap_count": 2,
                "config_hash": "abcdef0123456789ffff",
                "requests_served": 5,
                "tape_nodes_total": 123,
                "cache_evictions": 1,
                "fit_cache": {"hits": 2, "misses": 1, "evictions": 1, "currsize": 1},
            }
        },
    }

    def test_typing_counters_vs_gauges(self):
        text = render_prometheus(self.SNAPSHOT)
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 7" in text
        assert "# TYPE repro_uptime_seconds gauge" in text
        assert "repro_uptime_seconds 12.5" in text

    def test_labelled_families(self):
        text = render_prometheus(self.SNAPSHOT)
        assert 'repro_responses_by_status_total{status="200"} 6' in text
        assert 'repro_responses_by_status_total{status="429"} 1' in text
        assert 'repro_batch_size_count{size="4"} 1' in text
        assert "repro_queue_depth 0" in text

    def test_model_section(self):
        text = render_prometheus(self.SNAPSHOT)
        assert 'repro_model_info{model="fraud",version="3",config_hash="abcdef012345"} 1' in text
        assert 'repro_model_swap_count{model="fraud"} 2' in text
        assert 'repro_model_requests_served{model="fraud"} 5' in text
        assert 'repro_model_tape_nodes_total{model="fraud"} 123' in text
        assert 'repro_model_cache_evictions{model="fraud"} 1' in text
        assert 'repro_model_fit_cache_hits{model="fraud"} 2' in text

    def test_label_escaping(self):
        text = render_prometheus({"models": {'we"ird\\name\n': {"version": 1}}})
        assert '\\"' in text and "\\\\" in text and "\\n" in text

    def test_each_family_typed_once(self):
        text = render_prometheus(self.SNAPSHOT)
        type_lines = [l for l in text.splitlines() if l.startswith("# TYPE")]
        assert len(type_lines) == len(set(type_lines))


# ----------------------------------------------------------------------
class TestLogging:
    def test_trace_id_correlation(self):
        stream = StringIO()
        setup_logging(stream=stream)
        try:
            log = get_logger("test")
            log.info("outside")
            tracer = Tracer()
            with use_tracer(tracer):
                with tracer.span("op"):
                    log.info("inside")
            output = stream.getvalue()
        finally:
            setup_logging()  # restore the default stderr handler
        lines = output.strip().splitlines()
        assert "[trace=-] outside" in lines[0]
        assert f"[trace={tracer.trace_id}] inside" in lines[1]
        assert "repro.test" in lines[1]

    def test_setup_is_idempotent(self):
        logger = setup_logging()
        logger_again = setup_logging()
        assert logger is logger_again
        marked = [h for h in logger.handlers if getattr(h, "_repro_obs_handler", False)]
        assert len(marked) == 1

    def test_get_logger_namespacing(self):
        assert get_logger("serve").name == "repro.serve"
        assert get_logger("repro.parallel").name == "repro.parallel"


# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fitted(tmp_path_factory):
    """One fitted artifact plus its detection result on GRAPH."""
    detector = TPGrGAD(_tiny_config())
    result = detector.fit_detect(GRAPH)
    path = detector.save(tmp_path_factory.mktemp("obs-artifact") / "model")
    warm = detector.detect_only(GRAPH)
    return {"path": str(path), "detector": detector, "result": result, "warm": warm}


class TestProvenance:
    def _record(self, fitted, graph=GRAPH, **overrides):
        kwargs = dict(
            model="m",
            version=1,
            config_hash=fitted["detector"].config.content_hash(),
            graph_fingerprint=graph.fingerprint(),
            result_json=fitted["warm"].to_json_dict(),
            graph=graph,
        )
        kwargs.update(overrides)
        return build_record(**kwargs)

    def test_score_digest_is_canonical(self, fitted):
        result_json = fitted["warm"].to_json_dict()
        assert score_digest(result_json) == score_digest(json.loads(canonical_json(result_json)))

    def test_log_append_read_roundtrip(self, fitted, tmp_path):
        path = tmp_path / "prov.jsonl"
        with ProvenanceLog(path) as log:
            first = log.append(self._record(fitted))
            log.append(self._record(fitted))
            assert log.appended == 2
        records = read_log(path)
        assert len(records) == 2
        assert records[0]["record_id"] == first["record_id"]
        assert records[0]["schema"] == 1
        assert records[0]["n_candidates"] == fitted["warm"].n_candidates

    def test_verify_record_replays_bit_for_bit(self, fitted):
        outcome = verify_record(self._record(fitted), fitted["path"])
        assert outcome.ok, outcome.describe()
        assert outcome.replayed_digest == score_digest(fitted["warm"].to_json_dict())

    def test_verify_uses_supplied_graph_when_not_embedded(self, fitted):
        record = self._record(fitted, graph=GRAPH)
        del record["graph"]
        assert not verify_record(record, fitted["path"]).ok  # no graph at all
        assert verify_record(record, fitted["path"], graph=GRAPH).ok

    def test_verify_detects_tampered_scores(self, fitted):
        record = self._record(fitted)
        record["score_digest"] = "0" * 32
        outcome = verify_record(record, fitted["path"])
        assert not outcome.ok and "digest" in outcome.reason

    def test_verify_detects_wrong_graph(self, fitted):
        record = self._record(fitted)
        outcome = verify_record(record, fitted["path"], graph=make_example_graph(seed=99))
        assert not outcome.ok and "fingerprint" in outcome.reason

    def test_verify_detects_wrong_artifact_config(self, fitted, tmp_path):
        other = TPGrGAD(_tiny_config(seed=4))
        other.fit_detect(GRAPH)
        other_path = other.save(tmp_path / "other")
        outcome = verify_record(self._record(fitted), other_path)
        assert not outcome.ok and "config_hash" in outcome.reason

    def test_verify_log_batches(self, fitted, tmp_path):
        path = tmp_path / "prov.jsonl"
        with ProvenanceLog(path) as log:
            log.append(self._record(fitted))
            bad = self._record(fitted)
            bad["score_digest"] = "f" * 32
            log.append(bad)
        outcomes = verify_log(path, fitted["path"])
        assert [o.ok for o in outcomes] == [True, False]

    def test_records_carry_trace_context(self, fitted):
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("serve.score_group") as span:
                record = self._record(fitted)
        assert record["trace_id"] == tracer.trace_id
        assert record["span_id"] == span.span.span_id


# ----------------------------------------------------------------------
class TestCLI:
    def _make_trace(self, path):
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("pipeline.fit_detect") as span:
                span.add("cache_misses")
                with tracer.span("gae.fit"):
                    pass
        tracer.dump_jsonl(str(path))
        return tracer

    def test_summarize(self, tmp_path, capsys):
        tracer = self._make_trace(tmp_path / "t.jsonl")
        assert obs_main(["summarize", str(tmp_path / "t.jsonl")]) == 0
        out = capsys.readouterr().out
        assert tracer.trace_id in out
        assert "pipeline.fit_detect" in out and "gae.fit" in out
        assert "cache_misses=1" in out
        assert "2 spans" in out

    def test_diff(self, tmp_path, capsys):
        self._make_trace(tmp_path / "a.jsonl")
        self._make_trace(tmp_path / "b.jsonl")
        assert obs_main(["diff", str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "pipeline.fit_detect" in out and "delta" in out.splitlines()[0]

    def test_verify_command_exit_codes(self, fitted, tmp_path, capsys):
        log_path = tmp_path / "prov.jsonl"
        record = build_record(
            model="m", version=1,
            config_hash=fitted["detector"].config.content_hash(),
            graph_fingerprint=GRAPH.fingerprint(),
            result_json=fitted["warm"].to_json_dict(),
            graph=GRAPH,
        )
        with ProvenanceLog(log_path) as log:
            log.append(record)
        assert obs_main(["verify", "--log", str(log_path), "--artifact", fitted["path"]]) == 0
        assert "1/1 records verified" in capsys.readouterr().out

        tampered = dict(record, score_digest="0" * 32)
        with ProvenanceLog(log_path) as log:
            log.append(tampered)
        assert obs_main(["verify", "--log", str(log_path), "--artifact", fitted["path"]]) == 1

    def test_summarize_counts_orphan_roots(self):
        spans = [
            Span("root", "t", "s1", None, 0.0, duration_s=1.0),
            Span("orphan", "t", "s2", "unknown-parent", 0.0, duration_s=1.0),
            Span("child", "t", "s3", "s1", 0.0, duration_s=0.5),
        ]
        rows = {r["name"]: r for r in summarize_spans(spans)}
        # Both the true root and the orphan count toward root wall time.
        assert rows["root"]["share_pct"] == pytest.approx(50.0)
        assert rows["child"]["share_pct"] == pytest.approx(25.0)

    def test_diff_flags_new_and_vanished_stages(self):
        a = summarize_spans([Span("a-only", "t", "s1", None, 0.0, duration_s=1.0)])
        b = summarize_spans([Span("b-only", "t", "s2", None, 0.0, duration_s=2.0)])
        rows = {r["name"]: r for r in diff_summaries(a, b)}
        assert rows["a-only"]["status"] == "only-in-a"
        assert rows["b-only"]["status"] == "only-in-b"
        assert rows["b-only"]["delta_pct"] == float("inf")
