"""Unit tests for the dataset generators and injection machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    GroupSpec,
    available_datasets,
    inject_groups,
    load_dataset,
    make_amlpublic,
    make_citeseer_group,
    make_cora_group,
    make_ethereum_tsgn,
    make_example_graph,
    make_simml,
    random_transaction_background,
    sbm_citation_background,
)
from repro.datasets.injection import assign_group_features, split_boundary_and_deep
from repro.augment.patterns import pattern_statistics


GENERATORS = {
    "simml": make_simml,
    "cora": make_cora_group,
    "citeseer": make_citeseer_group,
    "amlpublic": make_amlpublic,
    "ethereum": make_ethereum_tsgn,
}


class TestBackgrounds:
    def test_transaction_background_connected_enough(self, rng):
        graph = random_transaction_background(100, 150, 8, rng)
        graph.validate()
        assert graph.n_nodes == 100
        assert graph.n_edges >= 99
        assert (graph.features >= 0).all()

    def test_transaction_background_edge_floor(self, rng):
        graph = random_transaction_background(50, 10, 4, rng)
        assert graph.n_edges >= 49  # backbone guarantees near-connectivity

    def test_sbm_background_features_binaryish(self, rng):
        graph = sbm_citation_background(80, 4, 4.0, 50, rng)
        graph.validate()
        assert set(np.unique(graph.features)) <= {0.0, 1.0}

    def test_sbm_homophily_creates_communities(self, rng):
        graph = sbm_citation_background(120, 3, 6.0, 20, rng, homophily=0.95)
        assert graph.n_edges > 100


class TestInjection:
    def test_group_spec_validation(self):
        with pytest.raises(ValueError):
            GroupSpec(pattern="blob", size=4)
        with pytest.raises(ValueError):
            GroupSpec(pattern="cycle", size=2)
        with pytest.raises(ValueError):
            GroupSpec(pattern="path", size=3, n_attachments=0)

    def test_split_boundary_and_deep_path(self):
        nodes = [10, 11, 12, 13, 14]
        edges = [(10, 11), (11, 12), (12, 13), (13, 14)]
        boundary, deep = split_boundary_and_deep(nodes, edges, attachment_members=[10])
        assert 10 in boundary and 11 in boundary
        assert {12, 13, 14} == deep

    def test_split_boundary_never_empty(self):
        nodes = [0, 1, 2]
        edges = [(0, 1), (1, 2)]
        boundary, deep = split_boundary_and_deep(nodes, edges, attachment_members=[1], deep_distance=0)
        assert boundary  # fallback keeps at least one boundary member

    def test_assign_group_features_shapes_and_locality(self, rng):
        nodes = list(range(5))
        edges = [(0, 1), (1, 2), (2, 3), (3, 4)]
        anchor = np.zeros(6)
        features = assign_group_features(nodes, edges, [0], anchor, rng, attribute_shift=1.0, attribute_noise=0.01)
        assert features.shape == (5, 6)
        # Deep members (2, 3, 4) should be closer to their neighbours than
        # boundary members are to each other on average.
        deep_gap = np.linalg.norm(features[3] - features[2])
        boundary_gap = np.linalg.norm(features[0] - anchor)
        assert deep_gap < boundary_gap

    def test_inject_groups_grows_graph_and_annotates(self, rng):
        background = sbm_citation_background(40, 2, 3.0, 10, rng)
        specs = [GroupSpec("path", 4), GroupSpec("cycle", 5), GroupSpec("star", 4)]
        graph = inject_groups(background, specs, rng, name="injected")
        graph.validate()
        assert graph.n_nodes == 40 + 13
        assert graph.n_groups == 3
        assert {g.label for g in graph.groups} == {"path", "cycle", "tree"}
        # Every group node index refers to a newly added node.
        for group in graph.groups:
            assert min(group.nodes) >= 40

    def test_injected_groups_attached_to_background(self, rng):
        background = sbm_citation_background(30, 2, 3.0, 8, rng)
        graph = inject_groups(background, [GroupSpec("path", 5, n_attachments=2)], rng)
        group_nodes = set(graph.groups[0].nodes)
        crossing = [e for e in graph.edges if (e[0] in group_nodes) != (e[1] in group_nodes)]
        assert len(crossing) >= 1


class TestGenerators:
    @pytest.mark.parametrize("name, generator", list(GENERATORS.items()))
    def test_generator_produces_valid_annotated_graph(self, name, generator):
        graph = generator(scale=0.08, seed=3)
        graph.validate()
        assert graph.n_groups >= 3
        assert graph.anomaly_node_mask().sum() > 0
        assert graph.average_group_size() >= 2.0

    @pytest.mark.parametrize("name, generator", list(GENERATORS.items()))
    def test_generator_deterministic_for_seed(self, name, generator):
        a = generator(scale=0.08, seed=11)
        b = generator(scale=0.08, seed=11)
        assert a.n_nodes == b.n_nodes
        assert a.edges == b.edges
        assert a.features == pytest.approx(b.features)

    @pytest.mark.parametrize("name, generator", list(GENERATORS.items()))
    def test_generator_seed_changes_output(self, name, generator):
        a = generator(scale=0.08, seed=1)
        b = generator(scale=0.08, seed=2)
        assert a.edges != b.edges

    @pytest.mark.parametrize("name, generator", list(GENERATORS.items()))
    def test_scale_increases_size(self, name, generator):
        small = generator(scale=0.06, seed=0)
        large = generator(scale=0.2, seed=0)
        assert large.n_nodes > small.n_nodes

    def test_invalid_scale_raises(self):
        for generator in GENERATORS.values():
            with pytest.raises(ValueError):
                generator(scale=0.0)

    def test_simml_group_sizes_near_published_average(self):
        graph = make_simml(scale=0.2, seed=0)
        assert 3.0 <= graph.average_group_size() <= 4.5

    def test_amlpublic_dominated_by_paths(self):
        graph = make_amlpublic(scale=0.1, seed=0)
        labels = [g.label for g in graph.groups]
        assert labels.count("path") >= len(labels) - 1

    def test_ethereum_pattern_mix(self):
        graph = make_ethereum_tsgn(scale=0.3, seed=0)
        counts = pattern_statistics(graph)
        assert counts["tree"] >= 1 and counts["cycle"] >= 1
        assert counts["tree"] + counts["cycle"] > counts["path"]

    def test_citation_attribute_cap_applies_when_scaled(self):
        graph = make_cora_group(scale=0.1, seed=0, feature_cap=64)
        assert graph.n_features == 64

    def test_example_graph_has_three_pattern_groups(self, example_graph):
        assert example_graph.n_groups == 3
        assert {g.label for g in example_graph.groups} == {"path", "tree", "cycle"}


class TestRegistry:
    def test_available_datasets(self):
        names = available_datasets()
        assert "simml" in names and "example" in names
        assert len(names) == 6

    @pytest.mark.parametrize("alias", ["simML", "Cora-g", "CiteSeer-g", "AMLP", "Eth", "ethereum"])
    def test_aliases_resolve(self, alias):
        graph = load_dataset(alias, scale=0.06, seed=0)
        assert graph.n_nodes > 0

    def test_example_via_registry(self):
        graph = load_dataset("example")
        assert graph.name == "example"

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("imaginary")
