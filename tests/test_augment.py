"""Unit tests for topology-pattern search and the PPA/PBA/ND/ER/FM augmentations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.augment import (
    EdgeRemoving,
    FeatureMasking,
    NodeDropping,
    PatternBreakingAugmentation,
    PatternPreservingAugmentation,
    classify_group_pattern,
    find_topology_patterns,
    get_augmentation,
)
from repro.augment.patterns import pattern_statistics
from repro.augment.topology import make_views
from repro.graph import Graph


def path_graph(n: int = 5) -> Graph:
    features = np.arange(n * 2, dtype=float).reshape(n, 2)
    return Graph(n, [(i, i + 1) for i in range(n - 1)], features)


def star_graph(leaves: int = 4) -> Graph:
    features = np.ones((leaves + 1, 3))
    return Graph(leaves + 1, [(0, i) for i in range(1, leaves + 1)], features)


def cycle_graph(n: int = 6) -> Graph:
    features = np.ones((n, 2))
    return Graph(n, [(i, (i + 1) % n) for i in range(n)], features)


class TestPatternSearch:
    def test_path_detected(self):
        patterns = find_topology_patterns(path_graph())
        assert patterns.paths and not patterns.cycles and not patterns.trees
        assert len(patterns.paths[0]) == 5

    def test_star_detected_as_tree(self):
        patterns = find_topology_patterns(star_graph())
        assert patterns.trees
        assert patterns.trees[0]["root"] == 0

    def test_cycle_detected(self):
        patterns = find_topology_patterns(cycle_graph())
        assert patterns.cycles
        assert len(patterns.cycles[0]) == 6

    def test_counts_and_empty(self):
        assert find_topology_patterns(path_graph()).counts()["path"] == 1
        lonely = Graph(2, [], np.zeros((2, 1)))
        assert find_topology_patterns(lonely).is_empty

    def test_classify_precedence(self):
        assert classify_group_pattern(cycle_graph()) == "cycle"
        assert classify_group_pattern(star_graph()) == "tree"
        assert classify_group_pattern(path_graph()) == "path"

    def test_pattern_statistics_on_annotated_graph(self, example_graph):
        counts = pattern_statistics(example_graph)
        assert counts["total"] == example_graph.n_groups
        assert counts["path"] + counts["tree"] + counts["cycle"] == counts["total"]


class TestPatternBreaking:
    def test_pba_drops_path_middle(self, rng):
        graph = path_graph(5)
        broken = PatternBreakingAugmentation()(graph, rng)
        assert broken.n_nodes == 4  # the middle node is gone

    def test_pba_drops_tree_root(self, rng):
        graph = star_graph(4)
        broken = PatternBreakingAugmentation()(graph, rng)
        # Removing the hub leaves isolated leaves: no edges remain.
        assert broken.n_edges == 0

    def test_pba_breaks_cycle(self, rng):
        graph = cycle_graph(6)
        broken = PatternBreakingAugmentation()(graph, rng)
        assert 2 <= broken.n_nodes < 6
        assert classify_group_pattern(broken) != "cycle"

    def test_pba_on_patternless_graph_drops_a_node(self, rng):
        graph = Graph(3, [], np.zeros((3, 2)))
        assert PatternBreakingAugmentation()(graph, rng).n_nodes == 2

    def test_pba_never_returns_tiny_graph(self, rng):
        graph = Graph(2, [(0, 1)], np.zeros((2, 2)))
        assert PatternBreakingAugmentation()(graph, rng).n_nodes >= 2


class TestPatternPreserving:
    def test_ppa_extends_path(self, rng):
        graph = path_graph(5)
        extended = PatternPreservingAugmentation()(graph, rng)
        assert extended.n_nodes == 6
        assert classify_group_pattern(extended) == "path"

    def test_ppa_adds_child_to_tree_root(self, rng):
        graph = star_graph(4)
        extended = PatternPreservingAugmentation()(graph, rng)
        # The star contains both a tree pattern (hub + leaves) and a path
        # pattern (leaf-hub-leaf), so PPA may extend both.
        assert extended.n_nodes >= 6
        assert extended.degree(0) == 5  # hub gained exactly one child

    def test_ppa_preserves_cycle(self, rng):
        graph = cycle_graph(6)
        extended = PatternPreservingAugmentation()(graph, rng)
        assert extended.n_nodes > 6
        assert classify_group_pattern(extended) == "cycle"

    def test_ppa_new_node_attributes_are_pattern_average(self, rng):
        graph = path_graph(5)
        extended = PatternPreservingAugmentation()(graph, rng)
        assert extended.features[-1] == pytest.approx(graph.features.mean(axis=0))

    def test_ppa_identity_on_patternless_graph(self, rng):
        graph = Graph(2, [], np.zeros((2, 2)))
        assert PatternPreservingAugmentation()(graph, rng).n_nodes == 2

    def test_make_views_returns_pair(self, rng):
        positive, negative = make_views(path_graph(5), rng)
        assert positive.n_nodes > negative.n_nodes


class TestBaselineAugmentations:
    def test_node_dropping_reduces_nodes(self, rng):
        graph = path_graph(6)
        dropped = NodeDropping(rate=0.3)(graph, rng)
        assert dropped.n_nodes < 6

    def test_node_dropping_keeps_minimum(self, rng):
        graph = Graph(2, [(0, 1)], np.zeros((2, 1)))
        assert NodeDropping(rate=0.9)(graph, rng).n_nodes == 2

    def test_edge_removing_reduces_edges_keeps_nodes(self, rng):
        graph = cycle_graph(6)
        removed = EdgeRemoving(rate=0.3)(graph, rng)
        assert removed.n_nodes == 6
        assert removed.n_edges < 6

    def test_feature_masking_zeroes_columns(self, rng):
        graph = path_graph(5)
        masked = FeatureMasking(rate=0.5)(graph, rng)
        zero_columns = (masked.features == 0).all(axis=0)
        assert zero_columns.any()
        assert masked.n_edges == graph.n_edges

    @pytest.mark.parametrize("name", ["PPA", "PBA", "ND", "ER", "FM"])
    def test_registry_resolves(self, name):
        assert get_augmentation(name).name == name

    def test_registry_unknown_raises(self):
        with pytest.raises(KeyError):
            get_augmentation("XYZ")

    @pytest.mark.parametrize("rate", [0.0, 1.0])
    def test_invalid_rates_raise(self, rate):
        with pytest.raises(ValueError):
            NodeDropping(rate=rate)
        with pytest.raises(ValueError):
            EdgeRemoving(rate=rate)
        with pytest.raises(ValueError):
            FeatureMasking(rate=rate)
