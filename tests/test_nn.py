"""Unit tests for layers, modules and optimizers (repro.nn)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dropout,
    GCNConv,
    GraphSNNConv,
    InnerProductDecoder,
    Linear,
    MLP,
    Module,
    Parameter,
    SGD,
    Sequential,
    glorot_uniform,
    uniform,
    zeros,
)
from repro.tensor import Tensor


class TestInitializers:
    def test_glorot_bounds(self, rng):
        weights = glorot_uniform((50, 60), rng)
        limit = np.sqrt(6.0 / 110)
        assert weights.shape == (50, 60)
        assert np.abs(weights).max() <= limit

    def test_uniform_range(self, rng):
        weights = uniform((100,), rng, low=-0.1, high=0.1)
        assert np.abs(weights).max() <= 0.1

    def test_zeros(self):
        assert zeros((3, 2)).sum() == 0.0


class TestModule:
    def test_parameter_is_tensor_with_grad(self):
        parameter = Parameter(np.ones(3))
        assert isinstance(parameter, Tensor)
        assert parameter.requires_grad

    def test_named_parameters_nested(self, rng):
        mlp = MLP([4, 8, 2], rng)
        names = [name for name, _ in mlp.named_parameters()]
        assert "linears.0.weight" in names
        assert "linears.1.bias" in names
        assert len(names) == 4

    def test_num_parameters(self, rng):
        linear = Linear(4, 3, rng)
        assert linear.num_parameters() == 4 * 3 + 3

    def test_state_dict_roundtrip(self, rng):
        source = MLP([3, 5, 2], rng)
        target = MLP([3, 5, 2], np.random.default_rng(99))
        target.load_state_dict(source.state_dict())
        inputs = Tensor(np.random.default_rng(3).normal(size=(4, 3)))
        assert target(inputs).numpy() == pytest.approx(source(inputs).numpy())

    def test_state_dict_mismatch_raises(self, rng):
        source = MLP([3, 5, 2], rng)
        target = MLP([3, 4, 2], rng)
        with pytest.raises((KeyError, ValueError)):
            target.load_state_dict(source.state_dict())

    def test_train_eval_propagates(self, rng):
        model = Sequential(Linear(2, 2, rng), Dropout(0.5, rng))
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_zero_grad_clears_all(self, rng):
        model = MLP([2, 3, 1], rng)
        loss = model(Tensor(np.ones((2, 2)))).sum()
        loss.backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestLinearAndMLP:
    def test_linear_forward_shape(self, rng):
        layer = Linear(4, 7, rng)
        assert layer(Tensor(np.ones((5, 4)))).shape == (5, 7)

    def test_linear_no_bias(self, rng):
        layer = Linear(3, 2, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linear_invalid_dims(self, rng):
        with pytest.raises(ValueError):
            Linear(0, 3, rng)

    def test_mlp_needs_two_dims(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_mlp_output_activation(self, rng):
        mlp = MLP([3, 4, 2], rng, output_activation="sigmoid")
        outputs = mlp(Tensor(np.random.default_rng(0).normal(size=(6, 3)))).numpy()
        assert (outputs >= 0).all() and (outputs <= 1).all()

    def test_mlp_unknown_activation_raises(self, rng):
        with pytest.raises(ValueError):
            MLP([3, 2], rng, activation="swishish")

    def test_mlp_trains_to_fit_linear_function(self, rng):
        mlp = MLP([2, 16, 1], rng)
        optimizer = Adam(mlp.parameters(), lr=0.01)
        inputs = Tensor(rng.normal(size=(32, 2)))
        targets = Tensor(inputs.numpy()[:, :1] * 3.0 - inputs.numpy()[:, 1:] * 0.5)
        first_loss = None
        for _ in range(200):
            optimizer.zero_grad()
            loss = ((mlp(inputs) - targets) ** 2).mean()
            loss.backward()
            optimizer.step()
            if first_loss is None:
                first_loss = loss.item()
        assert loss.item() < first_loss * 0.05


class TestGraphLayers:
    def test_gcn_forward_shape(self, rng, tiny_graph):
        layer = GCNConv(2, 5, rng)
        out = layer(Tensor(tiny_graph.features), np.eye(6))
        assert out.shape == (6, 5)

    def test_gcn_identity_propagation_equals_linear_relu(self, rng):
        layer = GCNConv(3, 4, rng, activation="relu")
        inputs = np.random.default_rng(1).normal(size=(5, 3))
        out = layer(Tensor(inputs), np.eye(5)).numpy()
        manual = np.maximum(inputs @ layer.linear.weight.numpy() + layer.linear.bias.numpy(), 0.0)
        assert out == pytest.approx(manual)

    def test_gcn_propagation_mixes_neighbors(self, rng):
        layer = GCNConv(2, 2, rng, activation=None)
        propagation = np.array([[0.0, 1.0], [1.0, 0.0]])
        inputs = np.array([[1.0, 0.0], [0.0, 1.0]])
        out = layer(Tensor(inputs), propagation).numpy()
        swapped = layer(Tensor(inputs[::-1]), np.eye(2)).numpy()
        assert out == pytest.approx(swapped)

    def test_graphsnn_forward_shape(self, rng):
        layer = GraphSNNConv(3, 6, rng)
        weighted = np.ones((4, 4)) - np.eye(4)
        assert layer(Tensor(np.ones((4, 3))), weighted).shape == (4, 6)

    def test_inner_product_decoder_symmetric_and_bounded(self):
        decoder = InnerProductDecoder()
        z = Tensor(np.random.default_rng(0).normal(size=(5, 3)))
        out = decoder(z).numpy()
        assert out.shape == (5, 5)
        assert out == pytest.approx(out.T)
        assert (out > 0).all() and (out < 1).all()

    def test_inner_product_decoder_logits_mode(self):
        decoder = InnerProductDecoder(apply_sigmoid=False)
        z = Tensor(np.eye(3) * 10.0)
        assert decoder(z).numpy().max() == pytest.approx(100.0)

    def test_dropout_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)

    def test_sequential_applies_in_order(self, rng):
        model = Sequential(Linear(2, 3, rng), Linear(3, 1, rng))
        assert model(Tensor(np.ones((4, 2)))).shape == (4, 1)


class TestOptimizers:
    def _quadratic_step(self, optimizer_factory):
        parameter = Parameter(np.array([5.0]))
        optimizer = optimizer_factory([parameter])
        for _ in range(100):
            optimizer.zero_grad()
            loss = (parameter * parameter).sum()
            loss.backward()
            optimizer.step()
        return abs(parameter.data[0])

    def test_sgd_converges_on_quadratic(self):
        assert self._quadratic_step(lambda p: SGD(p, lr=0.1)) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self._quadratic_step(lambda p: SGD(p, lr=0.05, momentum=0.9)) < 5e-2

    def test_adam_converges_on_quadratic(self):
        assert self._quadratic_step(lambda p: Adam(p, lr=0.1)) < 5e-2

    def test_weight_decay_shrinks_parameters(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.1, weight_decay=0.5)
        optimizer.zero_grad()
        (parameter * 0.0).sum().backward()
        optimizer.step()
        assert abs(parameter.data[0]) < 1.0

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)

    def test_step_skips_parameters_without_grad(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = Adam([parameter], lr=0.1)
        optimizer.step()  # no gradient accumulated yet; must not raise
        assert parameter.data[0] == pytest.approx(1.0)
