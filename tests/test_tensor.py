"""Unit tests for the autodiff engine (repro.tensor)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F, is_grad_enabled, no_grad


def numeric_gradient(fn, value: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued function of an array."""
    gradient = np.zeros_like(value, dtype=np.float64)
    flat = value.reshape(-1)
    for index in range(flat.size):
        plus, minus = value.copy().reshape(-1), value.copy().reshape(-1)
        plus[index] += eps
        minus[index] -= eps
        gradient.reshape(-1)[index] = (fn(plus.reshape(value.shape)) - fn(minus.reshape(value.shape))) / (2 * eps)
    return gradient


class TestTensorBasics:
    def test_construction_from_list(self):
        tensor = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert tensor.shape == (2, 2)
        assert tensor.data.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert Tensor([1.0]).requires_grad is False

    def test_item_scalar(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)

    def test_item_non_scalar_raises(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).backward()

    def test_detach_shares_data_but_no_grad(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        detached = tensor.detach()
        assert detached.requires_grad is False
        assert np.shares_memory(detached.data, tensor.data)

    def test_len_and_size(self):
        tensor = Tensor(np.zeros((3, 4)))
        assert len(tensor) == 3
        assert tensor.size == 12
        assert tensor.ndim == 2

    def test_backward_without_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_zero_grad(self):
        tensor = Tensor([2.0], requires_grad=True)
        (tensor * 3.0).sum().backward()
        assert tensor.grad is not None
        tensor.zero_grad()
        assert tensor.grad is None


class TestNoGrad:
    def test_no_grad_disables_recording(self):
        with no_grad():
            assert not is_grad_enabled()
            tensor = Tensor([1.0], requires_grad=True)
            assert tensor.requires_grad is False
        assert is_grad_enabled()

    def test_no_grad_nested_restores(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestArithmeticGradients:
    """Analytic gradients must match central differences for every op."""

    @pytest.mark.parametrize(
        "name, fn",
        [
            ("add", lambda x: (x + 3.0).sum()),
            ("radd", lambda x: (3.0 + x).sum()),
            ("sub", lambda x: (x - 1.5).sum()),
            ("rsub", lambda x: (1.5 - x).sum()),
            ("mul", lambda x: (x * 2.5).sum()),
            ("div", lambda x: (x / 2.0).sum()),
            ("rdiv", lambda x: (2.0 / x).sum()),
            ("neg", lambda x: (-x).sum()),
            ("pow2", lambda x: (x ** 2).sum()),
            ("pow3", lambda x: (x ** 3).mean()),
            ("exp", lambda x: x.exp().sum()),
            ("log", lambda x: x.log().sum()),
            ("sqrt", lambda x: x.sqrt().sum()),
            ("abs", lambda x: x.abs().sum()),
            ("relu", lambda x: x.relu().sum()),
            ("leaky_relu", lambda x: x.leaky_relu().sum()),
            ("sigmoid", lambda x: x.sigmoid().sum()),
            ("tanh", lambda x: x.tanh().sum()),
            ("softplus", lambda x: x.softplus().sum()),
            ("mean", lambda x: x.mean()),
            ("sum_axis", lambda x: x.sum(axis=0).sum()),
            ("mean_axis", lambda x: x.mean(axis=1, keepdims=True).sum()),
            ("transpose", lambda x: (x.T * 2.0).sum()),
            ("reshape", lambda x: x.reshape(6).sum()),
            ("getitem", lambda x: x[0].sum()),
            ("clip", lambda x: x.clip(0.3, 1.5).sum()),
            ("chain", lambda x: ((x * 2 + 1).sigmoid() * x).sum()),
        ],
    )
    def test_gradient_matches_numeric(self, name, fn):
        base = np.array([[0.5, 0.7, 1.2], [0.9, 1.1, 0.4]])
        tensor = Tensor(base.copy(), requires_grad=True)
        fn(tensor).backward()
        numeric = numeric_gradient(lambda arr: fn(Tensor(arr)).item(), base)
        assert tensor.grad == pytest.approx(numeric, abs=1e-5)

    def test_tensor_tensor_multiply_gradients(self):
        a = Tensor([[1.0, 2.0]], requires_grad=True)
        b = Tensor([[3.0, 4.0]], requires_grad=True)
        (a * b).sum().backward()
        assert a.grad == pytest.approx(b.data)
        assert b.grad == pytest.approx(a.data)

    def test_broadcast_add_gradient(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 2)
        assert b.grad == pytest.approx([3.0, 3.0])

    def test_gradient_accumulates_across_backward_calls(self):
        a = Tensor([2.0], requires_grad=True)
        (a * 1.0).sum().backward()
        (a * 1.0).sum().backward()
        assert a.grad == pytest.approx([2.0])

    def test_reused_tensor_in_graph(self):
        a = Tensor([3.0], requires_grad=True)
        (a * a).sum().backward()
        assert a.grad == pytest.approx([6.0])

    def test_pow_non_scalar_exponent_raises(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])


class TestMatmulGradients:
    def test_matmul_2d_2d(self):
        a_data = np.random.default_rng(0).normal(size=(3, 4))
        b_data = np.random.default_rng(1).normal(size=(4, 2))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad == pytest.approx(np.ones((3, 2)) @ b_data.T)
        assert b.grad == pytest.approx(a_data.T @ np.ones((3, 2)))

    def test_matmul_1d_1d(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0, 6.0], requires_grad=True)
        (a @ b).backward()
        assert a.grad == pytest.approx([4.0, 5.0, 6.0])
        assert b.grad == pytest.approx([1.0, 2.0, 3.0])

    def test_matmul_2d_1d(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad == pytest.approx(np.tile([1.0, 2.0, 3.0], (2, 1)))
        assert b.grad == pytest.approx([2.0, 2.0, 2.0])

    def test_matmul_1d_2d(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad == pytest.approx([3.0, 3.0])
        assert b.grad == pytest.approx(np.array([[1.0] * 3, [2.0] * 3]))

    def test_rmatmul_with_numpy_left_operand(self):
        b = Tensor(np.eye(2), requires_grad=True)
        out = np.array([[2.0, 0.0], [0.0, 2.0]]) @ b
        out.sum().backward()
        assert b.grad == pytest.approx(2.0 * np.ones((2, 2)))


class TestConcatenationAndStacking:
    def test_concatenate_forward_and_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.full((3, 2), 2.0), requires_grad=True)
        combined = Tensor.concatenate([a, b], axis=0)
        assert combined.shape == (5, 2)
        (combined * 3.0).sum().backward()
        assert a.grad == pytest.approx(np.full((2, 2), 3.0))
        assert b.grad == pytest.approx(np.full((3, 2), 3.0))

    def test_concatenate_axis1(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        combined = Tensor.concatenate([a, b], axis=1)
        assert combined.shape == (2, 5)
        combined.sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (2, 3)

    def test_stack(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        stacked = Tensor.stack([a, b], axis=0)
        assert stacked.shape == (2, 2)
        stacked.sum().backward()
        assert a.grad == pytest.approx([1.0, 1.0])
        assert b.grad == pytest.approx([1.0, 1.0])


class TestMaxAndDropout:
    def test_max_global_gradient(self):
        tensor = Tensor([[1.0, 5.0], [3.0, 2.0]], requires_grad=True)
        tensor.max().backward()
        expected = np.zeros((2, 2))
        expected[0, 1] = 1.0
        assert tensor.grad == pytest.approx(expected)

    def test_max_axis(self):
        tensor = Tensor([[1.0, 5.0], [3.0, 2.0]], requires_grad=True)
        tensor.max(axis=1).sum().backward()
        expected = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert tensor.grad == pytest.approx(expected)

    def test_dropout_eval_mode_is_identity(self, rng):
        tensor = Tensor(np.ones((4, 4)))
        out = tensor.dropout(0.5, rng, training=False)
        assert out.numpy() == pytest.approx(np.ones((4, 4)))

    def test_dropout_preserves_expectation(self, rng):
        tensor = Tensor(np.ones((200, 200)))
        out = tensor.dropout(0.3, rng, training=True)
        assert out.numpy().mean() == pytest.approx(1.0, abs=0.05)


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
        probabilities = F.softmax(logits).numpy()
        assert probabilities.sum(axis=1) == pytest.approx(np.ones(5))
        assert (probabilities >= 0).all()

    def test_log_softmax_matches_log_of_softmax(self):
        logits = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        assert F.log_softmax(logits).numpy() == pytest.approx(np.log(F.softmax(logits).numpy()), abs=1e-8)

    def test_mse_loss_zero_for_identical(self):
        values = Tensor(np.ones((3, 3)))
        assert F.mse_loss(values, Tensor(np.ones((3, 3)))).item() == pytest.approx(0.0)

    def test_binary_cross_entropy_bounds(self):
        prediction = Tensor(np.array([[0.9, 0.1]]))
        target = Tensor(np.array([[1.0, 0.0]]))
        low = F.binary_cross_entropy(prediction, target).item()
        high = F.binary_cross_entropy(Tensor(np.array([[0.1, 0.9]])), target).item()
        assert low < high

    def test_l2_normalize_unit_rows(self):
        values = Tensor(np.random.default_rng(2).normal(size=(4, 6)))
        norms = np.linalg.norm(F.l2_normalize(values).numpy(), axis=1)
        assert norms == pytest.approx(np.ones(4))

    def test_row_errors_l2_and_l1(self):
        prediction = np.array([[1.0, 2.0], [0.0, 0.0]])
        target = np.array([[1.0, 0.0], [3.0, 4.0]])
        assert F.row_errors(prediction, target) == pytest.approx([2.0, 5.0])
        assert F.row_errors(prediction, target, ord=1) == pytest.approx([2.0, 7.0])

    def test_mse_gradient_flows_to_prediction_only(self):
        prediction = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        target = Tensor(np.array([[0.0, 0.0]]), requires_grad=True)
        F.mse_loss(prediction, target).backward()
        assert prediction.grad is not None
        assert target.grad is None
