"""Unit tests for the TPGCL contrastive-learning stage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gcl import GroupEncoder, MINEStatisticsNetwork, TPGCL, TPGCLConfig, mine_mutual_information
from repro.graph import Group
from repro.tensor import Tensor


@pytest.fixture
def candidate_groups(example_graph):
    groups = list(example_graph.groups)
    groups.append(Group.from_nodes(range(0, 6)))
    groups.append(Group.from_nodes(range(10, 17)))
    groups.append(Group.from_nodes(range(20, 26)))
    return groups


class TestGroupEncoder:
    def test_single_group_embedding_shape(self, example_graph):
        encoder = GroupEncoder(example_graph.n_features, hidden_dim=16, embedding_dim=12)
        subgraph = example_graph.group_subgraph(example_graph.groups[0])
        assert encoder(subgraph).shape == (1, 12)

    def test_batch_embedding_shape(self, example_graph, candidate_groups):
        encoder = GroupEncoder(example_graph.n_features, hidden_dim=16, embedding_dim=12)
        subgraphs = [example_graph.group_subgraph(g) for g in candidate_groups]
        assert encoder.encode_batch(subgraphs).shape == (len(candidate_groups), 12)

    def test_empty_batch_raises(self, example_graph):
        encoder = GroupEncoder(example_graph.n_features)
        with pytest.raises(ValueError):
            encoder.encode_batch([])

    def test_readout_is_permutation_invariant(self, example_graph):
        encoder = GroupEncoder(example_graph.n_features, hidden_dim=8, embedding_dim=8)
        nodes = sorted(example_graph.groups[0].nodes)
        a = encoder(example_graph.subgraph(nodes)).numpy()
        b = encoder(example_graph.subgraph(list(reversed(nodes)))).numpy()
        assert a == pytest.approx(b)


class TestMINE:
    def test_statistics_network_output_shape(self):
        network = MINEStatisticsNetwork(embedding_dim=6, hidden_dim=8)
        scores = network(Tensor(np.ones((4, 6))), Tensor(np.ones((4, 6))))
        assert scores.shape == (4, 1)

    def test_mi_estimate_is_scalar_and_finite(self, rng):
        network = MINEStatisticsNetwork(embedding_dim=4, hidden_dim=8)
        positive = Tensor(rng.normal(size=(8, 4)))
        negative = Tensor(rng.normal(size=(8, 4)))
        estimate = mine_mutual_information(network, positive, negative)
        assert estimate.size == 1
        assert np.isfinite(estimate.item())

    def test_mi_requires_matching_batches(self, rng):
        network = MINEStatisticsNetwork(embedding_dim=4)
        with pytest.raises(ValueError):
            mine_mutual_information(network, Tensor(rng.normal(size=(4, 4))), Tensor(rng.normal(size=(5, 4))))

    def test_mi_requires_at_least_two_pairs(self, rng):
        network = MINEStatisticsNetwork(embedding_dim=4)
        with pytest.raises(ValueError):
            mine_mutual_information(network, Tensor(rng.normal(size=(1, 4))), Tensor(rng.normal(size=(1, 4))))

    def test_mi_detects_dependence(self, rng):
        """A trained estimator should report higher MI for correlated pairs than independent ones."""
        from repro.nn import Adam

        correlated = rng.normal(size=(40, 4))
        positive = Tensor(correlated)
        negative_dependent = Tensor(correlated + rng.normal(scale=0.05, size=(40, 4)))
        negative_independent = Tensor(rng.normal(size=(40, 4)))

        def trained_estimate(negative: Tensor) -> float:
            network = MINEStatisticsNetwork(embedding_dim=4, hidden_dim=16, rng=np.random.default_rng(0))
            optimizer = Adam(network.parameters(), lr=0.01)
            for _ in range(80):
                optimizer.zero_grad()
                loss = -mine_mutual_information(network, positive, negative)
                loss.backward()
                optimizer.step()
            return mine_mutual_information(network, positive, negative).item()

        assert trained_estimate(negative_dependent) > trained_estimate(negative_independent)


class TestTPGCL:
    def test_fit_and_embed(self, example_graph, candidate_groups):
        model = TPGCL(TPGCLConfig(epochs=2, batch_size=4, hidden_dim=16, embedding_dim=16))
        embeddings = model.fit(example_graph, candidate_groups).embed_groups(example_graph, candidate_groups)
        assert embeddings.shape == (len(candidate_groups), 16)
        assert np.isfinite(embeddings).all()

    def test_training_records_losses(self, example_graph, candidate_groups):
        model = TPGCL(TPGCLConfig(epochs=3, batch_size=4, hidden_dim=8, embedding_dim=8))
        model.fit(example_graph, candidate_groups)
        assert len(model.training_result.losses) == 3
        assert model.training_result.final_loss is not None

    def test_needs_two_groups(self, example_graph):
        model = TPGCL(TPGCLConfig(epochs=1))
        with pytest.raises(ValueError):
            model.fit(example_graph, [example_graph.groups[0]])

    def test_embed_before_fit_raises(self, example_graph, candidate_groups):
        with pytest.raises(RuntimeError):
            TPGCL().embed_groups(example_graph, candidate_groups)

    def test_alternative_augmentations(self, example_graph, candidate_groups):
        config = TPGCLConfig(epochs=1, batch_size=4, hidden_dim=8, embedding_dim=8,
                             positive_augmentation="FM", negative_augmentation="ND")
        embeddings = TPGCL(config).fit(example_graph, candidate_groups).embed_groups(example_graph, candidate_groups)
        assert embeddings.shape[0] == len(candidate_groups)

    def test_deterministic_given_seed(self, example_graph, candidate_groups):
        config = TPGCLConfig(epochs=2, batch_size=4, hidden_dim=8, embedding_dim=8, seed=3)
        a = TPGCL(config).fit(example_graph, candidate_groups).embed_groups(example_graph, candidate_groups)
        b = TPGCL(TPGCLConfig(epochs=2, batch_size=4, hidden_dim=8, embedding_dim=8, seed=3)).fit(
            example_graph, candidate_groups
        ).embed_groups(example_graph, candidate_groups)
        assert a == pytest.approx(b)
