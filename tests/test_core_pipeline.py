"""Unit and integration tests for the TP-GrGAD pipeline and result container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GroupDetectionResult, TPGrGAD, TPGrGADConfig
from repro.gae import MHGAEConfig
from repro.graph import Group


class TestConfig:
    def test_fast_config_derives_distinct_stage_seeds(self):
        config = TPGrGADConfig.fast(seed=5)
        assert config.seed == 5
        # Unset stage seeds get per-stage streams derived from the master —
        # distinct from each other and from the master itself.
        stage_seeds = {config.mhgae.seed, config.sampler.seed, config.tpgcl.seed}
        assert len(stage_seeds) == 3
        assert 5 not in stage_seeds
        assert config.derived_stage_seeds == ("mhgae", "sampler", "tpgcl")
        # The derivation is deterministic: same master, same stage seeds.
        again = TPGrGADConfig.fast(seed=5)
        assert (again.mhgae.seed, again.sampler.seed, again.tpgcl.seed) == (
            config.mhgae.seed, config.sampler.seed, config.tpgcl.seed,
        )

    def test_invalid_anchor_fraction(self):
        with pytest.raises(ValueError):
            TPGrGADConfig(anchor_fraction=0.0)

    def test_invalid_contamination(self):
        with pytest.raises(ValueError):
            TPGrGADConfig(contamination=1.0)

    def test_explicit_stage_seeds_preserved(self):
        config = TPGrGADConfig(mhgae=MHGAEConfig(seed=42), seed=7)
        assert config.mhgae.seed == 42

    def test_explicit_zero_stage_seed_wins(self):
        # The historical footgun: an explicit stage seed of 0 used to be
        # silently overwritten by the master seed.  0 must stick.
        config = TPGrGADConfig(mhgae=MHGAEConfig(seed=0), seed=7)
        assert config.mhgae.seed == 0
        assert "mhgae" not in config.derived_stage_seeds

    def test_reseed_rederives_only_unpinned_stages(self):
        config = TPGrGADConfig(mhgae=MHGAEConfig(seed=42), seed=7)
        clone = config.reseed(8)
        assert clone.seed == 8
        assert clone.mhgae.seed == 42  # pinned stays pinned
        assert clone.sampler.seed != config.sampler.seed  # derived follows
        assert clone.tpgcl.seed != config.tpgcl.seed
        # Original untouched.
        assert config.seed == 7


class TestResultContainer:
    def _result(self):
        groups = [Group.from_nodes([0, 1, 2]), Group.from_nodes([3, 4]), Group.from_nodes([5, 6, 7, 8])]
        scores = np.array([0.9, 0.1, 0.5])
        return GroupDetectionResult(
            candidate_groups=groups,
            scores=scores,
            threshold=0.4,
            anomalous_groups=[groups[0].with_score(0.9), groups[2].with_score(0.5)],
        )

    def test_counts_and_sizes(self):
        result = self._result()
        assert result.n_candidates == 3
        assert result.n_anomalous == 2
        assert result.average_anomalous_size() == pytest.approx(3.5)

    def test_top_groups_sorted_by_score(self):
        result = self._result()
        top = result.top_groups(2)
        assert [g.score for g in top] == [pytest.approx(0.9), pytest.approx(0.5)]

    def test_score_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            GroupDetectionResult(
                candidate_groups=[Group.from_nodes([0])],
                scores=np.array([0.1, 0.2]),
                threshold=0.0,
                anomalous_groups=[],
            )

    def test_empty_result_statistics(self):
        result = GroupDetectionResult(candidate_groups=[], scores=np.array([]), threshold=0.0, anomalous_groups=[])
        assert result.average_anomalous_size() == 0.0
        assert result.top_groups(3) == []


class TestPipelineStages:
    @pytest.fixture(scope="class")
    def fitted(self, example_graph):
        detector = TPGrGAD(TPGrGADConfig.fast(seed=1))
        result = detector.fit_detect(example_graph)
        return detector, result

    def test_anchor_stage_enriched_in_group_nodes(self, fitted, example_graph):
        _, result = fitted
        truth = example_graph.anomaly_node_mask()
        anomaly_rate = truth.mean()
        anchor_hit_rate = truth[result.anchor_nodes].mean()
        assert anchor_hit_rate > anomaly_rate  # anchors beat random selection

    def test_candidates_and_scores_consistent(self, fitted):
        _, result = fitted
        assert result.n_candidates == len(result.scores)
        assert result.embeddings.shape[0] == result.n_candidates
        assert np.isfinite(result.scores).all()

    def test_anomalous_groups_respect_threshold(self, fitted):
        _, result = fitted
        assert all(g.score >= result.threshold for g in result.anomalous_groups)
        assert result.n_anomalous <= result.n_candidates

    def test_node_scores_available(self, fitted, example_graph):
        _, result = fitted
        assert result.node_scores.shape == (example_graph.n_nodes,)

    def test_evaluation_reports_reasonable_quality(self, fitted, example_graph):
        _, result = fitted
        report = result.evaluate(example_graph)
        assert report.cr > 0.3
        assert report.auc >= 0.5
        assert report.avg_truth_size == pytest.approx(example_graph.average_group_size())

    def test_explicit_threshold_respected(self, example_graph):
        detector = TPGrGAD(TPGrGADConfig.fast(seed=2))
        result = detector.fit_detect(example_graph, threshold=float("inf"))
        assert result.n_anomalous == 0

    def test_without_tpgcl_uses_mean_features(self, example_graph):
        config = TPGrGADConfig.fast(seed=1)
        config.use_tpgcl = False
        result = TPGrGAD(config).fit_detect(example_graph)
        assert result.embeddings.shape[1] == example_graph.n_features

    def test_alternative_outlier_detector(self, example_graph):
        config = TPGrGADConfig.fast(seed=1)
        config.detector = "iforest"
        result = TPGrGAD(config).fit_detect(example_graph)
        assert result.n_candidates > 0


class TestBatchedPipeline:
    def test_fit_detect_many_matches_independent_runs(self, example_graph):
        from repro.datasets import make_example_graph

        other = make_example_graph(seed=11)
        batched = TPGrGAD(TPGrGADConfig.fast(seed=1)).fit_detect_many([example_graph, other])
        singles = [
            TPGrGAD(TPGrGADConfig.fast(seed=1)).fit_detect(example_graph),
            TPGrGAD(TPGrGADConfig.fast(seed=1)).fit_detect(other),
        ]
        for batch_result, single_result in zip(batched, singles):
            assert batch_result.to_json_dict() == single_result.to_json_dict()

    def test_repeated_graph_hits_stage_cache(self, example_graph):
        detector = TPGrGAD(TPGrGADConfig.fast(seed=1))
        results = detector.fit_detect_many([example_graph, example_graph])
        assert detector.cache_misses == 1
        assert detector.cache_hits == 1
        assert results[0].to_json_dict() == results[1].to_json_dict()

    def test_cache_persists_across_calls_and_can_be_cleared(self, example_graph):
        detector = TPGrGAD(TPGrGADConfig.fast(seed=1))
        detector.fit_detect(example_graph)
        detector.fit_detect(example_graph)
        assert detector.cache_hits == 1
        detector.clear_cache()
        # clear_cache resets the counters along with the cache, so the
        # info read-out can never drift out of sync with an emptied LRU.
        assert detector.cache_info() == {
            "hits": 0, "misses": 0, "evictions": 0, "currsize": 0,
            "maxsize": detector.config.cache_size,
        }
        detector.fit_detect(example_graph)
        assert detector.cache_misses == 1

    def test_cache_info_counts_evictions(self, example_graph):
        from repro.datasets import make_example_graph

        config = TPGrGADConfig.fast(seed=1)
        config.cache_size = 1
        detector = TPGrGAD(config)
        detector.fit_detect(example_graph)
        detector.fit_detect(make_example_graph(seed=11))  # evicts the first entry
        info = detector.cache_info()
        assert info["evictions"] == 1
        assert info["currsize"] == 1
        assert info["maxsize"] == 1
        assert info["misses"] == 2

    def test_cache_keyed_by_config(self, example_graph):
        fast = TPGrGAD(TPGrGADConfig.fast(seed=1))
        fast.fit_detect(example_graph)
        other = TPGrGAD(TPGrGADConfig.fast(seed=2))
        other.fit_detect(example_graph)
        assert other.cache_hits == 0 and other.cache_misses == 1

    def test_cached_result_respects_new_threshold(self, example_graph):
        detector = TPGrGAD(TPGrGADConfig.fast(seed=1))
        detector.fit_detect(example_graph)
        rethresholded = detector.fit_detect(example_graph, threshold=float("inf"))
        assert detector.cache_hits == 1
        assert rethresholded.n_anomalous == 0
        assert rethresholded.n_candidates > 0

    def test_cache_hit_restores_matching_stage_models(self, example_graph):
        from repro.datasets import make_example_graph

        other = make_example_graph(seed=11)
        detector = TPGrGAD(TPGrGADConfig.fast(seed=1))
        detector.fit_detect(example_graph)
        first_scores = detector.mhgae.score_nodes().copy()
        detector.fit_detect(other)
        detector.fit_detect(example_graph)  # cache hit must restore g1's models
        assert detector.mhgae.score_nodes() == pytest.approx(first_scores)

    def test_mutating_a_result_does_not_corrupt_the_cache(self, example_graph):
        detector = TPGrGAD(TPGrGADConfig.fast(seed=1))
        first = detector.fit_detect(example_graph)
        n_candidates = first.n_candidates
        first.candidate_groups.append(Group.from_nodes([0, 1]))
        first.embeddings[:] = 0.0
        second = detector.fit_detect(example_graph)
        assert detector.cache_hits == 1
        assert second.n_candidates == n_candidates
        assert np.abs(second.embeddings).sum() > 0.0

    def test_cache_size_zero_disables_caching(self, example_graph):
        config = TPGrGADConfig.fast(seed=1)
        config.cache_size = 0
        detector = TPGrGAD(config)
        results = detector.fit_detect_many([example_graph, example_graph])
        assert detector.cache_hits == 0
        assert detector.cache_misses == 2
        assert results[0].to_json_dict() == results[1].to_json_dict()

    def test_fingerprint_tracks_inplace_feature_edits(self, example_graph):
        detector = TPGrGAD(TPGrGADConfig.fast(seed=1))
        detector.fit_detect(example_graph)
        example_graph.features[0, 0] += 1.0
        try:
            detector.fit_detect(example_graph)
            assert detector.cache_hits == 0  # mutated graph must miss the cache
        finally:
            example_graph.features[0, 0] -= 1.0  # session-scoped fixture

    def test_fit_detect_many_empty_list(self):
        assert TPGrGAD(TPGrGADConfig.fast(seed=1)).fit_detect_many([]) == []

    def test_result_to_json_dict_roundtrips_through_json(self, example_graph):
        import json

        result = TPGrGAD(TPGrGADConfig.fast(seed=1)).fit_detect(example_graph)
        payload = result.to_json_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert len(payload["scores"]) == result.n_candidates
        assert payload["anomalous_groups"] == sorted(sorted(g.nodes) for g in result.anomalous_groups)
