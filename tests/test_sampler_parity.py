"""Parity: vectorized multi-source search engine vs. the seed searches.

Every graph in the suite (seeded random graphs of varying density plus
structured builder graphs) is checked three ways:

* per-search parity — ``path_group`` / ``tree_group`` / ``cycle_groups``
  against the seed ``path_search`` / ``tree_search`` / ``cycle_search``
  for every anchor pair, comparing node sets *and* edge sets,
* sampler-level parity — ``CandidateGroupSampler`` with
  ``vectorized=True`` vs. ``vectorized=False`` returns identical deduped
  candidate lists (including the rng-driven pair/candidate subsampling),
* the same under alternate hyperparameters where the cutoffs bind.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Tuple

import networkx as nx
import numpy as np
import pytest

from repro.datasets import make_example_graph
from repro.graph import Graph, graph_from_networkx
from repro.sampling import CandidateGroupSampler, MultiSourceSearchEngine, SamplerConfig
from repro.sampling.searches import cycle_search, path_search, tree_search


def _random_graph(seed: int, max_nodes: int = 60, density: float = 2.0) -> Graph:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(8, max_nodes))
    m = int(rng.integers(1, max(2, int(density * n))))
    edges = rng.integers(0, n, size=(m, 2))
    return Graph(n, edges, np.zeros((n, 1)), name=f"random-{seed}")


def _builder_graphs() -> List[Tuple[str, Graph]]:
    ring_plus_chords = Graph(12, [(i, (i + 1) % 12) for i in range(12)] + [(0, 6), (3, 9)])
    return [
        ("ring-chords", ring_plus_chords),
        ("complete-k7", graph_from_networkx(nx.complete_graph(7), name="k7")),
        ("barbell", graph_from_networkx(nx.barbell_graph(5, 3), name="barbell")),
        ("balanced-tree", graph_from_networkx(nx.balanced_tree(2, 3), name="tree")),
        ("grid-4x5", graph_from_networkx(nx.convert_node_labels_to_integers(nx.grid_2d_graph(4, 5)), name="grid")),
        ("karate", graph_from_networkx(nx.karate_club_graph(), name="karate")),
        ("petersen", graph_from_networkx(nx.petersen_graph(), name="petersen")),
        ("disconnected", Graph(10, [(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 7), (7, 4)])),
        ("example-7", make_example_graph(seed=7)),
        ("example-11", make_example_graph(seed=11)),
    ]


PARITY_GRAPHS: List[Tuple[str, Graph]] = [
    (f"random-{seed}", _random_graph(seed, density=float(1 + seed % 4))) for seed in range(12)
] + _builder_graphs()

assert len(PARITY_GRAPHS) >= 20

CONFIG_VARIANTS = [
    SamplerConfig(),
    SamplerConfig(max_path_length=3, tree_depth=1, max_group_size=6, max_cycle_length=5, max_cycles_per_anchor=2),
]


def _anchors(graph: Graph, count: int = 7) -> List[int]:
    """A deterministic mix of high-degree and spread-out anchor nodes."""
    degrees = graph.degree()
    by_degree = np.argsort(-degrees)[: count // 2]
    spread = np.linspace(0, graph.n_nodes - 1, count).astype(int)
    return sorted({int(a) for a in np.concatenate([by_degree, spread])})


def _same_group(a, b) -> bool:
    if a is None or b is None:
        return a is None and b is None
    return a.node_tuple() == b.node_tuple() and a.edges == b.edges and a.label == b.label


@pytest.mark.parametrize("name,graph", PARITY_GRAPHS, ids=[name for name, _ in PARITY_GRAPHS])
@pytest.mark.parametrize("config", CONFIG_VARIANTS, ids=["default", "tight"])
def test_engine_matches_seed_searches(name, graph, config):
    anchors = _anchors(graph)
    depth = max(config.max_path_length, config.tree_depth, config.max_cycle_length)
    engine = MultiSourceSearchEngine(graph, anchors, max_depth=depth)
    for i, u in enumerate(anchors):
        for v in anchors[i + 1:]:
            assert _same_group(
                engine.path_group(u, v, max_length=config.max_path_length),
                path_search(graph, u, v, max_length=config.max_path_length),
            ), f"path parity broke on {name} pair ({u}, {v})"
            assert _same_group(
                engine.tree_group(u, v, depth=config.tree_depth, max_nodes=config.max_group_size),
                tree_search(graph, u, v, depth=config.tree_depth, max_nodes=config.max_group_size),
            ), f"tree parity broke on {name} pair ({u}, {v})"
        engine_cycles = engine.cycle_groups(
            u, max_cycle_length=config.max_cycle_length, max_cycles=config.max_cycles_per_anchor
        )
        seed_cycles = cycle_search(
            graph, u, max_cycle_length=config.max_cycle_length, max_cycles=config.max_cycles_per_anchor
        )
        assert len(engine_cycles) == len(seed_cycles), f"cycle count parity broke on {name} anchor {u}"
        for engine_cycle, seed_cycle in zip(engine_cycles, seed_cycles):
            assert _same_group(engine_cycle, seed_cycle), f"cycle parity broke on {name} anchor {u}"


@pytest.mark.parametrize("name,graph", PARITY_GRAPHS, ids=[name for name, _ in PARITY_GRAPHS])
def test_sampler_matches_seed_sampler(name, graph):
    """Full sampler parity, exercising the rng-driven subsampling paths."""
    anchors = _anchors(graph, count=9)
    config = SamplerConfig(max_anchor_pairs=12, max_candidates=18, seed=3)
    vectorized = CandidateGroupSampler(config).sample(graph, anchors)
    per_pair = CandidateGroupSampler(replace(config, vectorized=False)).sample(graph, anchors)
    assert [g.node_tuple() for g in vectorized] == [g.node_tuple() for g in per_pair]
    assert [g.edges for g in vectorized] == [g.edges for g in per_pair]
    assert [g.label for g in vectorized] == [g.label for g in per_pair]


def test_path_reconstruction_matches_shortest_path():
    """The BFS forest reproduces Graph.shortest_path tie-breaking exactly."""
    for seed in range(6):
        graph = _random_graph(100 + seed, max_nodes=40, density=3.0)
        sources = _anchors(graph, count=5)
        bfs = graph.multi_source_bfs(sources)
        for row, source in enumerate(sources):
            for target in range(graph.n_nodes):
                assert bfs.path(row, target) == graph.shortest_path(source, target)


def test_bfs_tree_matches_forest_parents():
    """Depth-bounded forest rows agree with Graph.bfs_tree parent maps."""
    for seed in range(6):
        graph = _random_graph(200 + seed, max_nodes=40, density=2.5)
        sources = _anchors(graph, count=5)
        for depth in (1, 2, 4):
            bfs = graph.multi_source_bfs(sources, depth=depth)
            for row, source in enumerate(sources):
                parents = graph.bfs_tree(source, depth)
                reached = {int(n) for n in np.flatnonzero(bfs.dist[row] >= 0)}
                assert reached == set(parents)
                for node, parent in parents.items():
                    assert int(bfs.parent[row, node]) == parent


def test_engine_rejects_non_anchor_queries():
    graph = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
    engine = MultiSourceSearchEngine(graph, [0, 2], max_depth=5)
    with pytest.raises(ValueError, match="not one of this engine's anchors"):
        engine.path_group(5, 0)
    with pytest.raises(ValueError, match="not one of this engine's anchors"):
        engine.tree_group(5, 0)
    with pytest.raises(ValueError, match="not one of this engine's anchors"):
        engine.cycle_groups(5)
    # target of a path may be any node — only the source needs a BFS row
    assert engine.path_group(0, 5) is not None
