"""Unit tests for the GAE family and anchor selection."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.gae import GAEConfig, GraphAutoEncoder, MHGAEConfig, MultiHopGAE, select_anchor_nodes
from repro.graph import graphsnn_weighted_adjacency, k_hop_matrix


FAST = dict(epochs=8, hidden_dim=16, embedding_dim=8, seed=0)


def _dense(matrix) -> np.ndarray:
    """Densify a propagation matrix regardless of its sparse/dense layout."""
    return matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix)


class TestAnchorSelection:
    def test_top_fraction_selected(self):
        scores = np.arange(100, dtype=float)
        anchors = select_anchor_nodes(scores, fraction=0.1)
        assert len(anchors) == 10
        assert anchors[0] == 99  # highest score first

    def test_minimum_enforced(self):
        anchors = select_anchor_nodes(np.arange(10, dtype=float), fraction=0.01, minimum=4)
        assert len(anchors) == 4

    def test_maximum_caps(self):
        anchors = select_anchor_nodes(np.arange(100, dtype=float), fraction=0.5, maximum=7)
        assert len(anchors) == 7

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            select_anchor_nodes(np.ones(5), fraction=0.0)

    def test_non_1d_scores_raise(self):
        with pytest.raises(ValueError):
            select_anchor_nodes(np.ones((3, 3)))


class TestGraphAutoEncoder:
    def test_fit_records_decreasing_loss(self, example_graph):
        model = GraphAutoEncoder(GAEConfig(epochs=30, hidden_dim=16, embedding_dim=8, seed=0))
        model.fit(example_graph)
        losses = model.training_result.losses
        assert len(losses) == 30
        assert losses[-1] < losses[0]

    def test_score_shapes_and_nonnegative_before_normalization(self, example_graph):
        model = GraphAutoEncoder(GAEConfig(normalize_errors=False, **FAST)).fit(example_graph)
        scores = model.score_nodes()
        assert scores.shape == (example_graph.n_nodes,)
        assert (scores >= 0).all()

    def test_score_normalized_in_unit_interval(self, example_graph):
        model = GraphAutoEncoder(GAEConfig(**FAST)).fit(example_graph)
        normalized = model.score_normalized()
        assert normalized.min() == pytest.approx(0.0)
        assert normalized.max() == pytest.approx(1.0)

    def test_embed_shape(self, example_graph):
        model = GraphAutoEncoder(GAEConfig(**FAST)).fit(example_graph)
        assert model.embed().shape == (example_graph.n_nodes, 8)

    def test_reconstruct_shapes(self, example_graph):
        model = GraphAutoEncoder(GAEConfig(**FAST)).fit(example_graph)
        structure, attributes = model.reconstruct()
        assert structure.shape == (example_graph.n_nodes, example_graph.n_nodes)
        assert attributes.shape == example_graph.features.shape

    def test_scoring_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GraphAutoEncoder().score_nodes()

    def test_feature_scaling_options(self, example_graph):
        for mode in ("none", "standardize", "minmax"):
            model = GraphAutoEncoder(GAEConfig(feature_scaling=mode, **FAST)).fit(example_graph)
            assert np.isfinite(model.score_nodes()).all()
        with pytest.raises(ValueError):
            GraphAutoEncoder(GAEConfig(feature_scaling="weird", **FAST)).fit(example_graph)

    def test_deterministic_given_seed(self, example_graph):
        a = GraphAutoEncoder(GAEConfig(**FAST)).fit(example_graph).score_nodes()
        b = GraphAutoEncoder(GAEConfig(**FAST)).fit(example_graph).score_nodes()
        assert a == pytest.approx(b)


class TestMultiHopGAE:
    def test_default_target_is_graphsnn(self, example_graph):
        model = MultiHopGAE(MHGAEConfig(**FAST))
        model.fit(example_graph)
        assert model._structure_target == pytest.approx(graphsnn_weighted_adjacency(example_graph))

    def test_k_hop_target(self, example_graph):
        model = MultiHopGAE(MHGAEConfig(target="k_hop", k_hops=3, **FAST))
        model.fit(example_graph)
        assert model._structure_target == pytest.approx(k_hop_matrix(example_graph, 3))

    def test_adjacency_target_falls_back_to_vanilla(self, example_graph):
        model = MultiHopGAE(MHGAEConfig(target="adjacency", **FAST))
        model.fit(example_graph)
        assert model._structure_target == pytest.approx(example_graph.adjacency())

    def test_unknown_target_raises(self, example_graph):
        with pytest.raises(ValueError):
            MultiHopGAE(MHGAEConfig(target="spectral", **FAST)).fit(example_graph)

    def test_propagation_mixes_multi_hop(self, example_graph):
        mixed = MultiHopGAE(MHGAEConfig(target="k_hop", k_hops=5, **FAST)).fit(example_graph)
        one_hop = MultiHopGAE(
            MHGAEConfig(target="k_hop", k_hops=5, propagate_with_target=False, **FAST)
        ).fit(example_graph)
        assert not np.allclose(_dense(mixed._propagation), _dense(one_hop._propagation))
        # Rows of the mixed propagation are normalised.
        assert _dense(mixed._propagation).sum(axis=1) == pytest.approx(
            np.ones(example_graph.n_nodes), abs=1e-6
        )

    def test_anchor_nodes_interface(self, example_graph):
        model = MultiHopGAE(MHGAEConfig(**FAST)).fit(example_graph)
        anchors = model.anchor_nodes(fraction=0.1)
        assert 3 <= len(anchors) <= example_graph.n_nodes

    def test_mhgae_better_than_vanilla_on_deep_nodes(self, example_graph):
        """The core claim of Sec. V-B: MH-GAE recalls deep group members better."""
        truth = example_graph.anomaly_node_mask()
        deep = np.array(
            [
                truth[node] and all(truth[m] for m in example_graph.neighbors(node))
                for node in range(example_graph.n_nodes)
            ]
        )
        k = int(truth.sum())

        vanilla = GraphAutoEncoder(GAEConfig(epochs=60, hidden_dim=32, embedding_dim=16, seed=1))
        multihop = MultiHopGAE(MHGAEConfig(epochs=60, hidden_dim=32, embedding_dim=16, seed=1, target="k_hop", k_hops=5))
        vanilla_scores = vanilla.fit(example_graph).score_nodes()
        multihop_scores = multihop.fit(example_graph).score_nodes()

        def deep_recall(scores: np.ndarray) -> float:
            top = np.argsort(-scores)[:k]
            return deep[top].sum() / max(deep.sum(), 1)

        assert deep_recall(multihop_scores) >= deep_recall(vanilla_scores)
