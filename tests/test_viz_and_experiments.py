"""Tests for the visualisation helpers and the experiment harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentSettings,
    run_figure8,
    run_stream,
    run_table1,
    run_table2,
    render_figure8,
    render_stream,
    render_table1,
    render_table2,
)
from repro.experiments.figure6 import pba_ppa_rank
from repro.experiments.figure7 import embedding_separation
from repro.experiments.table3 import best_method_per_dataset
from repro.viz import format_bar_chart, format_heatmap, format_table, tsne


QUICK = ExperimentSettings(
    datasets=["ethereum-tsgn", "simml"],
    scale=0.08,
    seeds=(0,),
    mhgae_epochs=15,
    tpgcl_epochs=3,
    baseline_epochs=10,
    max_candidates=60,
)


class TestViz:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1.23456], ["yy", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.235" in text

    def test_format_table_with_title(self):
        assert format_table(["a"], [[1]], title="T").splitlines()[0] == "T"

    def test_format_heatmap(self):
        text = format_heatmap(np.eye(2), ["r1", "r2"], ["c1", "c2"], title="H")
        assert "r1" in text and "c2" in text

    def test_format_bar_chart(self):
        text = format_bar_chart({"alpha": 2.0, "beta": 1.0}, title="B", width=10)
        assert text.splitlines()[0] == "B"
        assert text.count("#") > 0

    def test_format_bar_chart_empty(self):
        assert format_bar_chart({}, title="B") == "B"

    def test_tsne_output_shape_and_finite(self, rng):
        data = np.vstack([rng.normal(size=(20, 5)), rng.normal(loc=6.0, size=(20, 5))])
        coordinates = tsne(data, n_iterations=60, seed=0)
        assert coordinates.shape == (40, 2)
        assert np.isfinite(coordinates).all()

    def test_tsne_separates_well_separated_clusters(self, rng):
        data = np.vstack([rng.normal(size=(25, 4)), rng.normal(loc=10.0, size=(25, 4))])
        coordinates = tsne(data, n_iterations=150, seed=1)
        labels = np.array([False] * 25 + [True] * 25)
        assert embedding_separation(coordinates, labels) > 1.2

    def test_tsne_needs_three_samples(self):
        with pytest.raises(ValueError):
            tsne(np.ones((2, 3)))


class TestExperimentHarness:
    def test_registry_contains_every_artifact(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "table4", "table5",
            "figure5", "figure6", "figure7", "figure8", "stream",
        }

    def test_stream_replay_produces_one_record_per_dataset(self):
        settings = ExperimentSettings(
            datasets=["simml"], scale=0.05, seeds=(0,), mhgae_epochs=5, tpgcl_epochs=2
        )
        records = run_stream(settings)
        assert len(records) == 1
        record = records[0]
        assert record["dataset"] == "simML"
        assert record["speedup_vs_refit"] > 0
        assert record["incremental_ticks"] + record["refits"] == 8
        assert "Streaming replay" in render_stream(records)

    def test_table1_matches_dataset_statistics(self):
        records = run_table1(QUICK)
        assert len(records) == len(QUICK.datasets)
        for record in records:
            assert record["nodes"] > 0 and record["anomaly_groups"] >= 3
        assert "Table I" in render_table1(records)

    def test_table2_pattern_mix_shapes(self):
        records = run_table2(QUICK)
        by_name = {r["dataset"]: r for r in records}
        # AMLPublic is path dominated; Ethereum has trees and cycles.
        assert by_name["AMLPublic"]["path"] >= by_name["AMLPublic"]["tree"]
        assert by_name["Ethereum-TSGN"]["tree"] + by_name["Ethereum-TSGN"]["cycle"] >= by_name["Ethereum-TSGN"]["path"]
        assert "Table II" in render_table2(records)

    def test_figure8_mhgae_recovers_deep_members_best_among_gaes(self):
        records = run_figure8(QUICK)
        by_method = {r["method"]: r for r in records}
        assert set(by_method) == {"DOMINANT", "DeepAE", "ComGA", "MH-GAE"}
        assert by_method["MH-GAE"]["deep_recall"] >= by_method["DOMINANT"]["deep_recall"]
        assert by_method["MH-GAE"]["recall"] >= 0.5
        assert "Figure 8" in render_figure8(records)

    def test_best_method_helper(self):
        records = [
            {"dataset": "d", "method": "A", "CR": 0.2},
            {"dataset": "d", "method": "B", "CR": 0.9},
        ]
        assert best_method_per_dataset(records)["d"] == "B"

    def test_pba_ppa_rank_helper(self):
        record = {"augmentations": ["PBA", "PPA"], "grid": [[0.1, 0.9], [0.2, 0.3]]}
        assert pba_ppa_rank(record) == 0

    def test_settings_quick_factory(self):
        settings = ExperimentSettings.quick()
        assert settings.scale <= 0.12
        assert len(settings.seeds) == 1

    def test_pipeline_config_overrides(self):
        settings = ExperimentSettings.quick()
        config = settings.pipeline_config(seed=3, use_tpgcl=False)
        assert config.use_tpgcl is False
        assert config.seed == 3
